"""Property-based tests on the network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    BernoulliLoss,
    FORWARD,
    GilbertElliottLoss,
    Link,
    NetworkFault,
    ReliableChannel,
)
from repro.simulation import Simulator


@given(
    p_gb=st.floats(min_value=0.001, max_value=0.5),
    p_bg=st.floats(min_value=0.001, max_value=0.5),
    loss_bad=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=20, deadline=None)
def test_gilbert_elliott_long_run_frequency_matches_theory(p_gb, p_bg, loss_bad):
    model = GilbertElliottLoss(p_gb, p_bg, loss_good=0.0, loss_bad=loss_bad)
    rng = np.random.default_rng(17)
    count = 40_000
    losses = sum(model.is_lost(rng) for _ in range(count))
    expected = model.expected_loss_rate()
    tolerance = 4 * np.sqrt(expected * (1 - expected) / count) + 0.02
    assert abs(losses / count - expected) < tolerance


@given(rate=st.floats(min_value=0.0, max_value=0.9))
@settings(max_examples=15, deadline=None)
def test_fault_build_loss_matches_requested_rate(rate):
    fault = NetworkFault(loss_rate=rate)
    assert fault.build_loss().expected_loss_rate() == rate
    bursty = NetworkFault(loss_rate=rate, bursty=True)
    assert abs(bursty.build_loss().expected_loss_rate() - rate) < 0.02


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=25),
    size=st.integers(min_value=1, max_value=4000),
    loss=st.floats(min_value=0.0, max_value=0.3),
)
@settings(max_examples=20, deadline=None)
def test_transport_without_deadline_delivers_or_fails_every_message(
    seed, count, size, loss
):
    """Every send resolves exactly once: delivered or failed, never both."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    link = Link(sim, rng, capacity_bps=1e6, loss=BernoulliLoss(loss))
    channel = ReliableChannel(sim, link)
    outcomes = {}

    def delivered(payload, rtt):
        assert payload not in outcomes
        outcomes[payload] = "delivered"

    def failed(payload, reason):
        assert payload not in outcomes
        outcomes[payload] = "failed"

    received = []
    channel.set_receiver(FORWARD, lambda payload, n: received.append(payload))
    for index in range(count):
        channel.send(FORWARD, size, payload=index, on_delivered=delivered, on_failed=failed)
    sim.run()
    assert len(outcomes) == count
    # Receiver-side delivery implies no duplicate handoffs.
    assert len(received) == len(set(received))
    # Sender-side "delivered" implies the receiver actually got it.
    for payload, outcome in outcomes.items():
        if outcome == "delivered":
            assert payload in received


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sizes=st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=20),
)
@settings(max_examples=20, deadline=None)
def test_clean_link_conserves_bytes(seed, sizes):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    link = Link(sim, rng, capacity_bps=1e9, max_queue_delay_s=1e6)
    channel = ReliableChannel(sim, link)
    received_sizes = []
    channel.set_receiver(FORWARD, lambda payload, n: received_sizes.append(n))
    for size in sizes:
        channel.send(FORWARD, size)
    sim.run()
    assert sorted(received_sizes) == sorted(sizes)
