"""Property-based tests on testbed invariants.

The central conservation law: for any scenario, every source message is
either delivered (at least once) or lost — reconciliation must balance —
and duplicates can only exist for delivered messages.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.kpi import IntervalMeasurement, aggregate_rates
from repro.testbed import Scenario, run_experiment

scenario_strategy = st.builds(
    Scenario,
    message_bytes=st.sampled_from([80, 200, 600]),
    loss_rate=st.sampled_from([0.0, 0.1, 0.25]),
    network_delay_s=st.sampled_from([0.0, 0.1]),
    message_count=st.integers(min_value=30, max_value=120),
    seed=st.integers(min_value=0, max_value=10_000),
    config=st.builds(
        ProducerConfig,
        semantics=st.sampled_from(list(DeliverySemantics)),
        batch_size=st.sampled_from([1, 2, 5]),
        message_timeout_s=st.sampled_from([0.5, 1.5, 4.0]),
        polling_interval_s=st.sampled_from([0.0, 0.05]),
    ),
)


@given(scenario_strategy)
@settings(max_examples=20, deadline=None)
def test_reconciliation_conserves_messages(scenario):
    result = run_experiment(scenario)  # internally runs check_conservation()
    assert 0.0 <= result.p_loss <= 1.0
    assert 0.0 <= result.p_duplicate <= 1.0
    assert result.p_loss + result.p_duplicate <= 1.0 + 1e-9


@given(scenario_strategy)
@settings(max_examples=12, deadline=None)
def test_at_most_once_never_duplicates(scenario):
    scenario = scenario.with_(
        config=scenario.config.with_(semantics=DeliverySemantics.AT_MOST_ONCE)
    )
    result = run_experiment(scenario)
    assert result.p_duplicate == 0.0


@given(scenario_strategy)
@settings(max_examples=10, deadline=None)
def test_exactly_once_never_duplicates(scenario):
    scenario = scenario.with_(
        config=scenario.config.with_(semantics=DeliverySemantics.EXACTLY_ONCE)
    )
    result = run_experiment(scenario)
    assert result.p_duplicate == 0.0


@given(scenario_strategy)
@settings(max_examples=10, deadline=None)
def test_same_seed_same_result(scenario):
    first = run_experiment(scenario)
    second = run_experiment(scenario)
    assert first.p_loss == second.p_loss
    assert first.p_duplicate == second.p_duplicate


@given(
    st.lists(
        st.builds(
            IntervalMeasurement,
            messages=st.floats(min_value=1.0, max_value=1e4),
            p_loss=st.floats(min_value=0.0, max_value=1.0),
            p_duplicate=st.floats(min_value=0.0, max_value=1.0),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_eq3_aggregate_bounded_by_extremes(intervals):
    rates = aggregate_rates(intervals)
    losses = [interval.p_loss for interval in intervals]
    assert min(losses) - 1e-12 <= rates.r_loss <= max(losses) + 1e-12
    duplicates = [interval.p_duplicate for interval in intervals]
    assert min(duplicates) - 1e-12 <= rates.r_duplicate <= max(duplicates) + 1e-12
