"""Property-based tests on the Fig. 2 state machine.

Invariant: whatever legal transition sequence a message takes, its final
classification is one of the five Table I cases, successes are exactly the
Delivered endings, and the persisted flag matches whether any I/IV/VI edge
occurred.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.kafka.state import (
    DeliveryCase,
    IllegalTransition,
    MessageState,
    MessageStateMachine,
    Transition,
)

_LEGAL_NEXT = {
    MessageState.READY: [Transition.I, Transition.II],
    MessageState.DELIVERED: [Transition.V],
    MessageState.LOST: [Transition.III, Transition.IV, Transition.VI],
    MessageState.DUPLICATED: [Transition.VI],
}


@st.composite
def legal_walks(draw):
    """Generate random legal transition sequences."""
    machine = MessageStateMachine()
    length = draw(st.integers(min_value=1, max_value=12))
    walk = []
    for _ in range(length):
        options = list(_LEGAL_NEXT[machine.state])
        # VI is only legal once a copy is persisted.
        if machine.state is MessageState.LOST and not machine.persisted:
            options.remove(Transition.VI)
        transition = draw(st.sampled_from(options))
        machine.apply(transition)
        walk.append(transition)
    return walk


@given(legal_walks())
def test_any_legal_walk_classifies_into_table_one(walk):
    machine = MessageStateMachine()
    for transition in walk:
        machine.apply(transition)
    case = machine.classify_case()
    assert case in DeliveryCase
    if machine.state is MessageState.DELIVERED:
        assert case.is_success
    if machine.state is MessageState.DUPLICATED:
        assert case is DeliveryCase.CASE5
    if machine.state is MessageState.LOST and not machine.persisted:
        assert case.is_loss_failure


@given(legal_walks())
def test_persisted_flag_matches_history(walk):
    machine = MessageStateMachine()
    for transition in walk:
        machine.apply(transition)
    has_persist_edge = any(
        t in (Transition.I, Transition.IV, Transition.VI) for t in walk
    )
    assert machine.persisted == has_persist_edge


@given(legal_walks())
def test_duplicate_count_only_grows_with_vi(walk):
    machine = MessageStateMachine()
    for transition in walk:
        machine.apply(transition)
    assert machine.duplicate_count == walk.count(Transition.VI)


@given(st.lists(st.sampled_from(list(Transition)), min_size=1, max_size=8))
def test_illegal_sequences_raise_not_corrupt(transitions):
    """Applying arbitrary transitions either succeeds legally or raises
    IllegalTransition, leaving the machine in a valid state."""
    machine = MessageStateMachine()
    for transition in transitions:
        try:
            machine.apply(transition)
        except IllegalTransition:
            pass
        assert machine.state in MessageState
