"""Property-based tests on consumer-group invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kafka import KafkaCluster
from repro.kafka.group import ConsumerGroup
from repro.simulation import Simulator


def make_group(partitions, member_count):
    sim = Simulator()
    cluster = KafkaCluster(sim, broker_count=3)
    topic = cluster.create_topic("t", partitions=partitions)
    group = ConsumerGroup(cluster, topic, group_id="g")
    members = [group.join(f"m{index:03d}") for index in range(member_count)]
    return group, members, topic


@given(
    partitions=st.integers(min_value=1, max_value=16),
    member_count=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_assignment_is_a_partition_of_partitions(partitions, member_count):
    group, _, _ = make_group(partitions, member_count)
    assigned = [p for parts in group.assignment.values() for p in parts]
    assert sorted(assigned) == list(range(partitions))  # no overlap, no gap


@given(
    partitions=st.integers(min_value=1, max_value=16),
    member_count=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_assignment_is_balanced(partitions, member_count):
    group, _, _ = make_group(partitions, member_count)
    sizes = [len(parts) for parts in group.assignment.values()]
    assert max(sizes) - min(sizes) <= 1


@given(
    partitions=st.integers(min_value=1, max_value=8),
    member_count=st.integers(min_value=1, max_value=5),
    messages=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=30, deadline=None)
def test_group_consumes_every_message_exactly_once(partitions, member_count, messages):
    group, members, topic = make_group(partitions, member_count)
    for key in range(messages):
        topic.partitions[key % partitions].append(key, 10, timestamp=0.0)
    seen = []
    for member in members:
        seen.extend(entry.key for entry in member.poll(max_records=10_000))
    assert sorted(seen) == list(range(messages))


@given(
    leavers=st.integers(min_value=0, max_value=4),
    partitions=st.integers(min_value=2, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_rebalance_keeps_cover_after_leaves(leavers, partitions):
    group, members, _ = make_group(partitions, 5)
    for index in range(leavers):
        group.leave(f"m{index:03d}")
    assigned = [p for parts in group.assignment.values() for p in parts]
    assert sorted(assigned) == list(range(partitions))


@given(
    commit_at=st.integers(min_value=0, max_value=40),
    messages=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=30, deadline=None)
def test_committed_prefix_never_redelivered_to_successor(commit_at, messages):
    group, members, topic = make_group(1, 1)
    for key in range(messages):
        topic.partitions[0].append(key, 10, timestamp=0.0)
    member = members[0]
    first = member.poll(max_records=min(commit_at, messages) or 1)
    if commit_at:
        member.commit()
    group.leave("m000")
    successor = group.join("m-new")
    redelivered = {entry.key for entry in successor.poll(max_records=10_000)}
    if commit_at:
        committed_keys = {entry.key for entry in first}
        assert not (committed_keys & redelivered)
