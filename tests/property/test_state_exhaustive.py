"""Exhaustive enumeration of the Fig. 2 state machine up to depth 6.

Rather than sampling walks, these tests enumerate *every* sequence of the
six transitions up to length 6 (55 986 sequences) and partition them into
legal and illegal:

* every legal sequence ends in exactly one Table I delivery case, and the
  case agrees with a reference decision table computed from the history;
* every illegal sequence raises :class:`IllegalTransition` at the first
  bad edge and leaves the machine exactly where the legal prefix put it;
* classification is insensitive to recorded no-ops — extra ``VI`` edges in
  the terminal *Duplicated* state and extra failed retries (``III``) once
  a message is already past the Case-2/Case-3 distinction.
"""

import itertools

import pytest

from repro.kafka.state import (
    DeliveryCase,
    IllegalTransition,
    MessageState,
    MessageStateMachine,
    Transition,
)

MAX_DEPTH = 6

_ALL = list(Transition)


def _all_sequences():
    for depth in range(1, MAX_DEPTH + 1):
        yield from itertools.product(_ALL, repeat=depth)


def _replay(sequence):
    """Apply ``sequence``; returns (machine, failed_index_or_None)."""
    machine = MessageStateMachine()
    for index, transition in enumerate(sequence):
        try:
            machine.apply(transition)
        except IllegalTransition:
            return machine, index
    return machine, None


def _expected_case(machine):
    """Independent Table I decision table (not via classify_case)."""
    if machine.state is MessageState.DUPLICATED:
        return DeliveryCase.CASE5
    if machine.state is MessageState.DELIVERED:
        return (
            DeliveryCase.CASE1
            if machine.history == [Transition.I]
            else DeliveryCase.CASE4
        )
    if machine.state is MessageState.LOST:
        return (
            DeliveryCase.CASE2
            if machine.history == [Transition.II]
            else DeliveryCase.CASE3
        )
    return None


def test_every_sequence_is_legal_xor_raises():
    """Depth-≤6 exhaustion: legal walks classify, illegal walks raise."""
    legal = illegal = 0
    seen_cases = set()
    for sequence in _all_sequences():
        machine, failed_at = _replay(sequence)
        if failed_at is None:
            legal += 1
            case = machine.classify_case()
            assert case is _expected_case(machine), (sequence, case)
            seen_cases.add(case)
        else:
            illegal += 1
            # The prefix before the bad edge must replay cleanly and land
            # in the same state: a failed apply() must not corrupt.
            prefix_machine, prefix_failed = _replay(sequence[:failed_at])
            assert prefix_failed is None
            assert machine.state is prefix_machine.state
            assert machine.history == prefix_machine.history
    # Sanity on the partition size: 6^1 + ... + 6^6 sequences total.
    assert legal + illegal == sum(6**d for d in range(1, MAX_DEPTH + 1))
    # All five Table I cases are reachable within depth 6.
    assert seen_cases == set(DeliveryCase)


def test_illegal_edges_raise_from_every_state():
    """For each reachable state, every non-successor edge raises."""
    legal_next = {
        MessageState.READY: {Transition.I, Transition.II},
        MessageState.DELIVERED: {Transition.V},
        MessageState.LOST: {Transition.III, Transition.IV, Transition.VI},
        MessageState.DUPLICATED: {Transition.VI},
    }
    reached = {
        MessageState.READY: [],
        MessageState.DELIVERED: [Transition.I],
        MessageState.LOST: [Transition.II],
        MessageState.DUPLICATED: [Transition.I, Transition.V, Transition.VI],
    }
    for state, prefix in reached.items():
        for transition in Transition:
            machine = MessageStateMachine()
            for step in prefix:
                machine.apply(step)
            assert machine.state is state
            if transition in legal_next[state]:
                machine.apply(transition)
            else:
                with pytest.raises(IllegalTransition):
                    machine.apply(transition)
                assert machine.state is state  # unchanged after the raise


def test_extra_vi_in_duplicated_is_a_recorded_noop():
    """τ_d · VI: repeats are recorded but never change state or case."""
    for extra in range(4):
        machine = MessageStateMachine()
        for step in [Transition.II, Transition.IV, Transition.V, Transition.VI]:
            machine.apply(step)
        for _ in range(extra):
            machine.apply(Transition.VI)
        assert machine.state is MessageState.DUPLICATED
        assert machine.classify_case() is DeliveryCase.CASE5
        assert machine.duplicate_count == 1 + extra


def test_interleaved_failed_retries_never_change_a_settled_case():
    """Once a walk is past the Case-2/3 distinction (history longer than
    the single initial failure), inserting extra III edges at any Lost
    visit leaves the classification unchanged."""
    walks = [
        [Transition.II, Transition.III],                                # case 3
        [Transition.II, Transition.IV],                                 # case 4
        [Transition.I, Transition.V, Transition.IV],                    # case 4
        [Transition.II, Transition.IV, Transition.V, Transition.VI],    # case 5
        [Transition.I, Transition.V, Transition.VI],                    # case 5
    ]
    for walk in walks:
        baseline, _ = _replay(walk)
        base_case = baseline.classify_case()
        # Insert 1..2 failed retries at every position where the machine
        # is in Lost (III is only legal there).
        for position in range(1, len(walk) + 1):
            probe, failed = _replay(walk[:position])
            assert failed is None
            if probe.state is not MessageState.LOST:
                continue
            for count in (1, 2):
                padded = walk[:position] + [Transition.III] * count + walk[position:]
                machine, failed = _replay(padded)
                assert failed is None
                assert machine.classify_case() is base_case, padded
