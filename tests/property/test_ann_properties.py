"""Property-based tests on the ANN framework.

The headline property is the finite-difference gradient check: for random
small networks and random inputs, backpropagated gradients must match
numerical derivatives of the loss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import Dense, MinMaxScaler, MSELoss, Sequential, StandardScaler


def numerical_gradient(network, loss, x, y, parameter, index, epsilon=1e-6):
    original = parameter.value.flat[index]
    parameter.value.flat[index] = original + epsilon
    up, _ = loss.value_and_grad(network.forward(x), y)
    parameter.value.flat[index] = original - epsilon
    down, _ = loss.value_and_grad(network.forward(x), y)
    parameter.value.flat[index] = original
    return (up - down) / (2 * epsilon)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batch=st.integers(min_value=1, max_value=4),
    hidden=st.integers(min_value=2, max_value=6),
    activation=st.sampled_from(["tanh", "sigmoid", "identity"]),
)
@settings(max_examples=25, deadline=None)
def test_backprop_matches_finite_differences(seed, batch, hidden, activation):
    rng = np.random.default_rng(seed)
    network = Sequential([
        Dense(3, hidden, activation, rng),
        Dense(hidden, 2, "identity", rng),
    ])
    loss = MSELoss()
    x = rng.normal(size=(batch, 3))
    y = rng.normal(size=(batch, 2))
    predicted = network.forward(x, training=True)
    _, grad = loss.value_and_grad(predicted, y)
    network.backward(grad)
    for parameter in network.parameters():
        flat_size = parameter.value.size
        for index in rng.choice(flat_size, size=min(3, flat_size), replace=False):
            numeric = numerical_gradient(network, loss, x, y, parameter, index)
            analytic = parameter.grad.flat[index]
            assert abs(numeric - analytic) < 1e-4 * max(1.0, abs(numeric))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=2, max_value=40),
    cols=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30)
def test_standard_scaler_round_trip(seed, rows, cols):
    x = np.random.default_rng(seed).normal(3.0, 10.0, size=(rows, cols))
    scaler = StandardScaler().fit(x)
    assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x, atol=1e-9)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=2, max_value=40),
)
@settings(max_examples=30)
def test_minmax_scaler_output_in_unit_box(seed, rows):
    x = np.random.default_rng(seed).normal(0.0, 50.0, size=(rows, 3))
    scaled = MinMaxScaler().fit_transform(x)
    assert scaled.min() >= -1e-12
    assert scaled.max() <= 1.0 + 1e-12


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_training_never_produces_nan(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 3))
    y = rng.uniform(0, 1, size=(32, 1))
    network = Sequential([
        Dense(3, 8, "relu", rng),
        Dense(8, 1, "sigmoid", rng),
    ])
    network.fit(x, y, epochs=10, batch_size=8, rng=rng)
    assert np.all(np.isfinite(network.predict(x)))
