"""Property-based tests on the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import EventQueue, RngRegistry, Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    queue = EventQueue()
    for time in times:
        queue.push(time, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=100),
    st.integers(min_value=0, max_value=99),
)
def test_cancelling_any_subset_preserves_order_of_rest(times, cancel_stride):
    queue = EventQueue()
    events = [queue.push(time, lambda: None) for time in times]
    kept = []
    for index, event in enumerate(events):
        if cancel_stride and index % (cancel_stride + 1) == 0:
            queue.cancel(event)
        else:
            kept.append(event.time)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(kept)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50))
def test_simulator_clock_is_monotone(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
@settings(max_examples=25)
def test_rng_streams_reproducible(seed, name):
    a = RngRegistry(seed).stream(name)
    b = RngRegistry(seed).stream(name)
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
