"""Unit tests for producer records, the consumer and reconciliation."""

import pytest

from repro.kafka import (
    KafkaConsumer,
    Partition,
    ProducerRecord,
    Topic,
    reconcile,
)
from repro.kafka.consumer import ReconciliationReport


class TestProducerRecord:
    def test_keys_are_unique_and_incremental(self):
        a, b = ProducerRecord(payload_bytes=10), ProducerRecord(payload_bytes=10)
        assert b.key == a.key + 1

    def test_deadline_requires_ingest(self):
        record = ProducerRecord(payload_bytes=10)
        with pytest.raises(ValueError):
            record.deadline(1.0)
        record.ingest_time = 5.0
        assert record.deadline(1.5) == 6.5

    def test_staleness(self):
        record = ProducerRecord(payload_bytes=10, timeliness_s=2.0)
        record.ingest_time = 1.0
        assert not record.is_stale(2.9)
        assert record.is_stale(3.1)

    def test_no_timeliness_is_never_stale(self):
        record = ProducerRecord(payload_bytes=10)
        record.ingest_time = 0.0
        assert not record.is_stale(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProducerRecord(payload_bytes=0)
        with pytest.raises(ValueError):
            ProducerRecord(payload_bytes=10, timeliness_s=0.0)


def make_topic():
    return Topic("t", [Partition("t", i, "broker-0") for i in range(2)])


class TestConsumer:
    def test_consume_all_reads_everything(self):
        topic = make_topic()
        for key in range(10):
            topic.partitions[key % 2].append(key, 10, 0.0)
        entries = KafkaConsumer(topic).consume_all()
        assert sorted(entry.key for entry in entries) == list(range(10))

    def test_poll_respects_batch_limit(self):
        topic = make_topic()
        for key in range(10):
            topic.partitions[0].append(key, 10, 0.0)
        consumer = KafkaConsumer(topic, max_poll_records=3)
        assert len(consumer.poll()) == 3
        assert len(consumer.poll()) == 3

    def test_positions_advance(self):
        topic = make_topic()
        topic.partitions[0].append(1, 10, 0.0)
        consumer = KafkaConsumer(topic)
        consumer.poll()
        assert consumer.positions[0] == 1

    def test_empty_topic_polls_nothing(self):
        assert KafkaConsumer(make_topic()).poll() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            KafkaConsumer(make_topic(), max_poll_records=0)


class TestReconciliation:
    def test_all_delivered(self):
        topic = make_topic()
        keys = set(range(5))
        for key in keys:
            topic.partitions[0].append(key, 10, 0.0)
        report = reconcile(keys, topic)
        report.check_conservation()
        assert report.p_loss == 0.0
        assert report.p_duplicate == 0.0
        assert report.delivered_unique == 5

    def test_lost_keys_counted(self):
        topic = make_topic()
        topic.partitions[0].append(0, 10, 0.0)
        report = reconcile({0, 1, 2, 3}, topic)
        assert report.lost == 3
        assert report.p_loss == pytest.approx(0.75)
        assert report.lost_keys == {1, 2, 3}

    def test_duplicates_counted_once_per_key(self):
        topic = make_topic()
        for _ in range(3):
            topic.partitions[0].append(7, 10, 0.0)
        topic.partitions[0].append(8, 10, 0.0)
        report = reconcile({7, 8}, topic)
        assert report.duplicated == 1
        assert report.duplicate_copies == 2
        assert report.p_duplicate == pytest.approx(0.5)

    def test_foreign_keys_in_topic_ignored(self):
        topic = make_topic()
        topic.partitions[0].append(999, 10, 0.0)
        topic.partitions[0].append(999, 10, 0.0)
        report = reconcile({1}, topic)
        assert report.lost == 1
        assert report.duplicated == 0

    def test_staleness_accounting(self):
        topic = make_topic()
        topic.partitions[0].append(1, 10, timestamp=10.0)
        topic.partitions[0].append(2, 10, timestamp=0.5)
        report = reconcile(
            {1, 2}, topic, ingest_times={1: 0.0, 2: 0.0}, timeliness_s=1.0
        )
        assert report.stale == 1
        assert report.p_stale == pytest.approx(0.5)

    def test_conservation_violation_raises(self):
        report = ReconciliationReport(
            produced=5, delivered_unique=3, lost=1, duplicated=0, duplicate_copies=0
        )
        with pytest.raises(AssertionError):
            report.check_conservation()
