"""Unit tests for graceful degradation: breaker, fallback chain, controller."""

import pytest

from repro.kafka.config import DEFAULT_PRODUCER_CONFIG
from repro.kafka.semantics import DeliverySemantics
from repro.kpi import (
    PARKED_CONFIG,
    CircuitBreaker,
    DegradedModeController,
    IntervalObservation,
)
from repro.models.predictor import (
    CONSERVATIVE_ESTIMATE,
    ReliabilityPredictor,
)
from repro.models.features import FeatureVector
from repro.testbed import Scenario, run_experiment
from repro.workloads.streams import WEB_ACCESS_LOGS

SILENT = IntervalObservation(requests_sent=100, acknowledged=2)
HEALTHY = IntervalObservation(requests_sent=100, acknowledged=97, min_rtt_s=0.01)


def make_vector(semantics=DeliverySemantics.AT_LEAST_ONCE):
    return FeatureVector(
        message_bytes=200.0,
        timeliness_s=5.0,
        network_delay_s=0.02,
        loss_rate=0.05,
        semantics=semantics,
        batch_size=8.0,
        polling_interval_s=0.01,
        message_timeout_s=1.5,
    )


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_intervals=0)

    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2)
        assert breaker.record(healthy=False) == CircuitBreaker.CLOSED
        assert breaker.record(healthy=False) == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allows_selection

    def test_cooldown_reaches_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_intervals=2)
        breaker.record(healthy=False)  # open
        assert breaker.record(healthy=False) == CircuitBreaker.OPEN
        assert breaker.record(healthy=False) == CircuitBreaker.HALF_OPEN
        assert breaker.allows_selection

    def test_failed_probe_reopens_counting_a_trip(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_intervals=1)
        breaker.record(healthy=False)  # open
        breaker.record(healthy=False)  # half-open
        assert breaker.record(healthy=False) == CircuitBreaker.OPEN
        assert breaker.trips == 2

    def test_any_healthy_interval_closes(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record(healthy=False)
        assert breaker.record(healthy=True) == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0


class TestIntervalObservation:
    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            IntervalObservation(requests_sent=-1, acknowledged=0)
        with pytest.raises(ValueError):
            IntervalObservation(requests_sent=1, acknowledged=0, retransmissions=-2)

    def test_ack_ratio(self):
        assert HEALTHY.ack_ratio == pytest.approx(0.97)
        assert SILENT.ack_ratio == pytest.approx(0.02)

    def test_no_signal_yields_none(self):
        nothing_sent = IntervalObservation(requests_sent=0, acknowledged=0)
        assert nothing_sent.ack_ratio is None
        assert not nothing_sent.broker_silent
        fire_and_forget = IntervalObservation(
            requests_sent=50, acknowledged=0, waits_for_ack=False
        )
        assert fire_and_forget.ack_ratio is None
        assert not fire_and_forget.broker_silent

    def test_broker_silent_is_strict_zero(self):
        dead = IntervalObservation(requests_sent=50, acknowledged=0)
        assert dead.broker_silent
        assert not SILENT.broker_silent


class TestFallbackChain:
    def test_untrained_predictor_is_conservative(self):
        fallback = ReliabilityPredictor().predict_with_fallback(make_vector())
        assert fallback.source == "conservative"
        assert fallback.degraded
        assert fallback.estimate == CONSERVATIVE_ESTIMATE

    def test_neighbour_tier_serves_remembered_measurements(self):
        predictor = ReliabilityPredictor()
        result = run_experiment(Scenario(message_count=60, seed=3))
        predictor.remember([result])
        fallback = predictor.predict_with_fallback(make_vector())
        assert fallback.source == "neighbour"
        assert fallback.degraded
        assert fallback.estimate.p_loss == pytest.approx(
            min(1.0, max(0.0, result.p_loss))
        )

    def test_neighbour_requires_matching_semantics(self):
        predictor = ReliabilityPredictor()
        result = run_experiment(Scenario(message_count=60, seed=3))
        predictor.remember([result])
        fallback = predictor.predict_with_fallback(
            make_vector(semantics=DeliverySemantics.EXACTLY_ONCE)
        )
        assert fallback.source == "conservative"


class TestDegradedModeController:
    def controller(self, **kwargs):
        return DegradedModeController(ReliabilityPredictor(), **kwargs)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.controller(hysteresis=-0.1)
        with pytest.raises(ValueError):
            self.controller(min_hold_intervals=0)
        with pytest.raises(ValueError):
            self.controller(silence_threshold=1.0)

    def test_silence_parks_on_safe_config(self):
        controller = self.controller()
        controller.observe(SILENT, message_bytes=200, batch_size=8)
        decision = controller.decide(WEB_ACCESS_LOGS, DEFAULT_PRODUCER_CONFIG)
        assert decision.reason == "parked"
        assert decision.config == PARKED_CONFIG
        assert decision.breaker_state == CircuitBreaker.OPEN
        assert decision.changed

    def test_recovery_closes_breaker_and_unparks(self):
        controller = self.controller()
        controller.observe(SILENT, message_bytes=200, batch_size=8)
        controller.decide(WEB_ACCESS_LOGS, DEFAULT_PRODUCER_CONFIG)
        controller.observe(HEALTHY, message_bytes=200, batch_size=8)
        decision = controller.decide(WEB_ACCESS_LOGS, PARKED_CONFIG)
        assert decision.breaker_state == CircuitBreaker.CLOSED
        assert decision.reason != "parked"

    def test_no_signal_interval_does_not_close_open_breaker(self):
        controller = self.controller()
        controller.observe(SILENT, message_bytes=200, batch_size=8)
        assert controller.breaker.state == CircuitBreaker.OPEN
        fire_and_forget = IntervalObservation(
            requests_sent=50, acknowledged=0, waits_for_ack=False
        )
        controller.observe(fire_and_forget, message_bytes=200, batch_size=8)
        assert controller.breaker.state == CircuitBreaker.OPEN

    def test_min_hold_damps_flapping(self):
        controller = self.controller(min_hold_intervals=3)
        for _ in range(3):
            controller.observe(HEALTHY, message_bytes=200, batch_size=8)
        # A park/unpark cycle resets the hold counter via the change.
        controller.observe(SILENT, message_bytes=200, batch_size=8)
        parked = controller.decide(WEB_ACCESS_LOGS, DEFAULT_PRODUCER_CONFIG)
        assert parked.changed
        controller.observe(HEALTHY, message_bytes=200, batch_size=8)
        decision = controller.decide(WEB_ACCESS_LOGS, PARKED_CONFIG)
        assert decision.reason == "held"
        assert decision.config == PARKED_CONFIG

    def test_degraded_tier_never_switches_to_fire_and_forget(self):
        # With an untrained predictor every prediction is a fallback tier;
        # the observability guard must keep the ack stream alive no matter
        # what the performance term prefers.
        controller = self.controller(min_hold_intervals=1)
        current = DEFAULT_PRODUCER_CONFIG
        for _ in range(6):
            controller.observe(HEALTHY, message_bytes=200, batch_size=8)
            decision = controller.decide(WEB_ACCESS_LOGS, current)
            assert decision.config.semantics.waits_for_ack
            current = decision.config

    def test_decisions_report_prediction_source(self):
        controller = self.controller()
        controller.observe(HEALTHY, message_bytes=200, batch_size=8)
        decision = controller.decide(WEB_ACCESS_LOGS, DEFAULT_PRODUCER_CONFIG)
        assert decision.prediction_source in ("ann", "neighbour", "conservative")
        assert 0.0 <= decision.predicted_gamma <= 1.0
