"""Unit tests for the reliability-predictor feature schema and routing."""

import numpy as np
import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.models import (
    ABNORMAL,
    FeatureSchema,
    FeatureVector,
    NORMAL,
    ReliabilityEstimate,
    ReliabilityPredictor,
    TrainingSettings,
    region_of,
    split_results,
)
from repro.testbed import ExperimentResult, Scenario


def make_result(**overrides):
    defaults = dict(
        message_bytes=200,
        timeliness_s=None,
        network_delay_s=0.0,
        loss_rate=0.0,
        semantics="at_least_once",
        batch_size=1,
        polling_interval_s=0.0,
        message_timeout_s=1.5,
        produced=1000,
        p_loss=0.1,
        p_duplicate=0.01,
    )
    defaults.update(overrides)
    return ExperimentResult(**defaults)


class TestRegion:
    def test_normal_requires_low_delay_and_zero_loss(self):
        assert region_of(0.1, 0.0) == NORMAL
        assert region_of(0.25, 0.0) == ABNORMAL
        assert region_of(0.0, 0.05) == ABNORMAL

    def test_boundary_delay(self):
        assert region_of(0.199, 0.0) == NORMAL
        assert region_of(0.200, 0.0) == ABNORMAL


class TestFeatureVector:
    def test_from_scenario(self):
        scenario = Scenario(
            message_bytes=300,
            network_delay_s=0.1,
            loss_rate=0.19,
            config=ProducerConfig(batch_size=4),
        )
        vector = FeatureVector.from_scenario(scenario)
        assert vector.message_bytes == 300.0
        assert vector.batch_size == 4.0
        assert vector.region == ABNORMAL

    def test_from_result(self):
        vector = FeatureVector.from_result(make_result(loss_rate=0.1))
        assert vector.loss_rate == 0.1
        assert vector.semantics is DeliverySemantics.AT_LEAST_ONCE

    def test_submodel_key(self):
        vector = FeatureVector.from_result(make_result())
        assert vector.submodel_key == (NORMAL, "at_least_once")


class TestFeatureSchema:
    def test_normal_region_excludes_network_features(self):
        schema = FeatureSchema(NORMAL)
        assert "network_delay_s" not in schema.columns
        assert "loss_rate" not in schema.columns

    def test_abnormal_region_includes_network_features(self):
        schema = FeatureSchema(ABNORMAL)
        assert "network_delay_s" in schema.columns
        assert "loss_rate" in schema.columns

    def test_encode_matches_columns(self):
        schema = FeatureSchema(ABNORMAL)
        vector = FeatureVector.from_result(make_result(loss_rate=0.19))
        row = schema.encode(vector)
        assert row.shape == (schema.input_dim,)
        assert row[schema.columns.index("loss_rate")] == 0.19

    def test_output_reduction_for_at_most_once(self):
        schema = FeatureSchema(NORMAL)
        assert schema.output_columns(DeliverySemantics.AT_MOST_ONCE) == ["p_loss"]
        assert schema.output_columns(DeliverySemantics.AT_LEAST_ONCE) == [
            "p_loss",
            "p_duplicate",
        ]

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError):
            FeatureSchema("twilight")

    def test_encode_many_stacks(self):
        schema = FeatureSchema(NORMAL)
        vectors = [FeatureVector.from_result(make_result()) for _ in range(3)]
        assert schema.encode_many(vectors).shape == (3, schema.input_dim)


class TestReliabilityEstimate:
    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            ReliabilityEstimate(p_loss=-0.1, p_duplicate=0.0)
        with pytest.raises(ValueError):
            ReliabilityEstimate(p_loss=0.0, p_duplicate=1.5)


def synthetic_results(count=60, seed=0):
    """Rows whose P_l is a smooth function of loss rate and batch size."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(count):
        loss_rate = float(rng.choice([0.05, 0.1, 0.15, 0.2, 0.25]))
        batch = int(rng.choice([1, 2, 4, 8]))
        p_loss = min(1.0, max(0.0, loss_rate * 2.5 / batch + rng.normal(0, 0.005)))
        rows.append(
            make_result(
                loss_rate=loss_rate,
                network_delay_s=0.1,
                batch_size=batch,
                p_loss=p_loss,
                p_duplicate=0.02 / batch,
            )
        )
    return rows


class TestPredictorTraining:
    def test_fit_and_predict_learns_trend(self):
        rows = synthetic_results()
        predictor = ReliabilityPredictor()
        predictor.fit(
            rows,
            TrainingSettings(hidden=(32, 16), epochs=300, learning_rate=0.3, patience=None),
        )
        low = predictor.predict_vector(
            FeatureVector.from_result(make_result(loss_rate=0.05, network_delay_s=0.1, batch_size=8))
        )
        high = predictor.predict_vector(
            FeatureVector.from_result(make_result(loss_rate=0.25, network_delay_s=0.1, batch_size=1))
        )
        assert high.p_loss > low.p_loss + 0.2

    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            ReliabilityPredictor().fit([])

    def test_small_groups_skipped(self):
        rows = synthetic_results(count=30) + [make_result()]  # 1 normal row
        predictor = ReliabilityPredictor()
        counts = predictor.fit(
            rows, TrainingSettings(hidden=(8,), epochs=5, patience=None)
        )
        assert (NORMAL, "at_least_once") not in counts

    def test_missing_submodel_raises(self):
        predictor = ReliabilityPredictor()
        predictor.fit(
            synthetic_results(), TrainingSettings(hidden=(8,), epochs=5, patience=None)
        )
        with pytest.raises(KeyError):
            predictor.predict_vector(FeatureVector.from_result(make_result()))

    def test_evaluate_reports_mae(self):
        rows = synthetic_results()
        predictor = ReliabilityPredictor()
        predictor.fit(
            rows, TrainingSettings(hidden=(32, 16), epochs=200, learning_rate=0.3, patience=None)
        )
        report = predictor.evaluate(rows)
        assert set(report) >= {"p_loss", "overall"}
        assert report["overall"] < 0.2

    def test_predictions_clipped_to_unit_interval(self):
        rows = synthetic_results()
        predictor = ReliabilityPredictor()
        predictor.fit(rows, TrainingSettings(hidden=(8,), epochs=10, patience=None))
        estimate = predictor.predict_vector(FeatureVector.from_result(rows[0]))
        assert 0.0 <= estimate.p_loss <= 1.0
        assert 0.0 <= estimate.p_duplicate <= 1.0


class TestSplit:
    def test_split_is_disjoint_and_complete(self):
        rows = synthetic_results(count=20)
        train, test = split_results(rows, 0.25, seed=1)
        assert len(train) + len(test) == 20
        assert len(test) == 5

    def test_split_validation(self):
        with pytest.raises(ValueError):
            split_results(synthetic_results(count=3), 0.5)
