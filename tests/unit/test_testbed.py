"""Unit tests for scenarios, results, tracker, sweeps and collection."""

import pytest

from repro.kafka import DeliverySemantics, ProducerRecord
from repro.kafka.state import DeliveryCase, MessageState
from repro.testbed import (
    CollectionPlan,
    DeliveryTracker,
    ExperimentResult,
    Scenario,
    abnormal_case_plan,
    apply_axis,
    load_results_csv,
    normal_case_plan,
    save_results_csv,
    wilson_interval,
)


class TestScenario:
    def test_normal_network_predicate(self):
        assert Scenario(network_delay_s=0.1, loss_rate=0.0).is_normal_network
        assert not Scenario(network_delay_s=0.3, loss_rate=0.0).is_normal_network
        assert not Scenario(network_delay_s=0.0, loss_rate=0.01).is_normal_network

    def test_with_returns_modified_copy(self):
        base = Scenario()
        changed = base.with_(message_bytes=500)
        assert changed.message_bytes == 500
        assert base.message_bytes == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(message_bytes=0)
        with pytest.raises(ValueError):
            Scenario(loss_rate=1.0)
        with pytest.raises(ValueError):
            Scenario(message_count=0)
        with pytest.raises(ValueError):
            Scenario(arrival_rate=0.0)


class TestApplyAxis:
    def test_scenario_field(self):
        scenario = apply_axis(Scenario(), "message_bytes", 321)
        assert scenario.message_bytes == 321

    def test_config_field(self):
        scenario = apply_axis(Scenario(), "config.batch_size", 7)
        assert scenario.config.batch_size == 7

    def test_config_semantics(self):
        scenario = apply_axis(
            Scenario(), "config.semantics", DeliverySemantics.AT_MOST_ONCE
        )
        assert scenario.config.semantics is DeliverySemantics.AT_MOST_ONCE


class TestWilsonInterval:
    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_interval_contains_point_estimate(self):
        low, high = wilson_interval(20, 100)
        assert low < 0.2 < high

    def test_interval_tightens_with_samples(self):
        narrow = wilson_interval(200, 1000)
        wide = wilson_interval(20, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_bounds_clamped(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        low, high = wilson_interval(50, 50)
        assert high == 1.0


def make_result(**overrides):
    defaults = dict(
        message_bytes=200,
        timeliness_s=None,
        network_delay_s=0.0,
        loss_rate=0.0,
        semantics="at_least_once",
        batch_size=1,
        polling_interval_s=0.0,
        message_timeout_s=1.5,
        produced=1000,
        p_loss=0.1,
        p_duplicate=0.01,
        seed=3,
    )
    defaults.update(overrides)
    return ExperimentResult(**defaults)


class TestResults:
    def test_feature_vector_mapping(self):
        features = make_result().feature_vector()
        assert features["message_bytes"] == 200.0
        assert features["semantics"] == "at_least_once"

    def test_confidence_intervals(self):
        result = make_result()
        low, high = result.p_loss_ci
        assert low < 0.1 < high

    def test_csv_round_trip(self, tmp_path):
        results = [make_result(), make_result(message_bytes=500, timeliness_s=2.0)]
        path = tmp_path / "rows.csv"
        save_results_csv(results, path)
        loaded = load_results_csv(path)
        assert len(loaded) == 2
        assert loaded[0].message_bytes == 200
        assert loaded[0].timeliness_s is None
        assert loaded[1].timeliness_s == 2.0
        assert loaded[1].p_loss == pytest.approx(0.1)


class TestTracker:
    def make_record(self, key_time=0.0):
        record = ProducerRecord(payload_bytes=100)
        record.ingest_time = key_time
        return record

    def test_clean_delivery_is_case1(self):
        tracker = DeliveryTracker()
        record = self.make_record()
        tracker.on_ingest(record)
        tracker.on_send_attempt(record, 0)
        tracker.on_append(record, None, 0)
        tracker.on_acknowledged(record, 0.1)
        census = tracker.census()
        assert census.case_counts == {DeliveryCase.CASE1: 1}

    def test_expiry_in_queue_is_case2(self):
        tracker = DeliveryTracker()
        record = self.make_record()
        tracker.on_ingest(record)
        tracker.on_expired(record, after_send=False)
        assert tracker.census().case_counts == {DeliveryCase.CASE2: 1}

    def test_retry_recovery_is_case4(self):
        tracker = DeliveryTracker()
        record = self.make_record()
        tracker.on_ingest(record)
        tracker.on_send_attempt(record, 0)
        tracker.on_attempt_failed(record, 0)
        tracker.on_send_attempt(record, 1)
        tracker.on_append(record, None, 0)
        assert tracker.census().case_counts == {DeliveryCase.CASE4: 1}

    def test_ack_loss_duplicate_is_case5(self):
        tracker = DeliveryTracker()
        record = self.make_record()
        tracker.on_ingest(record)
        tracker.on_send_attempt(record, 0)
        tracker.on_append(record, None, 0)        # persisted
        tracker.on_attempt_failed(record, 0)      # response lost → V
        tracker.on_send_attempt(record, 1)
        tracker.on_append(record, None, 1)        # persisted again → VI
        assert tracker.census().case_counts == {DeliveryCase.CASE5: 1}

    def test_late_duplicate_without_observed_failure(self):
        tracker = DeliveryTracker()
        record = self.make_record()
        tracker.on_ingest(record)
        tracker.on_append(record, None, 0)
        tracker.on_append(record, None, 1)  # retry landed before any failure
        machine = tracker.machines[record.key]
        assert machine.state is MessageState.DUPLICATED

    def test_persisted_but_unacked_divergence_counted(self):
        tracker = DeliveryTracker()
        record = self.make_record()
        tracker.on_ingest(record)
        tracker.on_append(record, None, 0)
        tracker.on_expired(record, after_send=True)  # producer view: lost
        assert tracker.persisted_but_unacked() == 1
        assert tracker.census().case_counts == {DeliveryCase.CASE3: 1}

    def test_unresolved_counted_separately(self):
        tracker = DeliveryTracker()
        tracker.on_ingest(self.make_record())
        census = tracker.census()
        assert census.unresolved == 1
        assert census.total() == 0


class TestCollectionPlans:
    def test_normal_plan_has_clean_network(self):
        for scenario in normal_case_plan(max_rows=20).scenarios():
            assert scenario.is_normal_network

    def test_abnormal_plan_covers_faults(self):
        scenarios = abnormal_case_plan(max_rows=200).scenarios()
        assert any(s.loss_rate > 0 for s in scenarios)
        assert any(s.network_delay_s >= 0.2 for s in scenarios)

    def test_max_rows_subsamples(self):
        plan = abnormal_case_plan(max_rows=15)
        assert len(plan.scenarios()) == 15

    def test_seeds_differ_per_row(self):
        scenarios = normal_case_plan(max_rows=10).scenarios()
        assert len({s.seed for s in scenarios}) == len(scenarios)

    def test_custom_plan_grid_product(self):
        plan = CollectionPlan(
            "custom", Scenario(), {"message_bytes": [100, 200], "loss_rate": [0.0, 0.1]}
        )
        assert len(plan.scenarios()) == 4
