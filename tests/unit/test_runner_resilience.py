"""Unit tests for fault-tolerant sweep execution: retry, timeout, quarantine."""

import json

import pytest

import repro.testbed.runner as runner_mod
from repro.observability.metrics import MetricsRegistry
from repro.testbed import (
    ExperimentFailed,
    Quarantine,
    ResultCache,
    RetryPolicy,
    RunFailure,
    Scenario,
    run_many,
    scenario_fingerprint,
)

SMALL = Scenario(message_count=60, seed=3)


def flaky_run_experiment(fail_seeds, fail_times=None, counter=None):
    """A run_experiment stand-in failing for the given seeds.

    ``fail_times`` bounds how many times each seed fails (None = always);
    ``counter`` collects per-seed call counts.
    """
    real = runner_mod.run_experiment
    calls = {}

    def fake(scenario, telemetry=None):
        calls[scenario.seed] = calls.get(scenario.seed, 0) + 1
        if counter is not None:
            counter[scenario.seed] = calls[scenario.seed]
        if scenario.seed in fail_seeds:
            if fail_times is None or calls[scenario.seed] <= fail_times:
                raise RuntimeError(f"injected failure #{calls[scenario.seed]}")
        return real(scenario)

    return fake


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_delay_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter_fraction=0.2)
        assert policy.delay_s("abc", 1) == policy.delay_s("abc", 1)
        assert policy.delay_s("abc", 1) != policy.delay_s("abc", 2)
        assert policy.delay_s("abc", 1) != policy.delay_s("xyz", 1)

    def test_delay_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, jitter_fraction=0.1
        )
        for attempt, nominal in ((1, 0.1), (2, 0.2), (3, 0.4)):
            delay = policy.delay_s("key", attempt)
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base_s=0.05, jitter_fraction=0.0)
        assert policy.delay_s("k", 1) == pytest.approx(0.05)
        assert policy.delay_s("k", 2) == pytest.approx(0.10)


class TestRetryExecution:
    def test_transient_failure_recovers_within_budget(self, monkeypatch):
        counter = {}
        monkeypatch.setattr(
            runner_mod,
            "run_experiment",
            flaky_run_experiment({3}, fail_times=2, counter=counter),
        )
        sleeps = []
        [result] = run_many(
            [SMALL],
            workers=1,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
            sleep=sleeps.append,
        )
        assert not isinstance(result, RunFailure)
        assert counter[3] == 3
        assert len(sleeps) == 2
        assert all(s > 0 for s in sleeps)

    def test_backoff_schedule_is_reproducible(self, monkeypatch):
        schedules = []
        for _ in range(2):
            monkeypatch.setattr(
                runner_mod, "run_experiment", flaky_run_experiment({3})
            )
            sleeps = []
            run_many(
                [SMALL],
                workers=1,
                retry=RetryPolicy(max_attempts=3, backoff_base_s=0.02),
                on_error="collect",
                sleep=sleeps.append,
            )
            schedules.append(tuple(sleeps))
        assert schedules[0] == schedules[1]

    def test_failure_message_carries_fingerprint_and_traceback(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "run_experiment", flaky_run_experiment({3}))
        with pytest.raises(ExperimentFailed) as excinfo:
            run_many(
                [SMALL],
                workers=1,
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
                sleep=lambda s: None,
            )
        message = str(excinfo.value)
        from repro.testbed.cache import default_salt

        fingerprint = scenario_fingerprint(SMALL, default_salt())
        assert fingerprint[:12] in message
        assert "attempt" in message
        assert "RuntimeError" in message
        assert "injected failure" in message

    def test_failure_message_truncates_long_grids(self, monkeypatch):
        scenarios = [SMALL.with_(seed=seed) for seed in range(10, 16)]
        monkeypatch.setattr(
            runner_mod,
            "run_experiment",
            flaky_run_experiment(set(range(10, 16))),
        )
        with pytest.raises(ExperimentFailed) as excinfo:
            run_many(scenarios, workers=1, sleep=lambda s: None)
        message = str(excinfo.value)
        assert "6 scenario(s) failed" in message
        assert "and 3 more" in message


class TestQuarantine:
    def test_budget_gates_quarantine(self, tmp_path):
        quarantine = Quarantine(tmp_path / "q.json", budget=2)
        assert quarantine.record_failure("fp", "boom", seed=1) is False
        assert not quarantine.is_quarantined("fp")
        assert quarantine.record_failure("fp", "boom again", seed=1) is True
        assert quarantine.is_quarantined("fp")
        assert quarantine.failures("fp") == 2
        assert quarantine.last_error("fp") == "boom again"

    def test_state_survives_reload(self, tmp_path):
        path = tmp_path / "q.json"
        Quarantine(path).record_failure("fp", "boom")
        reloaded = Quarantine(path)
        assert reloaded.is_quarantined("fp")
        assert len(reloaded) == 1

    def test_corrupt_file_resets_to_empty(self, tmp_path):
        path = tmp_path / "q.json"
        path.write_text("{not json")
        quarantine = Quarantine(path)
        assert len(quarantine) == 0
        assert not quarantine.is_quarantined("fp")

    def test_remove_and_clear(self, tmp_path):
        quarantine = Quarantine(tmp_path / "q.json")
        quarantine.record_failure("a", "x")
        quarantine.record_failure("b", "y")
        assert quarantine.remove("a") is True
        assert quarantine.remove("a") is False
        assert quarantine.clear() == 1

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Quarantine(tmp_path / "q.json", budget=0)

    def test_run_many_quarantines_persistent_failure(self, tmp_path, monkeypatch):
        counter = {}
        monkeypatch.setattr(
            runner_mod,
            "run_experiment",
            flaky_run_experiment({3}, counter=counter),
        )
        quarantine = Quarantine(tmp_path / "q.json", budget=1)
        good = SMALL.with_(seed=9)
        results = run_many(
            [good, SMALL],
            workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            quarantine=quarantine,
            sleep=lambda s: None,
        )
        # The grid completed despite the persistent failure: no raise.
        assert not isinstance(results[0], RunFailure)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.attempts == 2
        assert failure.quarantined

        # Re-running skips the quarantined scenario entirely.
        counter.clear()
        results = run_many(
            [good, SMALL],
            workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            quarantine=quarantine,
            sleep=lambda s: None,
        )
        assert 3 not in counter
        skipped = results[1]
        assert isinstance(skipped, RunFailure)
        assert skipped.quarantined
        assert skipped.attempts == 0
        assert "quarantined" in skipped.error


class TestCacheCorruption:
    def test_corrupt_entry_is_quarantined_and_counted(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path, salt="v1", metrics=metrics)
        [result] = run_many([SMALL], workers=1, cache=cache)
        path = cache._path(cache.key(SMALL))
        path.write_text("{torn write")

        assert cache.get(SMALL) is None
        assert cache.corruptions == 1
        assert metrics.counter("cache.corrupt_entries").value == 1
        # The bad file moved aside for post-mortem and left the lookup path.
        assert not path.exists()
        assert (tmp_path / ResultCache.CORRUPT_DIR / path.name).exists()
        assert len(cache) == 0

        # A fresh write repairs the slot.
        cache.put(SMALL, result)
        assert cache.get(SMALL) == result

    def test_unknown_fields_count_as_corruption(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        run_many([SMALL], workers=1, cache=cache)
        path = cache._path(cache.key(SMALL))
        payload = json.loads(path.read_text())
        payload["result"]["not_a_field"] = 1
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.get(SMALL) is None
        assert cache.corruptions == 1


class TestResume:
    def test_interrupted_sweep_resumes_from_cache(self, tmp_path, monkeypatch):
        scenarios = [SMALL.with_(seed=seed) for seed in (21, 22, 23, 24)]
        cache = ResultCache(tmp_path, salt="v1")
        real = runner_mod.run_experiment

        def interrupt_third(scenario, telemetry=None):
            if scenario.seed == 23:
                raise KeyboardInterrupt
            return real(scenario)

        monkeypatch.setattr(runner_mod, "run_experiment", interrupt_third)
        with pytest.raises(KeyboardInterrupt):
            run_many(scenarios, workers=1, cache=cache)
        assert len(cache) == 2  # the two finished rows were checkpointed

        ran = []

        def counting(scenario, telemetry=None):
            ran.append(scenario.seed)
            return real(scenario)

        monkeypatch.setattr(runner_mod, "run_experiment", counting)
        results = run_many(scenarios, workers=1, cache=cache)
        assert len(results) == 4
        assert all(not isinstance(r, RunFailure) for r in results)
        # Only the interrupted tail was recomputed.
        assert sorted(ran) == [23, 24]
