"""REPRO103 violating fixture: hash-ordered iteration."""


def report_keys(counts, source_keys):
    lines = []
    # REPRO103: set-difference iteration order leaks into the output
    for key in set(source_keys) - set(counts):
        lines.append(f"lost {key}")
    return lines


def first_views(names):
    return [name.upper() for name in {n.strip() for n in names}]  # REPRO103


def union_walk(a, b):
    out = []
    for item in frozenset(a) | frozenset(b):  # REPRO103: set algebra
        out.append(item)
    return out
