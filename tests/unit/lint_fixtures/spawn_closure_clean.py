"""REPRO203 clean fixture: module-level pool entry points."""


def _run_one(scenario):
    return scenario.seed


def run_grid(pool, scenarios):
    handles = [pool.apply_async(_run_one, (s,)) for s in scenarios]
    mapped = pool.imap(_run_one, scenarios)
    return handles, list(mapped)
