"""REPRO103 clean fixture: set order pinned with sorted()."""


def report_keys(counts, source_keys):
    lost = set(source_keys) - set(counts)
    lines = []
    for key in sorted(lost):
        lines.append(f"lost {key}")
    return lines


def first_views(names):
    return [name.upper() for name in sorted({n.strip() for n in names})]


def membership_is_fine(keys):
    wanted = {"a", "b"}
    return [key for key in keys if key in wanted]
