"""REPRO201 clean fixture: tolerances and allowed sentinels."""

import math


def crossed_threshold(p_loss: float) -> bool:
    return math.isclose(p_loss, 0.05, abs_tol=1e-9)


def no_jitter_configured(jitter_fraction: float) -> bool:
    return jitter_fraction == 0.0  # sentinel: bit-exact by construction


def is_saturated(utilisation: float) -> bool:
    return utilisation == 1.0  # sentinel


def ordering_is_fine(a: float) -> bool:
    return a < 0.25
