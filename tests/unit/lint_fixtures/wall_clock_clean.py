"""REPRO102 clean fixture: time comes from the simulator clock."""


def stamp(simulator) -> float:
    return simulator.now


def deadline(simulator, timeout_s: float) -> float:
    return simulator.now + timeout_s
