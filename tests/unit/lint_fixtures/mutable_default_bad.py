"""REPRO202 violating fixture: shared mutable defaults."""


def accumulate(value, acc=[]):  # REPRO202
    acc.append(value)
    return acc


def tally(key, counts={}):  # REPRO202
    counts[key] = counts.get(key, 0) + 1
    return counts


def dedupe(items, seen=set()):  # REPRO202
    return [item for item in items if item not in seen]
