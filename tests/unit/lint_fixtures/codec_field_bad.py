"""REPRO301 violating fixture: codec-unsafe dataclass fields."""

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class Scenario:
    message_bytes: int = 200
    labels: Dict[str, str] = field(default_factory=dict)  # REPRO301
    on_complete: Optional[Callable[[], None]] = None  # REPRO301
