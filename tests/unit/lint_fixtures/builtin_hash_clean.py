"""REPRO104 clean fixture: stable digests via hashlib."""

import hashlib


def stream_seed(master_seed: int, name: str) -> int:
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return master_seed ^ int.from_bytes(digest, "big")
