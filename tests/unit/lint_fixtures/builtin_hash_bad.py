"""REPRO104 violating fixture: PYTHONHASHSEED-dependent hash()."""


def stream_seed(master_seed: int, name: str) -> int:
    return master_seed ^ hash(name)  # REPRO104: varies across processes
