"""REPRO106 clean fixture: listings wrapped in sorted()."""

import os


def cache_entries(root):
    return [entry.stem for entry in sorted(root.glob("*/*.json"))]


def model_names(root):
    return sorted(os.listdir(root))
