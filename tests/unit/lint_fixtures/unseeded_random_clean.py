"""REPRO101 clean fixture: all randomness flows from seeded streams."""

import numpy as np


def jitter(rng: np.random.Generator) -> float:
    return float(rng.uniform(0.0, 1.0))


def seeded_stream(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def derived_stream(seed: int) -> np.random.Generator:
    seq = np.random.SeedSequence([seed, 7])
    return np.random.Generator(np.random.PCG64(seq))
