"""REPRO105 clean fixture: every dump pins key order."""

import json


def write_report(path, payload):
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


def dump_report(handle, payload):
    json.dump(payload, handle, sort_keys=True)


def loads_are_unaffected(text):
    return json.loads(text)
