"""Golden fixtures for the lint rules.

Each rule has a ``<slug>_bad.py`` (must fire) and ``<slug>_clean.py``
(must stay quiet) pair.  The files are never imported or executed —
``tests/unit/test_lint_rules.py`` feeds their *text* to the engine with
an in-scope module override — and the directory is excluded from
``repro lint`` scans (see ``DEFAULT_EXCLUDED_DIRS``), so the deliberate
violations never pollute a real lint run.
"""
