"""REPRO201 violating fixture: exact equality on computed floats."""


def crossed_threshold(p_loss: float) -> bool:
    return p_loss == 0.05  # REPRO201: one rounding error from flipping


def not_at_half(ratio: float) -> bool:
    return ratio != 0.5  # REPRO201


def negative_literal(delta: float) -> bool:
    return delta == -2.5  # REPRO201
