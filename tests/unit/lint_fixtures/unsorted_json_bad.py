"""REPRO105 violating fixture: insertion-ordered JSON artifacts."""

import json


def write_report(path, payload):
    path.write_text(json.dumps(payload, indent=2))  # REPRO105


def dump_report(handle, payload):
    json.dump(payload, handle)  # REPRO105


def explicit_false(payload):
    return json.dumps(payload, sort_keys=False)  # REPRO105
