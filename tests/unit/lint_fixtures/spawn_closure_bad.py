"""REPRO203 violating fixture: closures handed to the spawn pool."""


def run_grid(pool, scenarios):
    def run_one(scenario):  # closure over nothing, but still unpicklable
        return scenario.seed

    handles = [pool.apply_async(run_one, (s,)) for s in scenarios]  # REPRO203
    mapped = pool.imap(lambda s: s.seed, scenarios)  # REPRO203
    return handles, list(mapped)
