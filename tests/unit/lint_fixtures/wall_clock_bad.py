"""REPRO102 violating fixture: host clock reads in simulated code."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # REPRO102: wall clock


def measure() -> float:
    return time.perf_counter()  # REPRO102: wall clock


def label() -> str:
    return datetime.now().isoformat()  # REPRO102: wall clock
