"""REPRO202 clean fixture: None defaults built in the body."""

from dataclasses import dataclass, field
from typing import List, Optional


def accumulate(value, acc: Optional[list] = None):
    acc = [] if acc is None else acc
    acc.append(value)
    return acc


@dataclass
class Bucket:
    items: List[int] = field(default_factory=list)
