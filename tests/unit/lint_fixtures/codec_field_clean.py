"""REPRO301 clean fixture: scalar / Optional / registered-class fields."""

from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple


@dataclass(frozen=True)
class ProducerConfig:
    batch_size: int = 1
    polling_interval_s: float = 0.0


@dataclass(frozen=True)
class Scenario:
    KIND: ClassVar[str] = "scenario"
    message_bytes: int = 200
    timeliness_s: Optional[float] = None
    config: ProducerConfig = field(default_factory=ProducerConfig)
    axes: Tuple[float, ...] = ()
    topic_name: "str" = "events"
