"""REPRO101 violating fixture: global / unseeded RNG use."""

import random

import numpy as np


def jitter() -> float:
    return random.uniform(0.0, 1.0)  # REPRO101: stdlib global RNG


def noise():
    return np.random.rand(4)  # REPRO101: numpy legacy global RNG


def fresh_stream():
    return np.random.default_rng()  # REPRO101: entropy-seeded
