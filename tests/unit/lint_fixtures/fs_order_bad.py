"""REPRO106 violating fixture: filesystem-ordered listings."""

import os


def cache_entries(root):
    return [entry.stem for entry in root.glob("*/*.json")]  # REPRO106


def model_names(root):
    names = []
    for name in os.listdir(root):  # REPRO106
        names.append(name)
    return names
