"""Unit tests for the performance model, weighted KPI and Eq. 3."""

import numpy as np
import pytest

from repro.kafka import DeliverySemantics, HardwareProfile, ProducerConfig
from repro.kpi import (
    DEFAULT_WEIGHTS,
    IntervalMeasurement,
    KpiWeights,
    aggregate_rates,
    scale_producers,
    weighted_kpi,
)
from repro.performance import ProducerPerformanceModel
from repro.network import Link
from repro.performance import measured_goodput_bytes_per_s, measured_utilization
from repro.simulation import Simulator


class TestPerformanceModel:
    def setup_method(self):
        self.model = ProducerPerformanceModel()

    def test_service_rate_falls_with_message_size(self):
        config = ProducerConfig()
        fast = self.model.service_rate(config, 100)
        slow = self.model.service_rate(config, 1000)
        assert fast > slow

    def test_batching_raises_service_rate(self):
        single = self.model.service_rate(ProducerConfig(batch_size=1), 200)
        batched = self.model.service_rate(ProducerConfig(batch_size=8), 200)
        assert batched > single

    def test_delay_lowers_window_bound(self):
        # A single-request window makes the round trip the binding stage.
        config = ProducerConfig(max_in_flight=1)
        clean = self.model.service_rate(config, 200, network_delay_s=0.0)
        delayed = self.model.service_rate(config, 200, network_delay_s=0.2)
        assert delayed < clean

    def test_arrival_rate_polled_is_inverse_delta(self):
        config = ProducerConfig(polling_interval_s=0.05)
        assert self.model.arrival_rate(config, 200) == pytest.approx(20.0)

    def test_arrival_rate_full_load_uses_duty_cycle(self):
        hardware = HardwareProfile()
        config = ProducerConfig(semantics=DeliverySemantics.AT_MOST_ONCE)
        rate = self.model.arrival_rate(config, 200)
        peak = hardware.full_load_rate(200, False)
        assert rate < peak

    def test_predict_outputs_in_unit_interval(self):
        estimate = self.model.predict(ProducerConfig(), 200)
        assert 0.0 <= estimate.bandwidth_utilization <= 1.0
        assert 0.0 <= estimate.service_rate_norm <= 1.0
        assert estimate.mean_latency_s > 0.0

    def test_round_trip_bytes_include_response_only_with_acks(self):
        with_acks = self.model.round_trip_bytes(200, 1, True)
        without = self.model.round_trip_bytes(200, 1, False)
        assert with_acks > without

    def test_predict_validation(self):
        with pytest.raises(ValueError):
            self.model.predict(ProducerConfig(), 0)


class TestMeasuredBandwidth:
    def test_utilization_and_goodput(self):
        sim = Simulator()
        link = Link(sim, np.random.default_rng(0), capacity_bps=1000.0)
        from repro.network import FORWARD, Packet, PacketKind

        link.send(Packet(kind=PacketKind.DATA, size_bytes=500, message_id=0), FORWARD, lambda p: None)
        sim.run()
        assert measured_utilization(link, duration_s=1.0) == pytest.approx(0.5)
        assert measured_goodput_bytes_per_s(link, 1.0) == pytest.approx(500.0)

    def test_duration_validation(self):
        link = Link(Simulator(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            measured_utilization(link, 0.0)


class TestKpiWeights:
    def test_default_weights_match_paper(self):
        assert DEFAULT_WEIGHTS.as_tuple() == (0.3, 0.3, 0.3, 0.1)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            KpiWeights(0.5, 0.5, 0.5, 0.5)

    def test_weights_must_be_non_negative(self):
        with pytest.raises(ValueError):
            KpiWeights(-0.1, 0.5, 0.5, 0.1)

    def test_of_tuple(self):
        weights = KpiWeights.of((0.1, 0.1, 0.7, 0.1))
        assert weights.loss == 0.7


class TestWeightedKpi:
    def test_perfect_system_scores_one(self):
        assert weighted_kpi(1.0, 1.0, 0.0, 0.0) == pytest.approx(1.0)

    def test_paper_equation_by_hand(self):
        gamma = weighted_kpi(0.5, 0.6, 0.2, 0.1, DEFAULT_WEIGHTS)
        expected = 0.3 * 0.5 + 0.3 * 0.6 + 0.3 * 0.8 + 0.1 * 0.9
        assert gamma == pytest.approx(expected)

    def test_loss_penalises_gamma(self):
        clean = weighted_kpi(0.5, 0.5, 0.0, 0.0)
        lossy = weighted_kpi(0.5, 0.5, 0.5, 0.0)
        assert lossy < clean

    def test_out_of_range_inputs_rejected(self):
        with pytest.raises(ValueError):
            weighted_kpi(1.5, 0.5, 0.0, 0.0)
        with pytest.raises(ValueError):
            weighted_kpi(0.5, 0.5, -0.1, 0.0)

    def test_weight_emphasis_changes_ranking(self):
        """A lossy-but-fast config beats a slow-but-safe one only when the
        user weights throughput over reliability."""
        fast_lossy = dict(bandwidth_utilization=0.9, service_rate_norm=0.9, p_loss=0.3, p_duplicate=0.0)
        slow_safe = dict(bandwidth_utilization=0.3, service_rate_norm=0.3, p_loss=0.0, p_duplicate=0.0)
        throughput_first = KpiWeights(0.4, 0.4, 0.1, 0.1)
        reliability_first = KpiWeights(0.1, 0.1, 0.7, 0.1)
        assert weighted_kpi(weights=throughput_first, **fast_lossy) > weighted_kpi(
            weights=throughput_first, **slow_safe
        )
        assert weighted_kpi(weights=reliability_first, **fast_lossy) < weighted_kpi(
            weights=reliability_first, **slow_safe
        )


class TestAggregateEq3:
    def test_weighted_average(self):
        rates = aggregate_rates([
            IntervalMeasurement(messages=100, p_loss=0.1, p_duplicate=0.0),
            IntervalMeasurement(messages=300, p_loss=0.5, p_duplicate=0.04),
        ])
        assert rates.r_loss == pytest.approx((100 * 0.1 + 300 * 0.5) / 400)
        assert rates.r_duplicate == pytest.approx(300 * 0.04 / 400)
        assert rates.total_messages == 400

    def test_bounds(self):
        rates = aggregate_rates([
            IntervalMeasurement(messages=10, p_loss=0.2, p_duplicate=0.0),
            IntervalMeasurement(messages=10, p_loss=0.6, p_duplicate=0.0),
        ])
        assert 0.2 <= rates.r_loss <= 0.6

    def test_empty_aggregation_rejected(self):
        with pytest.raises(ValueError):
            aggregate_rates([])

    def test_measurement_validation(self):
        with pytest.raises(ValueError):
            IntervalMeasurement(messages=-1, p_loss=0.0, p_duplicate=0.0)
        with pytest.raises(ValueError):
            IntervalMeasurement(messages=1, p_loss=1.5, p_duplicate=0.0)


class TestProducerScaling:
    def test_paper_rule(self):
        # N_p/δ = N_p'/(δ+Δδ): doubling δ doubles the producers.
        assert scale_producers(2, 0.03, 0.06) == 4

    def test_rounds_up(self):
        assert scale_producers(1, 0.04, 0.09) == 3

    def test_never_scales_down(self):
        assert scale_producers(4, 0.08, 0.02) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_producers(0, 0.01, 0.02)
        with pytest.raises(ValueError):
            scale_producers(1, 0.0, 0.02)
