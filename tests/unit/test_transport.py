"""Unit tests for the TCP-like reliable channel."""

import numpy as np
import pytest

from repro.network import (
    BernoulliLoss,
    ConstantLatency,
    FORWARD,
    Link,
    NoLoss,
    REVERSE,
    ReliableChannel,
    SendFailure,
    TransportConfig,
)
from repro.simulation import Simulator


def make_channel(loss_rate=0.0, capacity=1e6, delay=0.001, config=None, seed=5):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    loss = BernoulliLoss(loss_rate) if loss_rate else NoLoss()
    link = Link(sim, rng, capacity_bps=capacity, latency=ConstantLatency(delay), loss=loss)
    channel = ReliableChannel(sim, link, config)
    return sim, link, channel


def test_clean_send_delivers_payload_once():
    sim, _, channel = make_channel()
    received = []
    channel.set_receiver(FORWARD, lambda payload, size: received.append((payload, size)))
    channel.send(FORWARD, 500, payload="hello")
    sim.run()
    assert received == [("hello", 500)]


def test_on_delivered_fires_after_all_acks():
    sim, _, channel = make_channel()
    delivered = []
    channel.send(FORWARD, 500, payload="p", on_delivered=lambda p, rtt: delivered.append(rtt))
    sim.run()
    assert len(delivered) == 1
    assert delivered[0] > 0.0


def test_multi_segment_message_reassembles():
    sim, _, channel = make_channel()
    received = []
    channel.set_receiver(FORWARD, lambda payload, size: received.append(size))
    channel.send(FORWARD, 5000, payload="big")  # several MTU segments
    sim.run()
    assert received == [5000]
    assert channel.stats(FORWARD).segments_sent >= 4


def test_lossy_link_recovers_via_retransmission():
    sim, _, channel = make_channel(loss_rate=0.3)
    received = []
    channel.set_receiver(FORWARD, lambda payload, size: received.append(payload))
    for index in range(30):
        channel.send(FORWARD, 400, payload=index)
    sim.run()
    assert sorted(received) == list(range(30))
    assert channel.stats(FORWARD).retransmissions > 0


def test_retries_exhausted_reports_failure():
    config = TransportConfig(max_retransmits=1)
    sim, _, channel = make_channel(loss_rate=0.97, config=config, seed=11)
    failures = []
    channel.send(
        FORWARD, 400, payload="doomed",
        on_failed=lambda payload, reason: failures.append(reason),
    )
    sim.run()
    assert failures == [SendFailure.RETRIES_EXHAUSTED]


def test_deadline_aborts_send():
    sim, _, channel = make_channel(loss_rate=0.97, seed=13)
    failures = []
    channel.send(
        FORWARD, 400, payload="late",
        deadline=0.5,
        on_failed=lambda payload, reason: failures.append(reason),
    )
    sim.run()
    assert failures == [SendFailure.DEADLINE]
    assert sim.now >= 0.5


def test_expired_deadline_fails_immediately():
    sim, _, channel = make_channel()
    sim.schedule(1.0, lambda: None)
    sim.run()
    failures = []
    channel.send(FORWARD, 100, deadline=0.5, on_failed=lambda p, r: failures.append(r))
    sim.run()
    assert failures == [SendFailure.DEADLINE]


def test_abort_cancels_inflight_send():
    sim, _, channel = make_channel(delay=1.0)
    failures = []
    message_id = channel.send(
        FORWARD, 400, on_failed=lambda payload, reason: failures.append(reason)
    )
    channel.abort(FORWARD, message_id)
    sim.run()
    assert failures == [SendFailure.ABORTED]


def test_duplicate_segments_not_delivered_twice():
    # Heavy ACK loss forces data retransmissions that the receiver dedups.
    sim, link, channel = make_channel(loss_rate=0.4, seed=17)
    received = []
    channel.set_receiver(FORWARD, lambda payload, size: received.append(payload))
    for index in range(20):
        channel.send(FORWARD, 300, payload=index)
    sim.run()
    assert len(received) == len(set(received))


def test_reverse_direction_is_symmetric():
    sim, _, channel = make_channel()
    received = []
    channel.set_receiver(REVERSE, lambda payload, size: received.append(payload))
    channel.send(REVERSE, 200, payload="resp")
    sim.run()
    assert received == ["resp"]


def test_stats_track_message_counts():
    sim, _, channel = make_channel()
    for _ in range(3):
        channel.send(FORWARD, 200)
    sim.run()
    stats = channel.stats(FORWARD)
    assert stats.messages_sent == 3
    assert stats.messages_delivered == 3
    assert stats.messages_failed == 0


def test_rtt_estimator_converges():
    sim, _, channel = make_channel(delay=0.05)
    for _ in range(10):
        channel.send(FORWARD, 200)
    sim.run()
    endpoint = channel._endpoint(FORWARD)
    assert endpoint.srtt is not None
    assert endpoint.srtt == pytest.approx(0.1, rel=0.5)


def test_size_must_be_positive():
    _, _, channel = make_channel()
    with pytest.raises(ValueError):
        channel.send(FORWARD, 0)


def test_transport_config_validation():
    with pytest.raises(ValueError):
        TransportConfig(mtu=10)
    with pytest.raises(ValueError):
        TransportConfig(min_rto_s=1.0, initial_rto_s=0.5)
    with pytest.raises(ValueError):
        TransportConfig(max_retransmits=-1)


def test_unknown_direction_rejected():
    _, _, channel = make_channel()
    with pytest.raises(ValueError):
        channel.send("sideways", 100)
