"""Unit tests for model-registry edge cases and serialisation errors."""

import pytest

from repro.ann import Dense, Sequential, load_model, save_model
from repro.models import ModelRegistry, ReliabilityPredictor


class TestRegistryValidation:
    def test_invalid_name_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ValueError):
            registry.save("", ReliabilityPredictor())
        with pytest.raises(ValueError):
            registry.save("a/b", ReliabilityPredictor())

    def test_untrained_predictor_not_saved(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ValueError):
            registry.save("empty", ReliabilityPredictor())

    def test_list_models_on_missing_root(self, tmp_path):
        registry = ModelRegistry(tmp_path / "does-not-exist")
        assert registry.list_models() == []

    def test_delete_missing_model_is_noop(self, tmp_path):
        ModelRegistry(tmp_path).delete("ghost")

    def test_directories_without_manifest_ignored(self, tmp_path):
        (tmp_path / "stray").mkdir()
        assert ModelRegistry(tmp_path).list_models() == []


class TestSerialisationErrors:
    def test_unknown_layer_type_rejected_on_save(self, tmp_path):
        class Custom(Dense):
            pass

        # A subclass is fine; a genuinely foreign layer is not.
        class Foreign:
            def parameters(self):
                return []

            def forward(self, x, training=False):
                return x

        model = Sequential([Foreign()])
        with pytest.raises(TypeError):
            save_model(model, tmp_path / "model")

    def test_bad_format_version_rejected(self, tmp_path):
        import json

        model = Sequential([Dense(2, 1)])
        save_model(model, tmp_path / "model")
        spec_path = tmp_path / "model" / "architecture.json"
        spec = json.loads(spec_path.read_text())
        spec["format_version"] = 999
        spec_path.write_text(json.dumps(spec, sort_keys=True))
        with pytest.raises(ValueError):
            load_model(tmp_path / "model")

    def test_missing_model_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope")
