"""Unit tests for consumer groups."""

import pytest

from repro.kafka import KafkaCluster
from repro.kafka.group import ConsumerGroup
from repro.simulation import Simulator


@pytest.fixture
def cluster():
    sim = Simulator()
    cluster = KafkaCluster(sim, broker_count=3)
    topic = cluster.create_topic("events", partitions=6)
    for key in range(60):
        topic.partitions[key % 6].append(key, 10, timestamp=0.0)
    return cluster


@pytest.fixture
def group(cluster):
    return ConsumerGroup(cluster, "events", group_id="readers")


class TestMembership:
    def test_single_member_owns_everything(self, group):
        member = group.join("a")
        assert member.positions.keys() == {0, 1, 2, 3, 4, 5}

    def test_range_assignment_is_balanced(self, group):
        group.join("a")
        group.join("b")
        group.join("c")
        sizes = [len(parts) for parts in group.assignment.values()]
        assert sorted(sizes) == [2, 2, 2]
        covered = sorted(p for parts in group.assignment.values() for p in parts)
        assert covered == list(range(6))

    def test_uneven_split_gives_remainder_to_first(self, group):
        group.join("a")
        group.join("b")
        group.join("c")
        group.join("d")
        sizes = [len(group.assignment[m]) for m in sorted(group.assignment)]
        assert sizes == [2, 2, 1, 1]

    def test_more_members_than_partitions(self, cluster):
        group = ConsumerGroup(cluster, "events", group_id="g")
        for index in range(8):
            group.join(f"m{index}")
        empty = [m for m, parts in group.assignment.items() if not parts]
        assert len(empty) == 2

    def test_duplicate_join_rejected(self, group):
        group.join("a")
        with pytest.raises(ValueError):
            group.join("a")

    def test_leave_rebalances(self, group):
        group.join("a")
        member_b = group.join("b")
        group.leave("a")
        assert member_b.positions.keys() == {0, 1, 2, 3, 4, 5}

    def test_leave_unknown_rejected(self, group):
        with pytest.raises(KeyError):
            group.leave("ghost")

    def test_empty_group_id_rejected(self, cluster):
        with pytest.raises(ValueError):
            ConsumerGroup(cluster, "events", group_id="")


class TestConsumption:
    def test_poll_reads_assigned_partitions_only(self, group):
        group.join("a")
        member_b = group.join("b")
        entries = member_b.poll(max_records=100)
        partitions = {entry.offset for entry in entries}  # offsets per partition
        keys = {entry.key for entry in entries}
        allowed = set()
        for index in group.assignment["b"]:
            allowed |= {e.key for e in group.topic.partitions[index].read()}
        assert keys <= allowed

    def test_group_covers_topic_exactly_once(self, group):
        members = [group.join(name) for name in ("a", "b", "c")]
        seen = []
        for member in members:
            seen.extend(entry.key for entry in member.poll(max_records=1000))
        assert sorted(seen) == list(range(60))

    def test_poll_advances_positions(self, group):
        member = group.join("a")
        first = member.poll(max_records=10)
        second = member.poll(max_records=10)
        assert not set(e.key for e in first) & set(e.key for e in second)

    def test_commit_and_resume(self, group):
        member = group.join("a")
        member.poll(max_records=30)
        member.commit()
        # Simulate a crash/rejoin: new generation resumes from commits.
        group.leave("a")
        member2 = group.join("a2")
        remaining = member2.poll(max_records=1000)
        assert len(remaining) == 30

    def test_uncommitted_records_are_redelivered(self, group):
        member = group.join("a")
        consumed = member.poll(max_records=30)
        # no commit → rebalance redelivers (at-least-once consumption)
        group.leave("a")
        member2 = group.join("a2")
        again = member2.poll(max_records=1000)
        assert {e.key for e in consumed} <= {e.key for e in again}

    def test_seek_rewinds(self, group):
        member = group.join("a")
        member.poll(max_records=100)
        member.seek(0, 0)
        replayed = member.poll(max_records=100)
        assert any(entry.offset == 0 for entry in replayed)

    def test_seek_unassigned_rejected(self, group):
        member_a = group.join("a")
        group.join("b")
        foreign = group.assignment["b"][0]
        with pytest.raises(ValueError):
            member_a.seek(foreign, 0)

    def test_poll_validation(self, group):
        member = group.join("a")
        with pytest.raises(ValueError):
            member.poll(max_records=0)


class TestLag:
    def test_lag_counts_uncommitted(self, group):
        assert group.total_lag() == 60
        member = group.join("a")
        member.poll(max_records=1000)
        member.commit()
        assert group.total_lag() == 0

    def test_lag_after_new_appends(self, group):
        member = group.join("a")
        member.poll(max_records=1000)
        member.commit()
        group.topic.partitions[0].append(999, 10, timestamp=1.0)
        assert group.total_lag() == 1

    def test_commit_ignores_unassigned_partitions(self, group):
        member_a = group.join("a")
        group.join("b")
        foreign = group.assignment["b"][0]
        group.commit("a", {foreign: 100})
        assert group.committed_offsets().get(foreign, 0) == 0
