"""Unit tests for latency and loss models."""

import numpy as np
import pytest

from repro.network import (
    BernoulliLoss,
    ConstantLatency,
    GilbertElliottLoss,
    NoLoss,
    NormalLatency,
    ParetoLatency,
    UniformLatency,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLatencyModels:
    def test_constant_latency(self, rng):
        model = ConstantLatency(0.05)
        assert model.sample(rng) == 0.05
        assert model.mean() == 0.05

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_latency_within_bounds(self, rng):
        model = UniformLatency(0.1, 0.02)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(0.08 <= s <= 0.12 for s in samples)
        assert model.mean() == 0.1

    def test_uniform_jitter_larger_than_base_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.01, 0.02)

    def test_normal_latency_truncated_at_zero(self, rng):
        model = NormalLatency(0.001, 0.01)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(s >= 0.0 for s in samples)

    def test_pareto_minimum_is_scale(self, rng):
        model = ParetoLatency(0.02, shape=2.0)
        samples = [model.sample(rng) for _ in range(500)]
        assert min(samples) >= 0.02

    def test_pareto_mean_formula(self):
        model = ParetoLatency(0.02, shape=2.0)
        assert model.mean() == pytest.approx(0.04)

    def test_pareto_cap_enforced(self, rng):
        model = ParetoLatency(0.02, shape=1.5, cap_s=0.1)
        samples = [model.sample(rng) for _ in range(2000)]
        assert max(samples) <= 0.1

    def test_pareto_requires_shape_above_one(self):
        with pytest.raises(ValueError):
            ParetoLatency(0.02, shape=1.0)

    def test_pareto_sample_mean_close_to_formula(self, rng):
        model = ParetoLatency(0.02, shape=3.0)
        samples = [model.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(model.mean(), rel=0.1)


class TestLossModels:
    def test_no_loss_never_drops(self, rng):
        model = NoLoss()
        assert not any(model.is_lost(rng) for _ in range(100))
        assert model.expected_loss_rate() == 0.0

    def test_bernoulli_rate_bounds(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_bernoulli_zero_rate_never_drops(self, rng):
        model = BernoulliLoss(0.0)
        assert not any(model.is_lost(rng) for _ in range(100))

    def test_bernoulli_empirical_rate(self, rng):
        model = BernoulliLoss(0.19)
        drops = sum(model.is_lost(rng) for _ in range(20000))
        assert drops / 20000 == pytest.approx(0.19, abs=0.01)

    def test_gilbert_elliott_stationary_fraction(self):
        model = GilbertElliottLoss(0.1, 0.3)
        assert model.stationary_bad_fraction() == pytest.approx(0.25)

    def test_gilbert_elliott_expected_rate(self):
        model = GilbertElliottLoss(0.1, 0.3, loss_good=0.0, loss_bad=0.8)
        assert model.expected_loss_rate() == pytest.approx(0.2)

    def test_gilbert_elliott_empirical_rate(self, rng):
        model = GilbertElliottLoss(0.05, 0.2, loss_good=0.0, loss_bad=1.0)
        drops = sum(model.is_lost(rng) for _ in range(50000))
        assert drops / 50000 == pytest.approx(model.expected_loss_rate(), abs=0.02)

    def test_gilbert_elliott_burstiness(self, rng):
        """Bursty losses cluster: consecutive-loss runs exceed Bernoulli's."""
        ge = GilbertElliottLoss(0.02, 0.2, loss_bad=1.0)
        outcomes = [ge.is_lost(rng) for _ in range(20000)]
        rate = sum(outcomes) / len(outcomes)
        pairs = sum(
            1 for i in range(1, len(outcomes)) if outcomes[i] and outcomes[i - 1]
        )
        pair_rate = pairs / (len(outcomes) - 1)
        assert pair_rate > (rate**2) * 3  # far above independent losses

    def test_gilbert_elliott_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.3)

    def test_gilbert_elliott_start_state(self):
        model = GilbertElliottLoss(0.1, 0.3, start_in_bad=True)
        assert model.state == GilbertElliottLoss.BAD
