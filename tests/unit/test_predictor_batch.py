"""Batched prediction fast path: bitwise identity and memo hygiene.

The batched APIs (`predict_vectors`, `predict_with_fallback_batch`) are a
pure performance feature — every estimate they return must be *bitwise*
identical to the scalar calls, across both Fig. 3 regions, all three
delivery semantics and every tier of the degraded fallback chain.  The
quantised-key memo must never serve a stale entry after `fit()` or
`remember()` changes what the predictor knows.
"""

import dataclasses

import numpy as np
import pytest

from repro.kafka import DeliverySemantics
from repro.models import (
    FeatureVector,
    ReliabilityPredictor,
    TrainingSettings,
)
from repro.testbed import ExperimentResult

SEMANTICS = [
    DeliverySemantics.AT_MOST_ONCE,
    DeliverySemantics.AT_LEAST_ONCE,
    DeliverySemantics.EXACTLY_ONCE,
]

FAST = TrainingSettings(hidden=(8,), epochs=5, patience=None)


def make_result(**overrides):
    defaults = dict(
        message_bytes=200,
        timeliness_s=None,
        network_delay_s=0.0,
        loss_rate=0.0,
        semantics="at_least_once",
        batch_size=1,
        polling_interval_s=0.0,
        message_timeout_s=1.5,
        produced=1000,
        p_loss=0.1,
        p_duplicate=0.01,
    )
    defaults.update(overrides)
    return ExperimentResult(**defaults)


def training_rows(semantics, region, count=16, seed=0):
    """Synthetic measured rows routed to one (region, semantics) submodel."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(count):
        if region == "normal":
            delay, loss = 0.0, 0.0
        else:
            delay = float(rng.choice([0.25, 0.3, 0.4]))
            loss = float(rng.choice([0.05, 0.1, 0.2]))
        batch = int(rng.choice([1, 2, 4, 8]))
        rows.append(
            make_result(
                semantics=semantics.value,
                network_delay_s=delay,
                loss_rate=loss,
                batch_size=batch,
                message_bytes=int(rng.choice([100, 200, 500])),
                p_loss=min(1.0, max(0.0, loss * 2.0 / batch)),
                p_duplicate=0.02 / batch,
            )
        )
    return rows


def query_grid(seed=7, count=120):
    """Random queries spanning regions, semantics and the feature ranges."""
    rng = np.random.default_rng(seed)
    vectors = []
    for index in range(count):
        if index % 2 == 0:
            delay, loss = float(rng.uniform(0.0, 0.19)), 0.0
        else:
            delay = float(rng.uniform(0.2, 0.5))
            loss = float(rng.uniform(0.01, 0.3))
        vectors.append(
            FeatureVector(
                message_bytes=float(rng.choice([100, 200, 500, 900])),
                timeliness_s=float(rng.choice([0.0, 5.0, 10.0])),
                network_delay_s=delay,
                loss_rate=loss,
                semantics=SEMANTICS[index % 3],
                batch_size=float(rng.choice([1, 2, 4, 8, 10])),
                polling_interval_s=float(rng.choice([0.0, 0.02, 0.09])),
                message_timeout_s=float(rng.choice([0.5, 1.5, 3.0])),
            )
        )
    return vectors


@pytest.fixture(scope="module")
def full_predictor():
    """A predictor with all six (region, semantics) submodels trained."""
    rows = []
    for offset, semantics in enumerate(SEMANTICS):
        rows.extend(training_rows(semantics, "normal", seed=offset))
        rows.extend(training_rows(semantics, "abnormal", seed=10 + offset))
    predictor = ReliabilityPredictor()
    predictor.fit(rows, FAST)
    return predictor


@pytest.fixture()
def partial_predictor():
    """Coverage gaps exercising every fallback tier.

    Trained submodels only for at-least-once; at-most-once rows are
    *remembered* (neighbour tier); exactly-once has nothing at all
    (conservative tier).
    """
    predictor = ReliabilityPredictor()
    rows = training_rows(DeliverySemantics.AT_LEAST_ONCE, "normal")
    rows += training_rows(DeliverySemantics.AT_LEAST_ONCE, "abnormal", seed=3)
    predictor.fit(rows, FAST)
    predictor.remember(training_rows(DeliverySemantics.AT_MOST_ONCE, "abnormal", seed=5))
    return predictor


class TestBatchedIdentity:
    def test_predict_vectors_bitwise_equals_scalar(self, full_predictor):
        vectors = query_grid()
        batched = full_predictor.predict_vectors(vectors)
        for vector, estimate in zip(vectors, batched):
            scalar = full_predictor.predict_vector(vector)
            assert estimate.p_loss == scalar.p_loss, vector
            assert estimate.p_duplicate == scalar.p_duplicate, vector

    def test_second_pass_serves_from_memo_identically(self, full_predictor):
        vectors = query_grid(seed=11, count=40)
        first = full_predictor.predict_vectors(vectors)
        hits_before, _ = full_predictor.memo_stats
        second = full_predictor.predict_vectors(vectors)
        hits_after, _ = full_predictor.memo_stats
        assert hits_after >= hits_before + len(vectors)
        assert first == second

    def test_missing_submodel_raises_or_skips(self, partial_predictor):
        uncovered = FeatureVector(
            message_bytes=200.0,
            timeliness_s=0.0,
            network_delay_s=0.0,
            loss_rate=0.0,
            semantics=DeliverySemantics.EXACTLY_ONCE,
            batch_size=1.0,
            polling_interval_s=0.0,
            message_timeout_s=1.5,
        )
        with pytest.raises(KeyError):
            partial_predictor.predict_vectors([uncovered])
        assert partial_predictor.predict_vectors([uncovered], missing="none") == [None]

    def test_missing_mode_validated(self, full_predictor):
        with pytest.raises(ValueError):
            full_predictor.predict_vectors([], missing="quietly")


class TestFallbackChainIdentity:
    def test_batch_matches_scalar_across_all_tiers(self, partial_predictor):
        vectors = query_grid(seed=13)
        batched = partial_predictor.predict_with_fallback_batch(vectors)
        sources = set()
        for vector, fallback in zip(vectors, batched):
            scalar = partial_predictor.predict_with_fallback(vector)
            assert fallback.source == scalar.source, vector
            assert fallback.estimate.p_loss == scalar.estimate.p_loss
            assert fallback.estimate.p_duplicate == scalar.estimate.p_duplicate
            sources.add(fallback.source)
        # The grid must actually have exercised the whole degraded chain.
        assert sources == {"ann", "neighbour", "conservative"}

    def test_vectorised_neighbour_matches_python_scan(self, partial_predictor):
        scales = ReliabilityPredictor._NEIGHBOUR_SCALES
        for vector in query_grid(seed=17, count=30):
            if vector.semantics is not DeliverySemantics.AT_MOST_ONCE:
                continue
            best, best_distance = None, float("inf")
            for row in partial_predictor._memory:
                candidate = FeatureVector.from_result(row)
                if candidate.semantics is not vector.semantics:
                    continue
                distance = sum(
                    ((getattr(vector, name) - getattr(candidate, name)) / scale) ** 2
                    for name, scale in scales.items()
                )
                if distance < best_distance:
                    best, best_distance = row, distance
            estimate = partial_predictor._nearest_neighbour(vector)
            assert estimate is not None and best is not None
            assert estimate.p_loss == min(1.0, max(0.0, float(best.p_loss)))


class TestMemoInvalidation:
    def test_remember_invalidates_memo_and_neighbour_index(self):
        predictor = ReliabilityPredictor()
        predictor.remember(
            [make_result(semantics="at_most_once", loss_rate=0.2,
                         network_delay_s=0.3, p_loss=0.5)]
        )
        query = FeatureVector(
            message_bytes=200.0,
            timeliness_s=0.0,
            network_delay_s=0.3,
            loss_rate=0.1,
            semantics=DeliverySemantics.AT_MOST_ONCE,
            batch_size=1.0,
            polling_interval_s=0.0,
            message_timeout_s=1.5,
        )
        [before] = predictor.predict_with_fallback_batch([query])
        assert before.source == "neighbour" and before.estimate.p_loss == 0.5
        # A new, much closer measurement must win immediately: a stale
        # memo or neighbour index would keep serving p_loss=0.5.
        predictor.remember(
            [make_result(semantics="at_most_once", loss_rate=0.1,
                         network_delay_s=0.3, p_loss=0.05)]
        )
        [after] = predictor.predict_with_fallback_batch([query])
        assert after.estimate.p_loss == 0.05
        scalar = predictor.predict_with_fallback(query)
        assert after.estimate.p_loss == scalar.estimate.p_loss

    def test_fit_invalidates_memo(self):
        rows_a = training_rows(DeliverySemantics.AT_LEAST_ONCE, "abnormal", seed=1)
        predictor = ReliabilityPredictor()
        predictor.fit(rows_a, FAST)
        vectors = query_grid(seed=19, count=12)
        covered = [
            v for v in vectors
            if v.semantics is DeliverySemantics.AT_LEAST_ONCE
            and v.region == "abnormal"
        ]
        assert covered
        predictor.predict_vectors(covered)
        # Refit with a shifted target function; predictions must all track
        # the new model — bitwise equal to the (unmemoised) scalar path.
        rows_b = [
            dataclasses.replace(r, p_loss=min(1.0, r.p_loss + 0.3))
            for r in rows_a
        ]
        predictor.fit(rows_b, FAST)
        batched = predictor.predict_vectors(covered)
        for vector, estimate in zip(covered, batched):
            scalar = predictor.predict_vector(vector)
            assert estimate.p_loss == scalar.p_loss
            assert estimate.p_duplicate == scalar.p_duplicate

    def test_invalidate_caches_empties_memo(self, full_predictor):
        full_predictor.predict_vectors(query_grid(seed=23, count=10))
        assert len(full_predictor._memo) > 0
        full_predictor.invalidate_caches()
        assert len(full_predictor._memo) == 0

    def test_memo_capacity_bounds_the_cache(self):
        predictor = ReliabilityPredictor()
        predictor.fit(
            training_rows(DeliverySemantics.AT_LEAST_ONCE, "normal"), FAST
        )
        predictor.MEMO_CAPACITY = 8
        rng = np.random.default_rng(29)
        vectors = [
            FeatureVector(
                message_bytes=float(100 + i),
                timeliness_s=0.0,
                network_delay_s=float(rng.uniform(0.0, 0.19)),
                loss_rate=0.0,
                semantics=DeliverySemantics.AT_LEAST_ONCE,
                batch_size=1.0,
                polling_interval_s=0.0,
                message_timeout_s=1.5,
            )
            for i in range(30)
        ]
        predictor.predict_vectors(vectors)
        assert len(predictor._memo) <= 8
