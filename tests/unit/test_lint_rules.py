"""Per-rule golden-fixture tests for the lint framework.

Every shipped rule must (a) fire on its violating fixture and (b) stay
quiet on its clean fixture, with both fixtures linted under a module
name inside the rule's scope.  A registry-coverage test pins the rule
set so adding a rule without a fixture pair fails loudly.
"""

from pathlib import Path

import pytest

from repro.lint import default_rules, lint_source, rule_classes
from repro.lint.rules import DETERMINISTIC_PACKAGES

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: rule id -> (fixture slug, in-scope module override, findings expected
#: in the bad fixture).
RULE_FIXTURES = {
    "REPRO101": ("unseeded_random", "repro.simulation.fake", 3),
    "REPRO102": ("wall_clock", "repro.kafka.fake", 3),
    "REPRO103": ("set_iteration", "repro.observability.fake", 3),
    "REPRO104": ("builtin_hash", "repro.simulation.fake", 1),
    "REPRO105": ("unsorted_json", "repro.chaos.fake", 3),
    "REPRO106": ("fs_order", "repro.testbed.fake", 2),
    "REPRO201": ("float_equality", "repro.kpi.fake", 3),
    "REPRO202": ("mutable_default", "repro.models.fake", 3),
    "REPRO203": ("spawn_closure", "repro.testbed.fake", 2),
    "REPRO301": ("codec_field", "repro.testbed.scenario", 2),
}


def lint_fixture(slug: str, kind: str, module: str):
    source = (FIXTURES / f"{slug}_{kind}.py").read_text()
    return lint_source(source, path=f"{slug}_{kind}.py", module=module)


class TestRegistryCoverage:
    def test_every_registered_rule_has_a_fixture_pair(self):
        assert {cls.id for cls in rule_classes()} == set(RULE_FIXTURES)

    def test_fixture_files_exist(self):
        for slug, _module, _count in RULE_FIXTURES.values():
            assert (FIXTURES / f"{slug}_bad.py").exists()
            assert (FIXTURES / f"{slug}_clean.py").exists()

    def test_rule_metadata_is_complete(self):
        for cls in rule_classes():
            assert cls.id.startswith("REPRO")
            assert cls.name
            assert cls.description
            assert cls.node_types

    def test_rule_ids_are_unique(self):
        ids = [cls.id for cls in rule_classes()]
        assert len(ids) == len(set(ids))


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
class TestGoldenFixtures:
    def test_rule_fires_on_bad_fixture(self, rule_id):
        slug, module, expected = RULE_FIXTURES[rule_id]
        result = lint_fixture(slug, "bad", module)
        fired = [f for f in result.findings if f.rule == rule_id]
        assert len(fired) == expected, [f.to_dict() for f in result.findings]
        for finding in fired:
            assert finding.line > 0
            assert finding.snippet
            assert finding.message

    def test_rule_quiet_on_clean_fixture(self, rule_id):
        slug, module, _expected = RULE_FIXTURES[rule_id]
        result = lint_fixture(slug, "clean", module)
        fired = [f for f in result.findings if f.rule == rule_id]
        assert fired == []

    def test_bad_fixture_has_no_other_noise(self, rule_id):
        """Fixtures are surgical: only their own rule fires."""
        slug, module, _expected = RULE_FIXTURES[rule_id]
        result = lint_fixture(slug, "bad", module)
        assert {f.rule for f in result.findings} == {rule_id}


class TestScoping:
    def test_deterministic_rules_skip_out_of_scope_modules(self):
        source = (FIXTURES / "unseeded_random_bad.py").read_text()
        result = lint_source(source, module="repro.analysis.fake")
        assert [f for f in result.findings if f.rule == "REPRO101"] == []

    def test_deterministic_scope_covers_every_core_package(self):
        source = "import random\nx = random.random()\n"
        for package in DETERMINISTIC_PACKAGES:
            result = lint_source(source, module=package + ".mod")
            assert any(f.rule == "REPRO101" for f in result.findings), package

    def test_test_modules_are_out_of_float_equality_scope(self):
        source = "def check(x):\n    return x == 0.5\n"
        result = lint_source(source, module="test_something")
        assert result.findings == []

    def test_rules_filter_rejects_unknown_ids(self):
        with pytest.raises(ValueError, match="REPRO999"):
            default_rules(only=["REPRO999"])

    def test_rules_filter_selects_subset(self):
        source = (FIXTURES / "unsorted_json_bad.py").read_text()
        rules = default_rules(only=["REPRO104"])
        result = lint_source(source, module="repro.chaos.fake", rules=rules)
        assert result.findings == []


class TestRulePrecision:
    """Targeted non-fixture cases that pin each rule's boundaries."""

    def test_seeded_default_rng_is_allowed_in_scope(self):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        result = lint_source(source, module="repro.network.fake")
        assert result.findings == []

    def test_generator_annotations_do_not_fire(self):
        source = (
            "import numpy as np\n"
            "def sample(rng: np.random.Generator) -> float:\n"
            "    return float(rng.uniform())\n"
        )
        result = lint_source(source, module="repro.network.fake")
        assert result.findings == []

    def test_sorted_wrapping_spans_generator_expressions(self):
        source = (
            "def names(root):\n"
            "    return sorted(p.name for p in root.iterdir())\n"
        )
        result = lint_source(source, module="repro.models.fake")
        assert result.findings == []

    def test_sorted_elsewhere_does_not_launder_iteration(self):
        source = (
            "def bad(items):\n"
            "    ordered = sorted(items)\n"
            "    return [x for x in set(items)]\n"
        )
        result = lint_source(source, module="repro.models.fake")
        assert [f.rule for f in result.findings] == ["REPRO103"]

    def test_json_dump_with_kwargs_passthrough_is_not_flagged(self):
        source = (
            "import json\n"
            "def dump(payload, **kw):\n"
            "    return json.dumps(payload, **kw)\n"
        )
        result = lint_source(source, module="repro.chaos.fake")
        assert result.findings == []

    def test_float_zero_sentinel_is_allowed(self):
        source = "def f(x):\n    return x == 0.0\n"
        result = lint_source(source, module="repro.kpi.fake")
        assert result.findings == []

    def test_codec_rule_ignores_non_dataclasses(self):
        source = (
            "from typing import Dict\n"
            "class Plain:\n"
            "    labels: Dict[str, str]\n"
        )
        result = lint_source(source, module="repro.testbed.scenario")
        assert result.findings == []

    def test_codec_rule_out_of_scope_module_is_quiet(self):
        source = (FIXTURES / "codec_field_bad.py").read_text()
        result = lint_source(source, module="repro.kpi.fake")
        assert result.findings == []

    def test_real_scenario_and_config_modules_are_codec_clean(self):
        for module, path in [
            ("repro.testbed.scenario", "src/repro/testbed/scenario.py"),
            ("repro.kafka.config", "src/repro/kafka/config.py"),
        ]:
            source = (Path(__file__).parents[2] / path).read_text()
            result = lint_source(source, module=module)
            assert [f for f in result.findings if f.rule == "REPRO301"] == []

    def test_parse_error_becomes_a_finding(self):
        result = lint_source("def broken(:\n", path="broken.py")
        assert [f.rule for f in result.findings] == ["REPRO000"]
        assert result.findings[0].severity.value == "error"
