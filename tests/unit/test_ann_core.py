"""Unit tests for ANN layers, activations, losses and optimisers."""

import numpy as np
import pytest

from repro.ann import (
    Adam,
    Dense,
    HuberLoss,
    Identity,
    MAELoss,
    Momentum,
    MSELoss,
    Parameter,
    Relu,
    SGD,
    Sigmoid,
    Tanh,
    get_activation,
    get_loss,
    get_optimizer,
)


class TestActivations:
    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.array_equal(Relu().apply(x), [[0.0, 0.0, 2.0]])

    def test_relu_derivative(self):
        x = np.array([[-1.0, 0.5]])
        relu = Relu()
        y = relu.apply(x)
        assert np.array_equal(relu.derivative(x, y), [[0.0, 1.0]])

    def test_sigmoid_range_and_midpoint(self):
        sigmoid = Sigmoid()
        x = np.array([[-100.0, 0.0, 100.0]])
        y = sigmoid.apply(x)
        assert y[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert y[0, 1] == pytest.approx(0.5)
        assert y[0, 2] == pytest.approx(1.0, abs=1e-6)

    def test_sigmoid_numerically_stable(self):
        y = Sigmoid().apply(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(y))

    def test_tanh_derivative_identity(self):
        tanh = Tanh()
        x = np.array([[0.3]])
        y = tanh.apply(x)
        assert tanh.derivative(x, y)[0, 0] == pytest.approx(1 - np.tanh(0.3) ** 2)

    def test_identity_passthrough(self):
        x = np.array([[1.0, -2.0]])
        identity = Identity()
        assert np.array_equal(identity.apply(x), x)
        assert np.array_equal(identity.derivative(x, x), np.ones_like(x))

    def test_get_activation_by_name(self):
        assert isinstance(get_activation("relu"), Relu)
        with pytest.raises(ValueError):
            get_activation("softplus")


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 4, "identity", rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((5, 3)))
        assert out.shape == (5, 4)

    def test_forward_rejects_wrong_width(self):
        layer = Dense(3, 4)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 2)))

    def test_linear_layer_computes_affine(self):
        layer = Dense(2, 1, "identity", rng=np.random.default_rng(0))
        layer.weight.value = np.array([[2.0], [3.0]])
        layer.bias.value = np.array([[1.0]])
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(6.0)

    def test_backward_requires_training_forward(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_backward_accumulates_gradients(self):
        layer = Dense(2, 1, "identity", rng=np.random.default_rng(0))
        x = np.array([[1.0, 2.0]])
        layer.forward(x, training=True)
        layer.backward(np.array([[1.0]]))
        assert np.array_equal(layer.weight.grad, x.T)
        assert layer.bias.grad[0, 0] == 1.0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Dense(0, 4)


class TestLosses:
    def test_mse_value_and_grad(self):
        loss = MSELoss()
        value, grad = loss.value_and_grad(np.array([[1.0]]), np.array([[0.0]]))
        assert value == pytest.approx(1.0)
        assert grad[0, 0] == pytest.approx(2.0)

    def test_mae_value_and_grad(self):
        loss = MAELoss()
        value, grad = loss.value_and_grad(np.array([[2.0]]), np.array([[0.5]]))
        assert value == pytest.approx(1.5)
        assert grad[0, 0] == pytest.approx(1.0)

    def test_huber_is_quadratic_near_zero(self):
        loss = HuberLoss(delta=1.0)
        value, grad = loss.value_and_grad(np.array([[0.5]]), np.array([[0.0]]))
        assert value == pytest.approx(0.125)
        assert grad[0, 0] == pytest.approx(0.5)

    def test_huber_is_linear_in_tail(self):
        loss = HuberLoss(delta=1.0)
        _, grad = loss.value_and_grad(np.array([[10.0]]), np.array([[0.0]]))
        assert grad[0, 0] == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss().value_and_grad(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_get_loss_registry(self):
        assert isinstance(get_loss("mae"), MAELoss)
        with pytest.raises(ValueError):
            get_loss("hinge")


def quadratic_parameter():
    return Parameter(np.array([[4.0]]))


def minimise(optimizer, steps=200):
    """Minimise f(w) = w² with analytic gradient 2w."""
    parameter = quadratic_parameter()
    for _ in range(steps):
        parameter.grad = 2.0 * parameter.value
        optimizer.step([parameter])
    return abs(parameter.value[0, 0])


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        assert minimise(SGD(0.1)) < 1e-6

    def test_momentum_converges_on_quadratic(self):
        assert minimise(Momentum(0.05, 0.9)) < 1e-4

    def test_adam_converges_on_quadratic(self):
        assert minimise(Adam(0.1), steps=500) < 1e-3

    def test_step_zeroes_gradients(self):
        parameter = quadratic_parameter()
        parameter.grad = np.array([[1.0]])
        SGD(0.1).step([parameter])
        assert np.array_equal(parameter.grad, [[0.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            Momentum(0.1, 1.0)
        with pytest.raises(ValueError):
            Adam(-0.1)

    def test_get_optimizer(self):
        assert isinstance(get_optimizer("adam"), Adam)
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")
