"""Unit tests for the Section III-D sensitivity screen."""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import Scenario
from repro.testbed.sensitivity import (
    DEFAULT_CANDIDATES,
    ParameterSensitivity,
    analyze_sensitivity,
)


def make_entry(delta_loss=0.0, delta_dup=0.0):
    return ParameterSensitivity(
        parameter="p",
        baseline_value=1.0,
        low_value=0.5,
        high_value=1.5,
        baseline_p_loss=0.2,
        low_p_loss=0.2 + delta_loss,
        high_p_loss=0.2,
        baseline_p_duplicate=0.01,
        low_p_duplicate=0.01,
        high_p_duplicate=0.01 + delta_dup,
    )


class TestParameterSensitivity:
    def test_max_delta_takes_worst_direction(self):
        entry = make_entry(delta_loss=0.15, delta_dup=0.02)
        assert entry.max_delta == pytest.approx(0.15)

    def test_sensitivity_threshold(self):
        assert make_entry(delta_loss=0.05).is_sensitive(0.02)
        assert not make_entry(delta_loss=0.005).is_sensitive(0.02)

    def test_duplicate_metric_counts(self):
        assert make_entry(delta_dup=0.05).is_sensitive(0.02)


class TestAnalyze:
    @pytest.fixture(scope="class")
    def report(self):
        baseline = Scenario(
            message_bytes=200,
            message_count=500,
            seed=19,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_MOST_ONCE,
                message_timeout_s=0.6,
            ),
        )
        return analyze_sensitivity(
            baseline,
            candidates=[
                "message_bytes",
                "config.message_timeout_s",
                "config.polling_interval_s",
                "config.retry_backoff_s",
            ],
            perturbation=0.5,
        )

    def test_one_entry_per_candidate(self, report):
        assert len(report.entries) == 4

    def test_timeout_is_sensitive_at_full_load(self, report):
        selected = report.selected_features(threshold=0.02)
        assert "config.message_timeout_s" in selected

    def test_retry_backoff_is_insensitive_for_at_most_once(self, report):
        # At-most-once never retries: backoff cannot matter.
        entry = next(
            e for e in report.entries if e.parameter == "config.retry_backoff_s"
        )
        assert entry.max_delta < 0.02

    def test_ranking_is_descending(self, report):
        deltas = [entry.max_delta for entry in report.ranked()]
        assert deltas == sorted(deltas, reverse=True)

    def test_zero_valued_parameter_probed_upward(self, report):
        entry = next(
            e for e in report.entries if e.parameter == "config.polling_interval_s"
        )
        assert entry.baseline_value == 0.0
        assert entry.high_value > 0.0

    def test_perturbation_validation(self):
        with pytest.raises(ValueError):
            analyze_sensitivity(Scenario(message_count=10), perturbation=1.5)

    def test_default_candidates_cover_paper_parameters(self):
        assert "config.batch_size" in DEFAULT_CANDIDATES
        assert "config.message_timeout_s" in DEFAULT_CANDIDATES
        assert "message_bytes" in DEFAULT_CANDIDATES
