"""Unit tests for the parallel experiment engine and the result cache."""

import pytest

from repro.testbed import (
    ExperimentFailed,
    ResultCache,
    RunFailure,
    Scenario,
    derive_seed,
    resolve_workers,
    run_many,
    scenario_fingerprint,
    sweep,
)
from repro.testbed.runner import WORKERS_ENV_VAR
from repro.testbed.sweep import grid_scenarios

SMALL = Scenario(message_count=120, seed=5)


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_var_used_when_unset(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_workers() == 5

    def test_default_is_at_least_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers() >= 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestFingerprint:
    def test_stable_for_equal_scenarios(self):
        assert scenario_fingerprint(Scenario(), "s") == scenario_fingerprint(
            Scenario(), "s"
        )

    def test_sensitive_to_every_layer(self):
        base = Scenario()
        variants = [
            base.with_(seed=2),
            base.with_(message_bytes=300),
            base.with_(config=base.config.with_(batch_size=4)),
            base.with_(hardware=base.hardware.__class__(io_bytes_per_s=50_000.0)),
        ]
        keys = {scenario_fingerprint(s, "s") for s in [base, *variants]}
        assert len(keys) == len(variants) + 1

    def test_sensitive_to_salt(self):
        assert scenario_fingerprint(Scenario(), "a") != scenario_fingerprint(
            Scenario(), "b"
        )


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        assert cache.get(SMALL) is None
        assert cache.misses == 1
        [result] = run_many([SMALL], workers=1, cache=cache)
        cached = cache.get(SMALL)
        assert cached == result
        assert cache.hits == 1
        assert len(cache) == 1

    def test_cache_short_circuits_runs(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, salt="v1")
        [result] = run_many([SMALL], workers=1, cache=cache)

        def boom(scenario):
            raise AssertionError("cache hit should not re-run")

        monkeypatch.setattr("repro.testbed.runner.run_experiment", boom)
        [again] = run_many([SMALL], workers=1, cache=cache)
        assert again == result

    def test_salt_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        run_many([SMALL], workers=1, cache=cache)
        stale = ResultCache(tmp_path, salt="v2")
        assert stale.get(SMALL) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        path = cache.put(SMALL, run_many([SMALL], workers=1)[0])
        path.write_text("{not json")
        assert cache.get(SMALL) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        run_many([SMALL], workers=1, cache=cache)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunManySerial:
    def test_results_in_input_order(self):
        scenarios = [SMALL.with_(seed=s) for s in (11, 12, 13)]
        results = run_many(scenarios, workers=1)
        assert [r.seed for r in results] == [11, 12, 13]

    def test_progress_reports_each_completion(self):
        scenarios = [SMALL.with_(seed=s) for s in (1, 2)]
        seen = []
        run_many(
            scenarios,
            workers=1,
            progress=lambda i, total, sc: seen.append((i, total, sc.seed)),
        )
        assert seen == [(0, 2, 1), (1, 2, 2)]

    def test_error_raise_mode(self, monkeypatch):
        def boom(scenario):
            raise RuntimeError("bad scenario")

        monkeypatch.setattr("repro.testbed.runner.run_experiment", boom)
        with pytest.raises(ExperimentFailed) as excinfo:
            run_many([SMALL], workers=1)
        assert "bad scenario" in str(excinfo.value)

    def test_error_collect_mode(self, monkeypatch):
        calls = []

        def sometimes(scenario):
            calls.append(scenario.seed)
            if scenario.seed == 2:
                raise RuntimeError("only seed 2 fails")
            from repro.testbed.experiment import Experiment

            return Experiment(scenario).run()

        monkeypatch.setattr("repro.testbed.runner.run_experiment", sometimes)
        scenarios = [SMALL.with_(seed=s) for s in (1, 2, 3)]
        results = run_many(scenarios, workers=1, on_error="collect")
        assert calls == [1, 2, 3]
        assert isinstance(results[1], RunFailure)
        assert not results[1]  # falsy for filtering
        assert results[0].seed == 1 and results[2].seed == 3

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            run_many([SMALL], workers=1, on_error="ignore")


class TestSweepSeeding:
    def test_derive_seed_unique_per_cell(self):
        seeds = {
            derive_seed(1, point, replication)
            for point in range(40)
            for replication in range(5)
        }
        assert len(seeds) == 40 * 5

    def test_derive_seed_deterministic(self):
        assert derive_seed(9, 3, 2) == derive_seed(9, 3, 2)

    def test_grid_points_no_longer_share_seeds(self):
        """Regression: base.seed + 1000 * replication reused the same seed
        set at every grid point (unintended common random numbers)."""
        scenarios = grid_scenarios(
            Scenario(message_count=50),
            {"message_bytes": [100, 200, 400]},
            replications=2,
        )
        assert len({s.seed for s in scenarios}) == len(scenarios) == 6

    def test_sweep_grid_order_with_replications(self):
        results = sweep(
            Scenario(message_count=60, seed=3),
            {"message_bytes": [100, 200]},
            replications=2,
            workers=1,
        )
        assert [r.message_bytes for r in results] == [100, 100, 200, 200]
        assert len({r.seed for r in results}) == 4
