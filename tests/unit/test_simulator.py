"""Unit tests for the simulator clock and run loop."""

import pytest

from repro.simulation import SimulationError, Simulator


def test_clock_starts_at_zero_by_default():
    assert Simulator().now == 0.0


def test_schedule_advances_clock_to_event_time():
    sim = Simulator()
    fired_at = []
    sim.schedule(2.5, lambda: fired_at.append(sim.now))
    sim.run()
    assert fired_at == [2.5]
    assert sim.now == 2.5


def test_schedule_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_fast_forwards_clock():
    sim = Simulator()
    sim.schedule(100.0, lambda: None)
    processed = sim.run(until=50.0)
    assert processed == 0
    assert sim.now == 50.0
    assert sim.pending_events == 1


def test_run_until_processes_events_up_to_bound():
    sim = Simulator()
    seen = []
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, seen.append, delay)
    sim.run(until=2.0)
    assert seen == [1.0, 2.0]


def test_run_until_before_now_rejected():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_stop_exits_run_loop():
    sim = Simulator()
    seen = []

    def first():
        seen.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]
    assert sim.pending_events == 1


def test_max_events_bounds_processing():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending_events == 6


def test_every_repeats_until_stopped():
    sim = Simulator()
    ticks = []
    stop = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.schedule(3.5, stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_every_rejects_non_positive_interval():
    with pytest.raises(SimulationError):
        Simulator().every(0.0, lambda: None)


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_reset_rewinds_clock_and_clears_queue():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(1.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_deterministic_tie_break_is_fifo():
    sim = Simulator()
    order = []
    for name in "abc":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == ["a", "b", "c"]
