"""Unit tests for coroutine processes and signals."""

import pytest

from repro.simulation import Signal, Simulator, spawn


def test_process_sleeps_for_yielded_delays():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield 1.5
        trace.append(sim.now)
        yield 0.5
        trace.append(sim.now)

    spawn(sim, worker())
    sim.run()
    assert trace == [0.0, 1.5, 2.0]


def test_process_completion_signal_carries_return_value():
    sim = Simulator()

    def worker():
        yield 1.0
        return 42

    process = spawn(sim, worker())
    sim.run()
    assert process.done
    assert process.result == 42
    assert process.completion.triggered
    assert process.completion.value == 42


def test_process_waits_on_signal():
    sim = Simulator()
    gate = Signal(sim, name="gate")
    trace = []

    def worker():
        value = yield gate
        trace.append((sim.now, value))

    spawn(sim, worker())
    sim.schedule(3.0, gate.trigger, "opened")
    sim.run()
    assert trace == [(3.0, "opened")]


def test_waiting_on_already_triggered_signal_resumes_immediately():
    sim = Simulator()
    gate = Signal(sim)
    gate.trigger("early")
    trace = []

    def worker():
        value = yield gate
        trace.append(value)

    spawn(sim, worker())
    sim.run()
    assert trace == ["early"]


def test_signal_trigger_twice_raises():
    sim = Simulator()
    signal = Signal(sim)
    signal.trigger()
    with pytest.raises(RuntimeError):
        signal.trigger()


def test_signal_resumes_waiters_in_registration_order():
    sim = Simulator()
    signal = Signal(sim)
    order = []
    signal.add_waiter(lambda _: order.append("first"))
    signal.add_waiter(lambda _: order.append("second"))
    signal.trigger()
    sim.run()
    assert order == ["first", "second"]


def test_process_yielding_bad_type_raises():
    sim = Simulator()

    def worker():
        yield "not a delay"

    spawn(sim, worker())
    with pytest.raises(TypeError):
        sim.run()


def test_process_negative_sleep_raises():
    sim = Simulator()

    def worker():
        yield -1.0

    spawn(sim, worker())
    with pytest.raises(RuntimeError):
        sim.run()


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def worker(name, delay):
        for _ in range(2):
            yield delay
            trace.append((name, sim.now))

    spawn(sim, worker("fast", 1.0))
    spawn(sim, worker("slow", 1.6))
    sim.run()
    assert trace == [("fast", 1.0), ("slow", 1.6), ("fast", 2.0), ("slow", 3.2)]
