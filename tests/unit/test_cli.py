"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.command == "experiment"
        assert args.message_bytes == 200
        assert args.semantics == "at_least_once"

    def test_experiment_options(self):
        args = build_parser().parse_args([
            "experiment", "--loss", "0.19", "--delay-ms", "100",
            "--semantics", "at_most_once", "--batch-size", "4",
        ])
        assert args.loss == 0.19
        assert args.delay_ms == 100
        assert args.semantics == "at_most_once"
        assert args.batch_size == 4

    def test_train_options(self):
        args = build_parser().parse_args([
            "train", "--epochs", "10", "--registry", "/tmp/r", "--name", "m",
        ])
        assert args.epochs == 10
        assert args.registry == "/tmp/r"

    def test_dynamic_options(self):
        args = build_parser().parse_args(["dynamic", "--gamma", "0.9"])
        assert args.gamma == 0.9

    def test_unknown_semantics_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--semantics", "telepathy"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_experiment_command_runs(self, capsys):
        code = main([
            "experiment", "--messages", "200", "--message-bytes", "200",
            "--seed", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "P_l (loss)" in out
        assert "Table I case" in out

    def test_experiment_with_faults(self, capsys):
        code = main([
            "experiment", "--messages", "150", "--loss", "0.2",
            "--delay-ms", "50", "--bursty-loss", "--seed", "5",
        ])
        assert code == 0
        assert "95% CI" in capsys.readouterr().out

    def test_train_command_small(self, capsys, tmp_path):
        code = main([
            "train", "--messages", "150", "--normal-rows", "24",
            "--abnormal-rows", "32", "--epochs", "8",
            "--registry", str(tmp_path), "--name", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hold-out MAE" in out
        assert (tmp_path / "tiny" / "manifest.json").exists()
