"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.observability import validate_metrics_document


class TestParser:
    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.command == "experiment"
        assert args.message_bytes == 200
        assert args.semantics == "at_least_once"

    def test_experiment_options(self):
        args = build_parser().parse_args([
            "experiment", "--loss", "0.19", "--delay-ms", "100",
            "--semantics", "at_most_once", "--batch-size", "4",
        ])
        assert args.loss == 0.19
        assert args.delay_ms == 100
        assert args.semantics == "at_most_once"
        assert args.batch_size == 4

    def test_train_options(self):
        args = build_parser().parse_args([
            "train", "--epochs", "10", "--registry", "/tmp/r", "--name", "m",
        ])
        assert args.epochs == 10
        assert args.registry == "/tmp/r"

    def test_dynamic_options(self):
        args = build_parser().parse_args(["dynamic", "--gamma", "0.9"])
        assert args.gamma == 0.9

    def test_experiment_telemetry_flags(self):
        args = build_parser().parse_args([
            "experiment", "--metrics", "--trace-file", "out.jsonl",
        ])
        assert args.metrics is True
        assert args.trace_file == "out.jsonl"

    def test_inspect_requires_a_path(self):
        args = build_parser().parse_args(["inspect", "trace.jsonl"])
        assert args.command == "inspect"
        assert args.trace_file == "trace.jsonl"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inspect"])

    def test_unknown_semantics_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--semantics", "telepathy"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_experiment_command_runs(self, capsys):
        code = main([
            "experiment", "--messages", "200", "--message-bytes", "200",
            "--seed", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "P_l (loss)" in out
        assert "Table I case" in out

    def test_experiment_with_faults(self, capsys):
        code = main([
            "experiment", "--messages", "150", "--loss", "0.2",
            "--delay-ms", "50", "--bursty-loss", "--seed", "5",
        ])
        assert code == 0
        assert "95% CI" in capsys.readouterr().out

    def test_train_command_small(self, capsys, tmp_path):
        code = main([
            "train", "--messages", "150", "--normal-rows", "24",
            "--abnormal-rows", "32", "--epochs", "8",
            "--registry", str(tmp_path), "--name", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hold-out MAE" in out
        assert (tmp_path / "tiny" / "manifest.json").exists()


class TestObservabilityCommands:
    ARGS = ["experiment", "--messages", "200", "--loss", "0.1", "--seed", "6"]

    def test_metrics_emits_schema_valid_json(self, capsys):
        code = main(self.ARGS + ["--metrics"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_metrics_document(document) == []
        manifest = document["manifest"]
        # Acceptance: the per-case counts sum to the scenario's messages.
        total = sum(manifest["case_counts"].values()) + manifest["unresolved"]
        assert total == manifest["produced"] == 200
        assert document["metrics"]["producer.ingested"]["value"] == 200

    def test_trace_file_then_inspect_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code = main(self.ARGS + ["--trace-file", str(trace)])
        assert code == 0
        assert trace.exists()
        capsys.readouterr()  # discard the experiment table
        code = main(["inspect", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        assert summary["ok"] is True
        assert summary["violations"] == []
        assert summary["events"] == summary["manifest"]["trace_events"]
        assert "transition" in summary["kinds"]

    def test_inspect_tampered_trace_exits_nonzero(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        main(self.ARGS + ["--trace-file", str(trace)])
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        victim = next(
            i for i, line in enumerate(lines) if '"kind":"transition"' in line
        )
        trace.write_text("\n".join(lines[:victim] + lines[victim + 1 :]) + "\n")
        code = main(["inspect", str(trace)])
        out = capsys.readouterr().out
        assert code == 1
        summary = json.loads(out)
        assert summary["ok"] is False
        assert summary["violations"]

    def test_inspect_missing_file_exits_two(self, capsys, tmp_path):
        code = main(["inspect", str(tmp_path / "absent.jsonl")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
