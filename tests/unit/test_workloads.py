"""Unit tests for arrival processes and stream profiles."""

import numpy as np
import pytest

from repro.kafka import KafkaCluster, KafkaProducer
from repro.network import ConstantLatency, Link, ReliableChannel
from repro.simulation import RngRegistry, Simulator
from repro.workloads import (
    ConstantRateSource,
    FullLoadSource,
    GAME_TRAFFIC,
    PAPER_STREAMS,
    PoissonSource,
    PolledSource,
    SOCIAL_MEDIA,
    StreamProfile,
    WEB_ACCESS_LOGS,
)
from repro.kafka.config import HardwareProfile


def make_producer():
    sim = Simulator()
    rng = RngRegistry(4)
    cluster = KafkaCluster(sim)
    topic = cluster.create_topic("t")
    link = Link(sim, rng.stream("link"), capacity_bps=1e6, latency=ConstantLatency(0.001))
    channel = ReliableChannel(sim, link)
    producer = KafkaProducer(sim, cluster, channel, topic)
    return sim, producer, rng.stream("source")


class TestConstantRateSource:
    def test_emits_exact_count(self):
        sim, producer, rng = make_producer()
        source = ConstantRateSource(sim, producer, 25, 100, rng, rate=100.0)
        source.start()
        sim.run()
        assert len(source.keys) == 25
        assert producer.done.triggered

    def test_deterministic_spacing(self):
        sim, producer, rng = make_producer()
        source = ConstantRateSource(sim, producer, 5, 100, rng, rate=10.0)
        source.start()
        sim.run()
        # The last record arrives at 4 intervals of 0.1s.
        assert producer.stats.ingested == 5

    def test_rate_validation(self):
        sim, producer, rng = make_producer()
        with pytest.raises(ValueError):
            ConstantRateSource(sim, producer, 5, 100, rng, rate=0.0)


class TestPoissonSource:
    def test_emits_exact_count(self):
        sim, producer, rng = make_producer()
        source = PoissonSource(sim, producer, 30, 100, rng, rate=200.0)
        source.start()
        sim.run()
        assert len(source.keys) == 30

    def test_mean_rate_roughly_holds(self):
        sim, producer, rng = make_producer()
        source = PoissonSource(sim, producer, 400, 100, rng, rate=100.0)
        source.start()
        sim.run()
        # 400 arrivals at 100/s should take about 4 simulated seconds.
        assert 2.0 < sim.now < 8.0


class TestFullLoadSource:
    def test_peak_rate_depends_on_message_size(self):
        hardware = HardwareProfile()
        sim, producer, rng = make_producer()
        small = FullLoadSource(sim, producer, 10, 100, rng, hardware, False)
        large = FullLoadSource(sim, producer, 10, 1000, rng, hardware, False)
        assert small._peak_rate > large._peak_rate

    def test_ack_handling_slows_ingest(self):
        hardware = HardwareProfile()
        sim, producer, rng = make_producer()
        amo = FullLoadSource(sim, producer, 10, 200, rng, hardware, False)
        alo = FullLoadSource(sim, producer, 10, 200, rng, hardware, True)
        assert alo._peak_rate < amo._peak_rate

    def test_bursts_create_gaps(self):
        hardware = HardwareProfile(source_burst_on_s=0.05, source_burst_off_s=1.0)
        sim, producer, rng = make_producer()
        source = FullLoadSource(sim, producer, 100, 200, rng, hardware, False)
        arrivals = []
        original = producer.offer
        producer.offer = lambda record: (arrivals.append(sim.now), original(record))[1]
        source.start()
        sim.run()
        gaps = np.diff(arrivals)
        assert gaps.max() > 10 * np.median(gaps)


class TestPolledSource:
    def test_poll_rate_caps_arrivals(self):
        sim, producer, rng = make_producer()
        source = PolledSource(sim, producer, 20, 100, rng, polling_interval_s=0.05)
        source.start()
        sim.run()
        # 20 polls at 50ms each need at least ~1 simulated second.
        assert sim.now >= 1.0
        assert len(source.keys) == 20

    def test_empty_polls_when_upstream_starved(self):
        hardware = HardwareProfile(io_bytes_per_s=100.0)  # ~1 msg/s upstream
        sim, producer, rng = make_producer()
        source = PolledSource(
            sim, producer, 5, 100, rng, polling_interval_s=0.01, hardware=hardware
        )
        source.start()
        sim.run()
        # Arrival limited by the upstream rate, not the poll rate.
        assert sim.now > 1.0

    def test_zero_delta_rejected(self):
        sim, producer, rng = make_producer()
        with pytest.raises(ValueError):
            PolledSource(sim, producer, 5, 100, rng, polling_interval_s=0.0)


class TestSourceValidation:
    def test_count_positive(self):
        sim, producer, rng = make_producer()
        with pytest.raises(ValueError):
            ConstantRateSource(sim, producer, 0, 100, rng, rate=1.0)

    def test_payload_sampler_used(self):
        sim, producer, rng = make_producer()
        source = ConstantRateSource(
            sim, producer, 5, 100, rng, rate=100.0,
            payload_sampler=lambda r: 77,
        )
        sizes = []
        original = producer.offer
        producer.offer = lambda record: (sizes.append(record.payload_bytes), original(record))[1]
        source.start()
        sim.run()
        assert sizes == [77] * 5


class TestStreamProfiles:
    def test_paper_streams_cover_table2(self):
        assert [stream.name for stream in PAPER_STREAMS] == [
            "social media messages",
            "web server access records",
            "game traffic messages",
        ]

    def test_weights_sum_to_one(self):
        for stream in PAPER_STREAMS:
            assert sum(stream.kpi_weights) == pytest.approx(1.0)

    def test_game_traffic_is_small_and_strict(self):
        assert GAME_TRAFFIC.mean_payload_bytes < 100
        assert GAME_TRAFFIC.timeliness_s < SOCIAL_MEDIA.timeliness_s

    def test_web_logs_prioritise_completeness(self):
        assert WEB_ACCESS_LOGS.kpi_weights[2] > 0.5

    def test_payload_sampler_respects_jitter(self):
        rng = np.random.default_rng(0)
        sampler = SOCIAL_MEDIA.payload_sampler()
        sizes = [sampler(rng) for _ in range(500)]
        mean = SOCIAL_MEDIA.mean_payload_bytes
        jitter = SOCIAL_MEDIA.payload_jitter
        assert all(mean * (1 - jitter) - 1 <= s <= mean * (1 + jitter) + 1 for s in sizes)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            StreamProfile("bad", 100, 0.1, 1.0, (0.5, 0.5, 0.5, 0.5), 10.0)
        with pytest.raises(ValueError):
            StreamProfile("bad", 0, 0.1, 1.0, (0.25, 0.25, 0.25, 0.25), 10.0)
