"""``repro lint`` CLI smoke tests: exit codes, JSON schema, baseline flow."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint.report import REPORT_VERSION

REPO_ROOT = Path(__file__).parents[2]

BAD_SOURCE = "import json\n\npayload = json.dumps({'b': 1})\n"

#: Required keys and the type of their values in the version-1 report.
REPORT_SCHEMA = {
    "version": int,
    "tool": str,
    "paths": list,
    "files_scanned": int,
    "counts": dict,
    "rules": list,
    "findings": list,
    "baselined": list,
    "suppressed": list,
    "ok": bool,
}

FINDING_SCHEMA = {
    "rule": str,
    "name": str,
    "severity": str,
    "path": str,
    "line": int,
    "col": int,
    "message": str,
    "snippet": str,
    "suppressed": bool,
    "baselined": bool,
}


def run_lint(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestRepoIsClean:
    def test_lint_exits_zero_on_the_repo(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, out = run_lint(capsys, "--format", "json")
        document = json.loads(out)
        assert code == 0, document["findings"]
        assert document["ok"] is True
        assert document["findings"] == []
        assert document["files_scanned"] > 80

    def test_committed_baseline_is_empty(self):
        payload = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert payload == {"version": 1, "entries": {}}


class TestJsonReportSchema:
    @pytest.fixture()
    def document(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(BAD_SOURCE)
        out_file = tmp_path / "report.json"
        code, out = run_lint(
            capsys, str(target), "--format", "json",
            "--out", str(out_file), "--no-baseline",
        )
        assert code == 1
        # stdout and --out carry the identical document.
        assert json.loads(out) == json.loads(out_file.read_text())
        return json.loads(out)

    def test_top_level_schema(self, document):
        assert set(document) == set(REPORT_SCHEMA)
        for key, expected_type in REPORT_SCHEMA.items():
            assert isinstance(document[key], expected_type), key
        assert document["version"] == REPORT_VERSION
        assert document["tool"] == "repro-lint"

    def test_finding_schema(self, document):
        assert document["counts"]["new"] == 1
        [finding] = document["findings"]
        assert set(finding) == set(FINDING_SCHEMA)
        for key, expected_type in FINDING_SCHEMA.items():
            assert isinstance(finding[key], expected_type), key
        assert finding["rule"] == "REPRO105"
        assert document["ok"] is False

    def test_rule_table_lists_every_rule(self, document):
        from repro.lint import rule_classes

        assert [row["id"] for row in document["rules"]] == [
            cls.id for cls in rule_classes()
        ]
        for row in document["rules"]:
            assert set(row) == {"id", "name", "severity", "description"}


class TestExitCodesAndFlags:
    def test_clean_file_exits_zero_human_format(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        code, out = run_lint(capsys, str(target), "--no-baseline")
        assert code == 0
        assert "0 new finding(s)" in out

    def test_violation_exits_one_with_location(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(BAD_SOURCE)
        code, out = run_lint(capsys, str(target), "--no-baseline")
        assert code == 1
        assert "mod.py:3" in out
        assert "REPRO105" in out

    def test_fail_on_never_reports_but_passes(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(BAD_SOURCE)
        code, out = run_lint(
            capsys, str(target), "--no-baseline", "--fail-on", "never",
            "--format", "json",
        )
        assert code == 0
        document = json.loads(out)
        assert document["counts"]["new"] == 1
        assert document["ok"] is True

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code, _out = run_lint(capsys, str(tmp_path / "absent"))
        assert code == 2

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        code, _out = run_lint(capsys, str(target), "--rules", "NOPE1")
        assert code == 2

    def test_list_rules_prints_table(self, capsys):
        code, out = run_lint(capsys, "--list-rules")
        assert code == 0
        assert "REPRO101" in out and "REPRO301" in out


class TestBaselineWorkflow:
    def test_write_then_gate_then_resurface(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "legacy.py"
        target.write_text(BAD_SOURCE)

        # 1. Adopting the rule over legacy code: record the baseline.
        code, _ = run_lint(capsys, "legacy.py", "--write-baseline")
        assert code == 0
        assert (tmp_path / "lint-baseline.json").exists()

        # 2. Same tree lints clean; the finding is reported as baselined.
        code, out = run_lint(capsys, "legacy.py", "--format", "json")
        document = json.loads(out)
        assert code == 0
        assert document["counts"] == {"new": 0, "baselined": 1, "suppressed": 0}

        # 3. A second, new violation still gates.
        target.write_text(BAD_SOURCE + "more = json.dumps({'c': 2})\n")
        code, out = run_lint(capsys, "legacy.py", "--format", "json")
        document = json.loads(out)
        assert code == 1
        assert document["counts"]["new"] == 1
        assert document["counts"]["baselined"] == 1

        # 4. --no-baseline makes everything gate again.
        code, out = run_lint(capsys, "legacy.py", "--no-baseline",
                             "--format", "json")
        assert code == 1
        assert json.loads(out)["counts"]["new"] == 2
