"""Unit tests for the online estimator and controller."""

import pytest

from repro.kafka import ProducerConfig
from repro.kpi import (
    KpiWeights,
    NetworkStateEstimator,
    OnlineDynamicController,
)
from repro.kpi.online import NetworkStateEstimate
from repro.models import FeatureVector, ReliabilityEstimate
from repro.performance import ProducerPerformanceModel
from repro.workloads import WEB_ACCESS_LOGS


class StubPredictor:
    def predict_vector(self, vector: FeatureVector) -> ReliabilityEstimate:
        loss = min(1.0, vector.loss_rate * 3.0 / vector.batch_size)
        return ReliabilityEstimate(p_loss=loss, p_duplicate=0.0)


class TestEstimator:
    def test_starts_unconfident_and_zeroed(self):
        estimator = NetworkStateEstimator()
        estimate = estimator.estimate()
        assert not estimate.confident
        assert estimate.delay_s == 0.0
        assert estimate.loss_rate == 0.0

    def test_rtt_observation_infers_delay(self):
        model = ProducerPerformanceModel()
        estimator = NetworkStateEstimator(model)
        wire = model.request_wire_bytes(200, 1)
        base = (wire + 66) / model.hardware.link_capacity_bps + 2 * model.hardware.link_base_delay_s
        estimator.observe_rtt(base + 0.2, 200, 1)
        assert estimator.estimate().delay_s == pytest.approx(0.1, rel=0.01)

    def test_rtt_below_baseline_clamps_to_zero(self):
        estimator = NetworkStateEstimator()
        estimator.observe_rtt(0.0, 200, 1)
        assert estimator.estimate().delay_s == 0.0

    def test_transport_observation_infers_loss(self):
        estimator = NetworkStateEstimator()
        estimator.observe_transport(segments_sent=100, retransmissions=15)
        assert estimator.estimate().loss_rate == pytest.approx(0.15)

    def test_ewma_smooths_observations(self):
        estimator = NetworkStateEstimator(smoothing=0.5)
        estimator.observe_transport(100, 0)
        estimator.observe_transport(100, 40)
        assert estimator.estimate().loss_rate == pytest.approx(0.2)

    def test_zero_segments_ignored(self):
        estimator = NetworkStateEstimator()
        estimator.observe_transport(0, 0)
        assert estimator.estimate().samples == 0

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            NetworkStateEstimator().observe_rtt(-1.0, 200, 1)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            NetworkStateEstimator(smoothing=0.0)

    def test_confidence_threshold(self):
        estimator = NetworkStateEstimator()
        estimator.observe_transport(100, 10)
        assert not estimator.estimate().confident
        estimator.observe_transport(100, 10)
        assert estimator.estimate().confident


class TestController:
    def make(self, **kwargs):
        return OnlineDynamicController(
            StubPredictor(),
            ProducerPerformanceModel(),
            weights=KpiWeights.of(WEB_ACCESS_LOGS.kpi_weights),
            gamma_requirement=0.95,
            **kwargs,
        )

    def test_unconfident_estimate_keeps_config(self):
        controller = self.make()
        current = ProducerConfig(batch_size=1)
        estimate = NetworkStateEstimate(delay_s=0.1, loss_rate=0.3, samples=1)
        assert controller.decide(estimate, WEB_ACCESS_LOGS, current) is current

    def test_heavy_loss_triggers_batching(self):
        controller = self.make()
        current = ProducerConfig(batch_size=1)
        estimate = NetworkStateEstimate(delay_s=0.05, loss_rate=0.25, samples=10)
        decided = controller.decide(estimate, WEB_ACCESS_LOGS, current)
        assert decided.batch_size > 1

    def test_clean_network_keeps_config_when_requirement_met(self):
        # With a reachable requirement the search stops at the start
        # configuration (the paper's criterion: meet, don't maximise).
        controller = OnlineDynamicController(
            StubPredictor(),
            ProducerPerformanceModel(),
            weights=KpiWeights.of(WEB_ACCESS_LOGS.kpi_weights),
            gamma_requirement=0.5,
        )
        current = ProducerConfig(batch_size=1)
        estimate = NetworkStateEstimate(delay_s=0.005, loss_rate=0.0, samples=10)
        decided = controller.decide(estimate, WEB_ACCESS_LOGS, current)
        assert decided.batch_size == 1

    def test_hysteresis_blocks_marginal_changes(self):
        controller = self.make(hysteresis=10.0)  # nothing can improve by 10
        current = ProducerConfig(batch_size=1)
        estimate = NetworkStateEstimate(delay_s=0.05, loss_rate=0.25, samples=10)
        assert controller.decide(estimate, WEB_ACCESS_LOGS, current) is current
