"""Unit tests for the event queue."""


from repro.simulation.events import Event, EventQueue, HIGH_PRIORITY, LOW_PRIORITY


def test_push_pop_single_event():
    queue = EventQueue()
    fired = []
    queue.push(1.0, fired.append, "a")
    event = queue.pop()
    event.fire()
    assert fired == ["a"]


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    queue.push(3.0, lambda: None)
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    times = [queue.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_same_time_orders_by_priority_then_insertion():
    queue = EventQueue()
    order = []
    queue.push(1.0, order.append, "normal-first")
    queue.push(1.0, order.append, "high", priority=HIGH_PRIORITY)
    queue.push(1.0, order.append, "low", priority=LOW_PRIORITY)
    queue.push(1.0, order.append, "normal-second")
    while queue:
        queue.pop().fire()
    assert order == ["high", "normal-first", "normal-second", "low"]


def test_len_counts_live_events_only():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(first)
    assert len(queue) == 1


def test_cancelled_event_is_skipped_on_pop():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.pop().time == 2.0
    assert queue.pop() is None


def test_double_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 1


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    queue.cancel(head)
    assert queue.peek_time() == 5.0


def test_peek_time_empty_queue_is_none():
    assert EventQueue().peek_time() is None


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue
    assert queue.pop() is None


def test_event_fire_passes_args():
    received = []
    event = Event(0.0, 0, 0, lambda a, b: received.append((a, b)), (1, 2))
    event.fire()
    assert received == [(1, 2)]


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    event = queue.push(1.0, lambda: None)
    assert queue
    queue.cancel(event)
    assert not queue


def test_len_consistent_under_interleaved_push_cancel_peek_pop():
    """Regression: peek_time used to pop cancelled heads on its own path;
    len(queue) must track the live count through any interleaving."""
    queue = EventQueue()
    live = []
    events = []
    for index in range(50):
        events.append(queue.push(float(index % 7), lambda: None))
        live.append(events[-1])
        if index % 3 == 0 and live:
            victim = live[len(live) // 2]
            queue.cancel(victim)
            live.remove(victim)
        if index % 4 == 0:
            queue.peek_time()
            assert len(queue) == len(live)
        if index % 5 == 0 and live:
            popped = queue.pop()
            assert not popped.cancelled
            live.remove(popped)
        assert len(queue) == len(live)
    drained = 0
    while queue:
        assert queue.pop() is not None
        drained += 1
    assert drained == len(live)
    assert queue.pop() is None
    assert len(queue) == 0


def test_compaction_preserves_order_and_len():
    """Cancelling enough events to trigger heap compaction must not
    disturb ordering or the live count."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(300)]
    # Cancel most of them so dead entries outnumber live ones.
    for event in events[::2]:
        queue.cancel(event)
    for event in events[1::4]:
        queue.cancel(event)
    expected = sorted(e.time for e in events if not e.cancelled)
    assert len(queue) == len(expected)
    assert queue._dead < EventQueue.COMPACT_MIN_DEAD or queue._dead <= queue._live
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == expected


def test_cancel_during_pop_interleaving_keeps_peek_consistent():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    second = queue.push(2.0, lambda: None)
    third = queue.push(3.0, lambda: None)
    assert queue.peek_time() == 1.0
    queue.cancel(first)
    assert queue.peek_time() == 2.0
    assert len(queue) == 2
    assert queue.pop() is second
    queue.cancel(third)
    assert queue.peek_time() is None
    assert queue.pop() is None
    assert len(queue) == 0
