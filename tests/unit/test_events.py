"""Unit tests for the event queue."""

import pytest

from repro.simulation.events import Event, EventQueue, HIGH_PRIORITY, LOW_PRIORITY


def test_push_pop_single_event():
    queue = EventQueue()
    fired = []
    queue.push(1.0, fired.append, "a")
    event = queue.pop()
    event.fire()
    assert fired == ["a"]


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    queue.push(3.0, lambda: None)
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    times = [queue.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_same_time_orders_by_priority_then_insertion():
    queue = EventQueue()
    order = []
    queue.push(1.0, order.append, "normal-first")
    queue.push(1.0, order.append, "high", priority=HIGH_PRIORITY)
    queue.push(1.0, order.append, "low", priority=LOW_PRIORITY)
    queue.push(1.0, order.append, "normal-second")
    while queue:
        queue.pop().fire()
    assert order == ["high", "normal-first", "normal-second", "low"]


def test_len_counts_live_events_only():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(first)
    assert len(queue) == 1


def test_cancelled_event_is_skipped_on_pop():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.pop().time == 2.0
    assert queue.pop() is None


def test_double_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 1


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    queue.cancel(head)
    assert queue.peek_time() == 5.0


def test_peek_time_empty_queue_is_none():
    assert EventQueue().peek_time() is None


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue
    assert queue.pop() is None


def test_event_fire_passes_args():
    received = []
    event = Event(0.0, 0, 0, lambda a, b: received.append((a, b)), (1, 2))
    event.fire()
    assert received == [(1, 2)]


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    event = queue.push(1.0, lambda: None)
    assert queue
    queue.cancel(event)
    assert not queue
