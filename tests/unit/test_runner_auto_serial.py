"""Auto-serial fallback, worker resolution and the lean payload codec.

The engine must never lose to serial execution on dispatch overhead:
whenever a pool cannot win (one worker, one CPU, a grid that fits in a
single chunk) `run_many` drops to the in-process loop and records *why*
— in the `execution_info` out-param and a `runner.auto_serial.<reason>`
metrics counter.
"""

import pytest

import repro.testbed.runner as runner_mod
from repro.kafka import DeliverySemantics, HardwareProfile, ProducerConfig
from repro.observability import MetricsRegistry
from repro.testbed import Scenario, resolve_workers, run_many
from repro.testbed.runner import (
    _decode_scenario,
    _encode_scenario,
)


def fake_run_experiment(scenario, telemetry=None):
    return ("ran", scenario.seed)


@pytest.fixture(autouse=True)
def stub_experiment(monkeypatch):
    monkeypatch.setattr(runner_mod, "run_experiment", fake_run_experiment)


def scenarios(count):
    return [Scenario(message_count=10, seed=i + 1) for i in range(count)]


class TestResolveWorkersAuto:
    def test_auto_string_behaves_like_none(self, monkeypatch):
        monkeypatch.delenv(runner_mod.WORKERS_ENV_VAR, raising=False)
        assert resolve_workers("auto") == resolve_workers(None)

    def test_numeric_string_accepted(self):
        assert resolve_workers("3") == 3

    def test_auto_env_value_falls_back_to_cpu(self, monkeypatch):
        monkeypatch.setenv(runner_mod.WORKERS_ENV_VAR, "auto")
        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 9)
        assert resolve_workers(None) == 8

    def test_garbage_string_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_zero_still_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestAutoSerialReasons:
    def test_workers_le_1(self):
        registry = MetricsRegistry()
        info = {}
        run_many(scenarios(4), workers=1, metrics=registry, execution_info=info)
        assert info["mode"] == "serial"
        assert info["reason"] == "workers<=1"
        assert registry.counter("runner.auto_serial.workers_le_1").value == 1

    def test_cpu_count_eq_1(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_cpu_count", lambda: 1)
        registry = MetricsRegistry()
        info = {}
        run_many(scenarios(8), workers=4, metrics=registry, execution_info=info)
        assert info["mode"] == "serial"
        assert info["reason"] == "cpu_count==1"
        assert registry.counter("runner.auto_serial.cpu_count_eq_1").value == 1

    def test_single_chunk(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_cpu_count", lambda: 8)
        registry = MetricsRegistry()
        info = {}
        # Explicit chunksize bigger than the grid: one dispatch chunk, so
        # a pool has nothing to spread.
        run_many(
            scenarios(4), workers=4, chunksize=16,
            metrics=registry, execution_info=info,
        )
        assert info["mode"] == "serial"
        assert info["reason"] == "single_chunk"
        assert registry.counter("runner.auto_serial.single_chunk").value == 1

    def test_single_scenario_never_pays_for_a_pool(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_cpu_count", lambda: 8)
        info = {}
        run_many(scenarios(1), workers=4, execution_info=info)
        assert info["mode"] == "serial"
        assert info["reason"] == "single_chunk"

    def test_metrics_optional(self):
        [result] = run_many(scenarios(1), workers=1)
        assert result == ("ran", 1)


class TestExecutionInfoShape:
    def test_serial_info_fields(self):
        info = {}
        run_many(scenarios(3), workers=1, execution_info=info)
        assert info == {
            "mode": "serial",
            "workers": 1,
            "reason": "workers<=1",
            "chunksize": None,
            "pending": 3,
            "total": 3,
        }


class TestLeanPayloadCodec:
    def test_default_scenario_is_empty_payload(self):
        assert _encode_scenario(Scenario()) == {}
        assert _decode_scenario({}) == Scenario()

    def test_round_trip_preserves_every_field(self):
        scenario = Scenario(
            message_bytes=900,
            timeliness_s=4.0,
            network_delay_s=0.25,
            loss_rate=0.1,
            jitter_s=0.01,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_MOST_ONCE,
                batch_size=6,
                polling_interval_s=0.04,
                message_timeout_s=2.0,
                max_retries=3,
            ),
            message_count=777,
            seed=42,
            bursty_loss=True,
            arrival_rate=123.0,
            broker_count=5,
            partition_count=7,
            hardware=HardwareProfile(),
            topic_name="alt",
        )
        payload = _encode_scenario(scenario)
        assert _decode_scenario(payload) == scenario

    def test_payload_only_carries_diffs(self):
        payload = _encode_scenario(Scenario(seed=9, message_bytes=500))
        assert payload == {"message_bytes": 500, "seed": 9}

    def test_nested_enum_encodes_as_wire_value(self):
        payload = _encode_scenario(
            Scenario(config=ProducerConfig(semantics=DeliverySemantics.EXACTLY_ONCE))
        )
        assert payload == {"config": {"semantics": "exactly_once"}}
