"""Unit tests for the Fig. 2 message state machine and Table I cases."""

import pytest

from repro.kafka import (
    DeliveryCase,
    IllegalTransition,
    MessageState,
    MessageStateMachine,
    Transition,
)


def walk(*transitions):
    machine = MessageStateMachine()
    for transition in transitions:
        machine.apply(transition)
    return machine


class TestTransitions:
    def test_initial_state_is_ready(self):
        assert MessageStateMachine().state is MessageState.READY

    def test_transition_i_delivers(self):
        assert walk(Transition.I).state is MessageState.DELIVERED

    def test_transition_ii_loses(self):
        assert walk(Transition.II).state is MessageState.LOST

    def test_transition_iii_keeps_lost(self):
        assert walk(Transition.II, Transition.III).state is MessageState.LOST

    def test_transition_iv_recovers(self):
        assert walk(Transition.II, Transition.IV).state is MessageState.DELIVERED

    def test_transition_v_loses_after_delivery(self):
        assert walk(Transition.I, Transition.V).state is MessageState.LOST

    def test_transition_vi_duplicates(self):
        machine = walk(Transition.I, Transition.V, Transition.VI)
        assert machine.state is MessageState.DUPLICATED

    def test_illegal_from_ready(self):
        for transition in (Transition.III, Transition.IV, Transition.V, Transition.VI):
            with pytest.raises(IllegalTransition):
                MessageStateMachine().apply(transition)

    def test_illegal_from_delivered(self):
        machine = walk(Transition.I)
        for transition in (Transition.I, Transition.II, Transition.III, Transition.IV):
            with pytest.raises(IllegalTransition):
                machine.apply(transition)

    def test_duplicated_is_terminal_except_vi(self):
        machine = walk(Transition.II, Transition.IV, Transition.V, Transition.VI)
        machine.apply(Transition.VI)  # extra duplicate copies allowed
        assert machine.state is MessageState.DUPLICATED
        with pytest.raises(IllegalTransition):
            machine.apply(Transition.I)


class TestTableICases:
    def test_case1_initial_success(self):
        assert walk(Transition.I).classify_case() is DeliveryCase.CASE1

    def test_case2_initial_failure(self):
        assert walk(Transition.II).classify_case() is DeliveryCase.CASE2

    def test_case3_retries_exhausted(self):
        machine = walk(Transition.II, Transition.III, Transition.III)
        assert machine.classify_case() is DeliveryCase.CASE3

    def test_case4_retry_success(self):
        machine = walk(Transition.II, Transition.III, Transition.IV)
        assert machine.classify_case() is DeliveryCase.CASE4

    def test_case5_paper_order(self):
        """Table I: II → τ_r·III → IV → V → τ_d·VI."""
        machine = walk(
            Transition.II, Transition.III, Transition.IV,
            Transition.V, Transition.VI,
        )
        assert machine.classify_case() is DeliveryCase.CASE5

    def test_case5_after_clean_first_delivery(self):
        """I → V → VI also ends Duplicated (ack-loss after clean send)."""
        machine = walk(Transition.I, Transition.V, Transition.VI)
        assert machine.classify_case() is DeliveryCase.CASE5

    def test_unresolved_message_has_no_case(self):
        with pytest.raises(ValueError):
            MessageStateMachine().classify_case()

    def test_success_flags(self):
        assert DeliveryCase.CASE1.is_success
        assert DeliveryCase.CASE4.is_success
        assert DeliveryCase.CASE2.is_loss_failure
        assert DeliveryCase.CASE3.is_loss_failure
        assert DeliveryCase.CASE5.is_duplicate_failure
        assert not DeliveryCase.CASE5.is_success


class TestCounters:
    def test_retry_count_counts_iii_and_iv(self):
        machine = walk(Transition.II, Transition.III, Transition.III, Transition.IV)
        assert machine.retry_count == 3

    def test_duplicate_count_counts_vi(self):
        machine = walk(Transition.I, Transition.V, Transition.VI, Transition.VI)
        assert machine.duplicate_count == 2

    def test_persisted_tracks_cluster_copies(self):
        assert not walk(Transition.II).persisted
        assert walk(Transition.I).persisted
        assert walk(Transition.I, Transition.V).persisted
        assert walk(Transition.II, Transition.IV).persisted
