"""Unit tests for configuration selection and the dynamic controller.

These use a stub predictor so the selection logic is tested in isolation
from ANN training.
"""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.kpi import (
    ConfigurationPlan,
    DynamicConfigurationController,
    KpiWeights,
    ParameterSteps,
    SelectionContext,
    evaluate_config,
    required_producers,
    select_configuration,
)
from repro.kpi.dynamic import ConfigPlanEntry
from repro.models import FeatureVector, ReliabilityEstimate
from repro.network import NetworkTrace, TracePoint
from repro.performance import ProducerPerformanceModel
from repro.workloads import GAME_TRAFFIC, WEB_ACCESS_LOGS


class StubPredictor:
    """Analytic stand-in: loss falls with batch size, rises with loss rate."""

    def predict_vector(self, vector: FeatureVector) -> ReliabilityEstimate:
        base = min(1.0, vector.loss_rate * 3.0 / vector.batch_size)
        duplicate = 0.02 / vector.batch_size if vector.semantics.waits_for_ack else 0.0
        return ReliabilityEstimate(p_loss=base, p_duplicate=min(1.0, duplicate))


@pytest.fixture
def context():
    return SelectionContext(
        message_bytes=200, timeliness_s=5.0, network_delay_s=0.1, loss_rate=0.15
    )


@pytest.fixture
def performance_model():
    return ProducerPerformanceModel()


class TestEvaluateConfig:
    def test_gamma_in_unit_interval(self, context, performance_model):
        gamma = evaluate_config(
            ProducerConfig(), context, StubPredictor(), performance_model
        )
        assert 0.0 <= gamma <= 1.0

    def test_batching_improves_gamma_under_loss(self, context, performance_model):
        weights = KpiWeights(0.1, 0.1, 0.7, 0.1)
        single = evaluate_config(
            ProducerConfig(batch_size=1), context, StubPredictor(), performance_model, weights
        )
        batched = evaluate_config(
            ProducerConfig(batch_size=8), context, StubPredictor(), performance_model, weights
        )
        assert batched > single


class TestSelectConfiguration:
    def test_meets_requirement_by_batching(self, context, performance_model):
        weights = KpiWeights(0.1, 0.1, 0.7, 0.1)
        result = select_configuration(
            context,
            StubPredictor(),
            performance_model,
            weights=weights,
            gamma_requirement=0.85,
            start=ProducerConfig(batch_size=1),
        )
        assert result.met_requirement
        assert result.config.batch_size > 1

    def test_stops_immediately_when_start_satisfies(self, context, performance_model):
        result = select_configuration(
            context,
            StubPredictor(),
            performance_model,
            gamma_requirement=0.0,
        )
        assert result.met_requirement
        assert result.steps_taken == 0

    def test_unreachable_requirement_reports_best_effort(self, context, performance_model):
        result = select_configuration(
            context,
            StubPredictor(),
            performance_model,
            gamma_requirement=1.01,
        )
        assert not result.met_requirement
        assert result.gamma <= 1.0
        assert result.trace[0][0] == "start"

    def test_search_never_worsens_gamma(self, context, performance_model):
        result = select_configuration(
            context, StubPredictor(), performance_model, gamma_requirement=0.99
        )
        gammas = [gamma for _, gamma in result.trace]
        assert gammas == sorted(gammas)

    def test_custom_steps_respected(self, context, performance_model):
        steps = ParameterSteps(batch_size=(1, 2))
        result = select_configuration(
            context,
            StubPredictor(),
            performance_model,
            gamma_requirement=1.01,
            steps=steps,
        )
        assert result.config.batch_size <= 2


class TestRequiredProducers:
    def test_full_load_needs_one(self):
        assert required_producers(ProducerConfig(polling_interval_s=0.0), GAME_TRAFFIC) == 1

    def test_polling_scales_with_rate(self):
        config = ProducerConfig(polling_interval_s=0.15)
        # game traffic: 20 msg/s * 0.15 s = 3 producers
        assert required_producers(config, GAME_TRAFFIC) == 3


class TestConfigurationPlan:
    def make_plan(self):
        plan = ConfigurationPlan(interval_s=60.0)
        plan.entries.append(
            ConfigPlanEntry(0.0, ProducerConfig(batch_size=2), 1, 0.9)
        )
        plan.entries.append(
            ConfigPlanEntry(
                60.0,
                ProducerConfig(
                    batch_size=6, semantics=DeliverySemantics.AT_MOST_ONCE
                ),
                2,
                0.8,
            )
        )
        return plan

    def test_at_selects_interval(self):
        plan = self.make_plan()
        assert plan.at(10.0).config.batch_size == 2
        assert plan.at(61.0).config.batch_size == 6
        assert plan.at(1e9).producers == 2

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationPlan(interval_s=60.0).at(0.0)

    def test_save_load_round_trip(self, tmp_path):
        plan = self.make_plan()
        path = tmp_path / "dynamic_conf.json"
        plan.save(path)
        loaded = ConfigurationPlan.load(path)
        assert loaded.interval_s == 60.0
        assert loaded.at(70.0).config.semantics is DeliverySemantics.AT_MOST_ONCE
        assert loaded.at(70.0).config.batch_size == 6


class TestController:
    def test_generate_plan_one_entry_per_interval(self, performance_model):
        trace = NetworkTrace(interval_s=10, points=[
            TracePoint(t * 10.0, 0.05, 0.1) for t in range(12)
        ])
        controller = DynamicConfigurationController(
            StubPredictor(),
            performance_model,
            weights=KpiWeights.of(WEB_ACCESS_LOGS.kpi_weights),
            gamma_requirement=0.9,
            reconfig_interval_s=60.0,
        )
        plan = controller.generate_plan(trace, WEB_ACCESS_LOGS)
        assert len(plan.entries) == 2  # 120 s trace / 60 s interval

    def test_plan_adapts_to_loss_bursts(self, performance_model):
        points = [TracePoint(0.0, 0.02, 0.0), TracePoint(60.0, 0.05, 0.25)]
        trace = NetworkTrace(interval_s=60, points=points)
        controller = DynamicConfigurationController(
            StubPredictor(),
            performance_model,
            weights=KpiWeights(0.1, 0.1, 0.7, 0.1),
            gamma_requirement=0.93,
            reconfig_interval_s=60.0,
        )
        plan = controller.generate_plan(trace, WEB_ACCESS_LOGS)
        assert plan.entries[1].config.batch_size > plan.entries[0].config.batch_size

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            DynamicConfigurationController(StubPredictor(), reconfig_interval_s=0.0)
