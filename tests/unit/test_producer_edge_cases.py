"""Edge-case unit tests for the producer pipeline internals."""


from repro.kafka import (
    HardwareProfile,
    KafkaCluster,
    KafkaProducer,
    ProducerConfig,
    ProducerRecord,
)
from repro.network import ConstantLatency, Link, ReliableChannel
from repro.simulation import RngRegistry, Simulator


def make(config=None, hardware=None, capacity=1e6, delay=0.001, seed=9):
    sim = Simulator()
    rng = RngRegistry(seed)
    cluster = KafkaCluster(sim)
    topic = cluster.create_topic("t", partitions=3)
    link = Link(sim, rng.stream("link"), capacity_bps=capacity,
                latency=ConstantLatency(delay))
    channel = ReliableChannel(sim, link)
    producer = KafkaProducer(sim, cluster, channel, topic,
                             config=config, hardware=hardware)
    return sim, cluster, topic, producer


class TestInFlightByteWindow:
    def test_large_requests_limited_by_socket_buffer(self):
        """With 3 KB of socket buffer, two 1.2 KB requests saturate it."""
        hardware = HardwareProfile(socket_buffer_bytes=3000)
        config = ProducerConfig(message_timeout_s=30.0, max_in_flight=15)
        sim, _, _, producer = make(config, hardware, capacity=2000.0)
        for _ in range(6):
            producer.offer(ProducerRecord(payload_bytes=1000))
        sim.run(until=0.5)
        assert producer._in_flight_bytes <= hardware.socket_buffer_bytes + 1300
        producer.finish_input()
        sim.run()
        assert producer.stats.acknowledged == 6
        assert producer._in_flight_bytes == 0

    def test_byte_charge_released_on_completion(self):
        sim, _, _, producer = make(ProducerConfig(message_timeout_s=5.0))
        producer.offer(ProducerRecord(payload_bytes=500))
        producer.finish_input()
        sim.run()
        assert producer._in_flight_bytes == 0

    def test_small_requests_limited_by_request_window(self):
        config = ProducerConfig(message_timeout_s=30.0, max_in_flight=2)
        sim, _, _, producer = make(config, capacity=500.0)
        for _ in range(8):
            producer.offer(ProducerRecord(payload_bytes=50))
        sim.run(until=0.1)
        assert producer._tokens.in_use <= 2
        producer.finish_input()
        sim.run()


class TestExpiryLookahead:
    def test_batches_dispatch_full_under_backlog(self):
        """The lookahead drops doomed heads so batches stay full."""
        config = ProducerConfig(batch_size=4, message_timeout_s=1.0, linger_s=0.5)
        sim, _, _, producer = make(config, capacity=4000.0)
        for _ in range(80):
            producer.offer(ProducerRecord(payload_bytes=300))
        producer.finish_input()
        sim.run()
        stats = producer.stats
        if stats.requests_sent:
            sent_messages = stats.acknowledged + stats.expired_after_send + stats.perceived_lost
            assert sent_messages / stats.requests_sent > 3.0


class TestRetryPath:
    def test_transport_failure_triggers_retry_and_recovery(self):
        from repro.network import NetworkFault, FaultInjector

        config = ProducerConfig(
            message_timeout_s=20.0, request_timeout_s=0.5, max_retries=10
        )
        sim, cluster, topic, producer = make(config, capacity=5e4, seed=13)
        # Heavy loss delays responses past the request timeout; the
        # generous T_o lets the retries eventually win.
        link = producer._channel._link
        injector = FaultInjector(sim, link)
        injector.inject(NetworkFault(loss_rate=0.5))
        sim.schedule(120.0, injector.clear)
        keys = []
        for _ in range(30):
            record = ProducerRecord(payload_bytes=100)
            keys.append(record.key)
            producer.offer(record)
        producer.finish_input()
        sim.run()
        assert producer.stats.request_retries > 0
        counts = topic.key_counts()
        assert len(set(keys) & set(counts)) >= 25  # most recovered

    def test_retries_capped_by_max_retries(self):
        config = ProducerConfig(
            message_timeout_s=60.0, request_timeout_s=0.2, max_retries=2,
            retry_backoff_s=0.01,
        )
        sim, _, _, producer = make(config, capacity=20.0, seed=17)
        producer.offer(ProducerRecord(payload_bytes=1500))
        producer.finish_input()
        sim.run(until=120.0)
        assert producer.stats.request_retries <= 2


class TestSweepLifecycle:
    def test_idle_producer_does_not_keep_simulator_alive(self):
        sim, _, _, producer = make()
        producer.offer(ProducerRecord(payload_bytes=100))
        producer.finish_input()
        sim.run()  # must terminate (self-suspending sweep)
        assert producer.done.triggered
        assert sim.pending_events == 0

    def test_sweep_rearms_on_new_offers(self):
        config = ProducerConfig(message_timeout_s=0.3)
        sim, _, _, producer = make(config, capacity=10.0)
        producer.offer(ProducerRecord(payload_bytes=2000))
        sim.run(until=2.0)
        # Expired via sweep even though nothing else was scheduled.
        assert producer.stats.expired_in_queue + producer.stats.expired_after_send >= 0
        producer.finish_input()
        sim.run(until=30.0)


class TestJitterScenario:
    def test_scenario_jitter_wired_into_fault(self):
        from repro.testbed import Experiment, Scenario

        scenario = Scenario(
            message_count=50, network_delay_s=0.05, jitter_s=0.02,
            arrival_rate=5.0, seed=3,
        )
        experiment = Experiment(scenario)
        captured = []
        original = experiment.injector.inject
        experiment.injector.inject = lambda fault: (captured.append(fault), original(fault))
        experiment.run()
        assert captured
        assert captured[0].jitter_s == 0.02
        assert captured[0].delay_s == 0.05


class TestWeightDecay:
    def test_weight_decay_shrinks_weights(self):
        import numpy as np
        from repro.ann import build_mlp

        x = np.random.default_rng(0).normal(size=(64, 3))
        y = np.random.default_rng(1).uniform(0, 1, size=(64, 1))
        plain = build_mlp(3, 1, hidden=(16,), seed=4)
        decayed = build_mlp(3, 1, hidden=(16,), seed=4)
        plain.fit(x, y, epochs=50)
        decayed.fit(x, y, epochs=50, weight_decay=0.05)
        plain_norm = sum(np.abs(p.value).sum() for p in plain.parameters())
        decayed_norm = sum(np.abs(p.value).sum() for p in decayed.parameters())
        assert decayed_norm < plain_norm
