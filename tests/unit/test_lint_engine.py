"""Suppression, baseline and discovery semantics of the lint engine."""

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, finding_fingerprint, lint_paths, lint_source
from repro.lint.engine import discover_files

BAD_JSON = "import json\n\ndef dump(p):\n    return json.dumps(p)\n"


class TestSuppressions:
    def test_inline_allow_suppresses_the_finding(self):
        source = (
            "import json\n"
            "def dump(p):\n"
            "    return json.dumps(p)  # repro: allow[REPRO105]\n"
        )
        result = lint_source(source, module="repro.chaos.fake")
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["REPRO105"]
        assert result.suppressed[0].suppressed is True

    def test_allow_on_the_line_above_suppresses(self):
        source = (
            "import json\n"
            "def dump(p):\n"
            "    # repro: allow[REPRO105] - key order cannot matter here\n"
            "    return json.dumps(p)\n"
        )
        result = lint_source(source, module="repro.chaos.fake")
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_allow_for_a_different_rule_does_not_suppress(self):
        source = (
            "import json\n"
            "def dump(p):\n"
            "    return json.dumps(p)  # repro: allow[REPRO104]\n"
        )
        result = lint_source(source, module="repro.chaos.fake")
        assert [f.rule for f in result.findings] == ["REPRO105"]

    def test_wildcard_allow_suppresses_everything_on_the_line(self):
        source = (
            "import json\n"
            "def dump(p):\n"
            "    return json.dumps(p)  # repro: allow[*]\n"
        )
        result = lint_source(source, module="repro.chaos.fake")
        assert result.findings == []

    def test_multiple_ids_in_one_directive(self):
        source = (
            "import json\n"
            "def dump(p):\n"
            "    return json.dumps(p)  # repro: allow[REPRO104, REPRO105]\n"
        )
        result = lint_source(source, module="repro.chaos.fake")
        assert result.findings == []

    def test_non_comment_line_above_does_not_suppress(self):
        source = (
            "import json\n"
            "ok = 1  # repro: allow[REPRO105]\n"
            "bad = json.dumps({})\n"
        )
        result = lint_source(source, module="repro.chaos.fake")
        assert [f.rule for f in result.findings] == ["REPRO105"]


class TestBaseline:
    def make_findings(self, source="import json\nx = json.dumps({})\n"):
        return lint_source(source, path="mod.py", module="repro.chaos.fake")

    def test_roundtrip_through_disk(self, tmp_path):
        findings = self.make_findings().findings
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert len(loaded) == 1

    def test_baselined_findings_are_split_out(self):
        findings = self.make_findings().findings
        baseline = Baseline.from_findings(findings)
        new, baselined = baseline.split(findings)
        assert new == []
        assert len(baselined) == 1
        assert baselined[0].baselined is True

    def test_changed_line_resurfaces_the_finding(self):
        baseline = Baseline.from_findings(self.make_findings().findings)
        changed = self.make_findings(
            "import json\nx = json.dumps({'a': 1})\n"
        ).findings
        new, baselined = baseline.split(changed)
        assert len(new) == 1
        assert baselined == []

    def test_line_number_drift_stays_baselined(self):
        baseline = Baseline.from_findings(self.make_findings().findings)
        shifted = self.make_findings(
            "import json\n\n\n# moved down\nx = json.dumps({})\n"
        ).findings
        new, baselined = baseline.split(shifted)
        assert new == []
        assert len(baselined) == 1

    def test_second_occurrence_of_a_baselined_pattern_gates(self):
        baseline = Baseline.from_findings(self.make_findings().findings)
        doubled = self.make_findings(
            "import json\nx = json.dumps({})\ny = json.dumps({})\n"
        ).findings
        new, baselined = baseline.split(doubled)
        assert len(baselined) == 1
        assert len(new) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        # repro: allow[REPRO105] - throwaway fixture; only the version field is read
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_fingerprint_ignores_line_numbers(self):
        [finding] = self.make_findings().findings
        [shifted] = self.make_findings(
            "import json\n\n\nx = json.dumps({})\n"
        ).findings
        assert finding.line != shifted.line
        assert finding_fingerprint(finding) == finding_fingerprint(shifted)
        assert finding_fingerprint(finding).startswith("REPRO105:mod.py:")


class TestDiscovery:
    def test_discovery_is_sorted_and_excludes_fixture_dirs(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        nested = tmp_path / "pkg" / "lint_fixtures"
        nested.mkdir(parents=True)
        (nested / "bad.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "c.py").write_text("x = 1\n")
        files = discover_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_single_file_path_is_accepted(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text(BAD_JSON)
        result = lint_paths([target])
        assert result.files_scanned == 1

    def test_results_are_deterministically_ordered(self, tmp_path):
        for name in ("zz.py", "aa.py"):
            (tmp_path / name).write_text(BAD_JSON)
        result = lint_paths([tmp_path])
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)

    def test_module_name_derivation_uses_src_layout(self):
        from repro.lint.engine import module_name_for

        assert (
            module_name_for(Path("src/repro/kafka/producer.py"))
            == "repro.kafka.producer"
        )
        assert module_name_for(Path("src/repro/lint/__init__.py")) == "repro.lint"
        assert module_name_for(Path("tests/unit/test_x.py")) == "test_x"
