"""Unit tests for the conservation laws and the trace replay checker.

The acceptance-critical test here is the seeded fault injection at the
bottom: a real experiment trace is mutilated (one transition record
dropped, one edited) and the checker must fail — proving the invariants
actually constrain the trace rather than vacuously passing.
"""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.observability.invariants import (
    InvariantViolation,
    conservation_violations,
    replay_census,
    trace_violations,
    validate_metrics_document,
    verify_manifest,
    verify_trace,
)
from repro.observability.trace import EventKind, trace_digest
from repro.testbed import Scenario, TelemetryConfig
from repro.testbed.experiment import Experiment


def make_manifest(**overrides):
    """A minimal, internally consistent manifest (10 produced, 1 lost)."""
    base = {
        "produced": 10,
        "delivered_unique": 9,
        "lost": 1,
        "duplicated": 1,
        "persisted_but_unacked": 0,
        "unresolved": 0,
        "case_counts": {"case1": 7, "case2": 1, "case4": 1, "case5": 1},
        "heap": {"ok": True},
        "trace_complete": False,
    }
    base.update(overrides)
    return base


class TestConservation:
    def test_consistent_manifest_has_no_violations(self):
        assert conservation_violations(make_manifest()) == []
        verify_manifest(make_manifest())  # no raise

    def test_census_must_be_exhaustive(self):
        manifest = make_manifest(produced=11)
        violations = conservation_violations(manifest)
        assert any("census not exhaustive" in v for v in violations)

    def test_reconciliation_must_partition_keys(self):
        manifest = make_manifest(lost=2)
        violations = conservation_violations(manifest)
        assert any("reconciliation not a partition" in v for v in violations)

    def test_case5_must_equal_duplicated(self):
        manifest = make_manifest(duplicated=0)
        violations = conservation_violations(manifest)
        assert any("duplicate accounting diverged" in v for v in violations)

    def test_heap_drift_is_a_violation(self):
        manifest = make_manifest(heap={"ok": False, "live": -2})
        violations = conservation_violations(manifest)
        assert any("event-heap bookkeeping drifted" in v for v in violations)

    def test_verify_manifest_raises_with_all_breaches(self):
        manifest = make_manifest(produced=11, duplicated=0)
        with pytest.raises(InvariantViolation) as excinfo:
            verify_manifest(manifest)
        assert len(excinfo.value.violations) >= 2

    def test_unresolved_messages_balance_the_loss_law(self):
        manifest = make_manifest(
            case_counts={"case1": 7, "case2": 1, "case4": 1},
            duplicated=0,
            unresolved=1,
            delivered_unique=9,
            lost=1,
            persisted_but_unacked=1,
        )
        assert conservation_violations(manifest) == []


def transition(key, edge, source, target, t=0.0):
    return {
        "kind": EventKind.TRANSITION,
        "t": t,
        "key": key,
        "edge": edge,
        "from": source,
        "to": target,
    }


class TestReplay:
    def test_replay_rebuilds_the_census(self):
        events = [
            transition(1, "I", "ready", "delivered", 0.1),
            transition(2, "II", "ready", "lost", 0.2),
            transition(2, "IV", "lost", "delivered", 0.3),
        ]
        census, machines, problems = replay_census(events)
        assert problems == []
        assert census == {"case1": 1, "case4": 1}
        assert set(machines) == {1, 2}

    def test_replay_flags_illegal_sequences(self):
        events = [
            transition(1, "I", "ready", "delivered", 0.1),
            transition(1, "I", "delivered", "delivered", 0.2),  # illegal
        ]
        _, _, problems = replay_census(events)
        assert any("illegal replay" in p for p in problems)

    def test_replay_flags_from_to_mismatches(self):
        events = [transition(1, "I", "lost", "lost", 0.1)]
        _, _, problems = replay_census(events)
        assert any("recorded from=" in p for p in problems)
        assert any("recorded to=" in p for p in problems)

    def test_trace_times_must_be_monotonic(self):
        events = [
            transition(1, "I", "ready", "delivered", 1.0),
            transition(2, "II", "ready", "lost", 0.5),
        ]
        manifest = make_manifest(trace_complete=False)
        violations = trace_violations(events, manifest)
        assert violations == ["trace times are not monotonically non-decreasing"]

    def test_verify_trace_requires_a_manifest(self):
        with pytest.raises(InvariantViolation):
            verify_trace([], None)


class TestSeededFaultInjection:
    """Acceptance: the checker must fail when the trace is mutilated."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        scenario = Scenario(
            message_count=150,
            message_bytes=150,
            loss_rate=0.12,
            seed=77,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_LEAST_ONCE,
                message_timeout_s=2.0,
                request_timeout_s=0.8,
            ),
        )
        experiment = Experiment(scenario, telemetry=TelemetryConfig())
        experiment.run()
        telemetry = experiment.telemetry
        return list(telemetry.tracer.records()), dict(telemetry.manifest)

    def test_pristine_trace_passes(self, traced_run):
        events, manifest = traced_run
        verify_trace(events, manifest)  # no raise

    def test_dropped_transition_record_is_detected(self, traced_run):
        events, manifest = traced_run
        index = next(
            i for i, r in enumerate(events) if r["kind"] == EventKind.TRANSITION
        )
        mutilated = events[:index] + events[index + 1 :]
        with pytest.raises(InvariantViolation) as excinfo:
            verify_trace(mutilated, manifest)
        text = "\n".join(excinfo.value.violations)
        assert "trace has" in text  # event count mismatch
        assert "digest mismatch" in text

    def test_edited_transition_record_is_detected(self, traced_run):
        events, manifest = traced_run
        index = next(
            i
            for i, r in enumerate(events)
            if r["kind"] == EventKind.TRANSITION and r["edge"] == "I"
        )
        edited = [dict(r) for r in events]
        edited[index]["edge"] = "II"  # flip a success into a failure
        with pytest.raises(InvariantViolation) as excinfo:
            verify_trace(edited, manifest)
        text = "\n".join(excinfo.value.violations)
        assert "digest mismatch" in text

    def test_doctored_census_is_detected(self, traced_run):
        events, manifest = traced_run
        doctored = dict(manifest)
        cases = dict(doctored["case_counts"])
        assert cases.get("case1", 0) > 0
        cases["case1"] -= 1
        cases["case2"] = cases.get("case2", 0) + 1
        doctored["case_counts"] = cases
        with pytest.raises(InvariantViolation) as excinfo:
            verify_trace(events, doctored)
        text = "\n".join(excinfo.value.violations)
        assert "replayed census" in text

    def test_recomputed_digest_matches_manifest(self, traced_run):
        events, manifest = traced_run
        assert trace_digest(events) == manifest["trace_digest"]
        assert len(events) == manifest["trace_events"]


class TestMetricsDocumentSchema:
    def test_rejects_non_objects(self):
        assert validate_metrics_document([]) == ["document is not a JSON object"]
        problems = validate_metrics_document({})
        assert "missing 'manifest' object" in problems
        assert "missing 'metrics' object" in problems

    def test_flags_missing_fields_and_bad_metrics(self):
        doc = {
            "manifest": {"seed": "not-an-int", "case_counts": {"case9": -1}},
            "metrics": {"good": {"type": "counter", "value": 1}, "bad": {}},
        }
        problems = validate_metrics_document(doc)
        assert any("seed" in p and "type" in p for p in problems)
        assert any("case9" in p for p in problems)
        assert any("'bad'" in p for p in problems)
        assert not any("'good'" in p for p in problems)
