"""Unit tests for the Kafka producer pipeline."""

import pytest

from repro.kafka import (
    DeliverySemantics,
    KafkaCluster,
    KafkaProducer,
    ProducerConfig,
    ProducerListener,
    ProducerRecord,
)
from repro.network import ConstantLatency, Link, ReliableChannel
from repro.simulation import RngRegistry, Simulator


class RecordingListener(ProducerListener):
    def __init__(self):
        self.events = []

    def on_ingest(self, record):
        self.events.append(("ingest", record.key))

    def on_expired(self, record, after_send):
        self.events.append(("expired", record.key, after_send))

    def on_acknowledged(self, record, rtt_s):
        self.events.append(("acked", record.key))

    def on_send_attempt(self, record, attempt):
        self.events.append(("send", record.key, attempt))

    def on_perceived_lost(self, record):
        self.events.append(("lost", record.key))


def make_producer(config=None, hardware=None, listener=None, capacity=1e6):
    sim = Simulator()
    rng = RngRegistry(9)
    cluster = KafkaCluster(sim)
    topic = cluster.create_topic("t", partitions=3)
    link = Link(sim, rng.stream("link"), capacity_bps=capacity,
                latency=ConstantLatency(0.001))
    channel = ReliableChannel(sim, link)
    producer = KafkaProducer(
        sim, cluster, channel, topic,
        config=config, hardware=hardware, listener=listener,
    )
    return sim, cluster, topic, producer


def offer_n(sim, producer, count, payload=100, spacing=0.01):
    keys = []

    def emit(i=0):
        if i >= count:
            producer.finish_input()
            return
        record = ProducerRecord(payload_bytes=payload)
        keys.append(record.key)
        producer.offer(record)
        sim.schedule(spacing, emit, i + 1)

    emit()
    return keys


def test_clean_at_least_once_delivers_everything():
    sim, _, topic, producer = make_producer()
    keys = offer_n(sim, producer, 20)
    sim.run()
    assert producer.done.triggered
    assert producer.stats.acknowledged == 20
    assert sorted(topic.key_counts()) == sorted(keys)


def test_at_most_once_fire_and_forget_resolves_at_send():
    config = ProducerConfig(semantics=DeliverySemantics.AT_MOST_ONCE)
    sim, _, topic, producer = make_producer(config)
    offer_n(sim, producer, 10)
    sim.run()
    assert producer.stats.fire_and_forget == 10
    assert producer.stats.acknowledged == 0
    assert topic.total_messages() == 10


def test_batching_groups_messages_per_request():
    config = ProducerConfig(batch_size=5, linger_s=0.5)
    sim, _, topic, producer = make_producer(config)
    offer_n(sim, producer, 20, spacing=0.001)
    sim.run()
    assert producer.stats.requests_sent == 4
    assert topic.total_messages() == 20


def test_linger_flushes_partial_batch():
    config = ProducerConfig(batch_size=10, linger_s=0.05)
    sim, _, topic, producer = make_producer(config)
    record = ProducerRecord(payload_bytes=100)
    producer.offer(record)
    sim.run(until=1.0)
    assert topic.total_messages() == 1
    producer.finish_input()
    sim.run()
    assert producer.done.triggered


def test_finish_input_flushes_incomplete_batch_immediately():
    config = ProducerConfig(batch_size=10, linger_s=30.0)
    sim, _, topic, producer = make_producer(config)
    producer.offer(ProducerRecord(payload_bytes=100))
    producer.finish_input()
    sim.run()
    assert topic.total_messages() == 1


def test_queue_expiry_drops_stale_records():
    # Zero-capacity-ish link: nothing can be sent, so records expire.
    config = ProducerConfig(message_timeout_s=0.2)
    listener = RecordingListener()
    sim, _, _, producer = make_producer(config, listener=listener, capacity=10.0)
    offer_n(sim, producer, 5, spacing=0.0)
    sim.run(until=30.0)
    expired = [event for event in listener.events if event[0] == "expired"]
    assert len(expired) >= 3
    assert producer.stats.expired_in_queue + producer.stats.expired_after_send >= 3


def test_queue_capacity_drops_overflow():
    config = ProducerConfig(queue_capacity=2)
    sim, _, _, producer = make_producer(config, capacity=10.0)
    accepted = [producer.offer(ProducerRecord(payload_bytes=100)) for _ in range(6)]
    assert accepted.count(False) >= 3
    assert producer.stats.queue_dropped >= 3


def test_ingest_time_stamped_on_offer():
    sim, _, _, producer = make_producer()
    sim.schedule(2.0, lambda: None)
    sim.run()
    record = ProducerRecord(payload_bytes=50)
    producer.offer(record)
    assert record.ingest_time == 2.0
    producer.finish_input()
    sim.run()


def test_done_signal_waits_for_outstanding():
    sim, _, _, producer = make_producer()
    producer.offer(ProducerRecord(payload_bytes=100))
    producer.finish_input()
    assert not producer.done.triggered
    sim.run()
    assert producer.done.triggered


def test_done_with_no_input():
    sim, _, _, producer = make_producer()
    producer.finish_input()
    sim.run()
    assert producer.done.triggered


def test_offer_after_close_raises():
    sim, _, _, producer = make_producer()
    producer.close()
    with pytest.raises(RuntimeError):
        producer.offer(ProducerRecord(payload_bytes=100))


def test_exactly_once_deduplicates_broker_side():
    config = ProducerConfig(semantics=DeliverySemantics.EXACTLY_ONCE)
    sim, _, topic, producer = make_producer(config)
    keys = offer_n(sim, producer, 15)
    sim.run()
    counts = topic.key_counts()
    assert all(count == 1 for count in counts.values())
    assert sorted(counts) == sorted(keys)


def test_listener_sees_full_lifecycle():
    listener = RecordingListener()
    sim, _, _, producer = make_producer(listener=listener)
    offer_n(sim, producer, 3)
    sim.run()
    kinds = [event[0] for event in listener.events]
    assert kinds.count("ingest") == 3
    assert kinds.count("send") == 3
    assert kinds.count("acked") == 3


def test_stats_resolved_accounting():
    sim, _, _, producer = make_producer()
    offer_n(sim, producer, 8)
    sim.run()
    assert producer.stats.resolved == 8
    assert producer.outstanding == 0
