"""Unit tests for fault injection and network traces."""

import numpy as np
import pytest

from repro.network import (
    BernoulliLoss,
    FaultInjector,
    GilbertElliottLoss,
    GilbertElliottRateProcess,
    Link,
    NetworkFault,
    NetworkTrace,
    NoLoss,
    TracePoint,
    generate_paper_trace,
)
from repro.simulation import Simulator


@pytest.fixture
def wiring():
    sim = Simulator()
    link = Link(sim, np.random.default_rng(1))
    return sim, link, FaultInjector(sim, link)


class TestNetworkFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkFault(delay_s=-1)
        with pytest.raises(ValueError):
            NetworkFault(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkFault(burst_length=0.5)

    def test_build_loss_bernoulli(self):
        assert isinstance(NetworkFault(loss_rate=0.1).build_loss(), BernoulliLoss)

    def test_build_loss_zero_is_noloss(self):
        assert isinstance(NetworkFault().build_loss(), NoLoss)

    def test_build_loss_bursty_matches_rate(self):
        model = NetworkFault(loss_rate=0.15, bursty=True, burst_length=5).build_loss()
        assert isinstance(model, GilbertElliottLoss)
        assert model.expected_loss_rate() == pytest.approx(0.15, rel=0.05)

    def test_build_latency_constant(self):
        model = NetworkFault(delay_s=0.1).build_latency()
        assert model.mean() == pytest.approx(0.1)


class TestFaultInjector:
    def test_inject_installs_treatments(self, wiring):
        _, link, injector = wiring
        injector.inject(NetworkFault(delay_s=0.2, loss_rate=0.1))
        assert link.forward.latency.mean() == pytest.approx(0.2)
        assert link.forward.loss.expected_loss_rate() == pytest.approx(0.1)
        assert link.reverse.loss.expected_loss_rate() == pytest.approx(0.1)

    def test_directions_get_independent_loss_instances(self, wiring):
        _, link, injector = wiring
        injector.inject(NetworkFault(loss_rate=0.1, bursty=True))
        assert link.forward.loss is not link.reverse.loss

    def test_clear_restores_baseline(self, wiring):
        _, link, injector = wiring
        baseline_latency = link.forward.latency
        injector.inject(NetworkFault(delay_s=0.5))
        injector.clear()
        assert link.forward.latency is baseline_latency
        assert injector.active_fault is None

    def test_scheduled_injection_fires(self, wiring):
        sim, link, injector = wiring
        injector.inject_at(5.0, NetworkFault(delay_s=0.3))
        injector.clear_at(10.0)
        sim.run(until=6.0)
        assert link.forward.latency.mean() == pytest.approx(0.3)
        sim.run(until=11.0)
        assert injector.active_fault is None

    def test_broker_callbacks(self, wiring):
        sim, _, injector = wiring
        events = []
        injector.on_broker_availability(lambda broker, up: events.append((broker, up)))
        injector.crash_broker_at(1.0, "broker-0")
        injector.restore_broker_at(2.0, "broker-0")
        sim.run()
        assert events == [("broker-0", False), ("broker-0", True)]


class TestTrace:
    def test_generate_paper_trace_shape(self):
        rng = np.random.default_rng(2)
        trace = generate_paper_trace(rng, duration_s=300, interval_s=10)
        assert len(trace) == 30
        assert trace.duration_s == 300
        assert all(p.delay_s >= 0.02 for p in trace)
        assert all(0.0 <= p.loss_rate <= 0.95 for p in trace)

    def test_trace_at_clamps(self):
        trace = NetworkTrace(interval_s=10, points=[
            TracePoint(0, 0.01, 0.0), TracePoint(10, 0.02, 0.1),
        ])
        assert trace.at(-5).delay_s == 0.01
        assert trace.at(15).loss_rate == 0.1
        assert trace.at(1e9).loss_rate == 0.1

    def test_empty_trace_at_raises(self):
        with pytest.raises(ValueError):
            NetworkTrace(interval_s=10).at(0)

    def test_trace_means(self):
        trace = NetworkTrace(interval_s=1, points=[
            TracePoint(0, 0.1, 0.2), TracePoint(1, 0.3, 0.0),
        ])
        assert trace.mean_delay_s() == pytest.approx(0.2)
        assert trace.mean_loss_rate() == pytest.approx(0.1)

    def test_schedule_on_replays_trace(self):
        sim = Simulator()
        link = Link(sim, np.random.default_rng(1))
        injector = FaultInjector(sim, link)
        trace = NetworkTrace(interval_s=5, points=[
            TracePoint(0, 0.05, 0.0), TracePoint(5, 0.25, 0.3),
        ])
        trace.schedule_on(injector)
        sim.run(until=1.0)
        assert link.forward.latency.mean() == pytest.approx(0.05)
        sim.run(until=6.0)
        assert link.forward.latency.mean() == pytest.approx(0.25)
        assert link.forward.loss.expected_loss_rate() == pytest.approx(0.3)

    def test_rate_process_bounds(self):
        rng = np.random.default_rng(3)
        process = GilbertElliottRateProcess(good_rate=0.01, bad_rate=0.2)
        rates = [process.sample(rng) for _ in range(500)]
        assert all(0.0 <= rate <= 0.95 for rate in rates)
        assert max(rates) > 0.1  # bad episodes happen

    def test_generate_trace_validation(self):
        with pytest.raises(ValueError):
            generate_paper_trace(np.random.default_rng(0), duration_s=0)
