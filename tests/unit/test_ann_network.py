"""Unit tests for the sequential network, data utilities and persistence."""

import numpy as np
import pytest

from repro.ann import (
    MinMaxScaler,
    PAPER_HIDDEN_LAYERS,
    SGD,
    Sequential,
    StandardScaler,
    build_mlp,
    iterate_minibatches,
    load_model,
    mae,
    max_error,
    r2_score,
    rmse,
    save_model,
    train_test_split,
)


class TestBuildMlp:
    def test_paper_topology(self):
        net = build_mlp(6, 2)
        widths = [(l.in_features, l.out_features) for l in net.layers]
        assert widths == [(6, 200), (200, 200), (200, 200), (200, 64), (64, 2)]
        assert PAPER_HIDDEN_LAYERS == (200, 200, 200, 64)

    def test_sigmoid_output_bounds_predictions(self):
        net = build_mlp(3, 2, hidden=(8,), seed=1)
        out = net.predict(np.random.default_rng(0).normal(size=(20, 3)) * 100)
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_seed_reproducibility(self):
        a = build_mlp(3, 1, hidden=(8,), seed=5)
        b = build_mlp(3, 1, hidden=(8,), seed=5)
        x = np.ones((2, 3))
        assert np.array_equal(a.predict(x), b.predict(x))

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            build_mlp(0, 1)


class TestFit:
    def test_learns_linear_function(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(300, 2))
        y = (0.25 + 0.25 * x[:, 0] - 0.25 * x[:, 1])[:, None]
        net = build_mlp(2, 1, hidden=(16,), seed=0)
        net.fit(x, y, epochs=200, optimizer=SGD(0.5), rng=rng)
        assert mae(net.predict(x), y) < 0.03

    def test_history_records_epochs(self):
        x = np.zeros((10, 1))
        y = np.full((10, 1), 0.5)
        net = build_mlp(1, 1, hidden=(4,))
        history = net.fit(x, y, epochs=5)
        assert history.epochs_run == 5
        assert len(history.train_loss) == 5

    def test_early_stopping_with_patience(self):
        x = np.zeros((20, 1))
        y = np.full((20, 1), 0.5)
        net = build_mlp(1, 1, hidden=(4,))
        history = net.fit(
            x, y, epochs=500, validation=(x, y), patience=3
        )
        assert history.stopped_early
        assert history.epochs_run < 500

    def test_patience_requires_validation(self):
        net = build_mlp(1, 1, hidden=(4,))
        with pytest.raises(ValueError):
            net.fit(np.zeros((5, 1)), np.zeros((5, 1)), patience=3)

    def test_shape_validation(self):
        net = build_mlp(2, 1, hidden=(4,))
        with pytest.raises(ValueError):
            net.fit(np.zeros((5, 2)), np.zeros((4, 1)))

    def test_evaluate_returns_loss(self):
        net = build_mlp(1, 1, hidden=(4,))
        value = net.evaluate(np.zeros((5, 1)), np.full((5, 1), 0.5), loss="mse")
        assert value >= 0.0


class TestDataUtilities:
    def test_split_sizes(self):
        x = np.arange(100).reshape(50, 2)
        y = np.arange(50).reshape(50, 1)
        x_train, x_test, y_train, y_test = train_test_split(x, y, 0.2)
        assert x_train.shape[0] == 40
        assert x_test.shape[0] == 10
        assert y_train.shape[0] == 40

    def test_split_partitions_rows(self):
        x = np.arange(20).reshape(10, 2)
        y = np.arange(10).reshape(10, 1)
        x_train, x_test, _, _ = train_test_split(x, y, 0.3)
        combined = np.vstack([x_train, x_test])
        assert sorted(map(tuple, combined)) == sorted(map(tuple, x))

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros((5, 1)), 1.5)
        with pytest.raises(ValueError):
            train_test_split(np.zeros((1, 1)), np.zeros((1, 1)), 0.2)

    def test_minibatches_cover_all_rows(self):
        x = np.arange(10).reshape(10, 1)
        y = x.copy()
        seen = []
        for xb, _ in iterate_minibatches(x, y, 3):
            seen.extend(xb[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_minibatch_shuffling(self):
        x = np.arange(50).reshape(50, 1)
        rng = np.random.default_rng(1)
        first_batch = next(iter(iterate_minibatches(x, x, 10, rng)))[0]
        assert not np.array_equal(first_batch[:, 0], np.arange(10))


class TestScalers:
    def test_standard_scaler_zero_mean_unit_std(self):
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(500, 2))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_round_trip(self):
        x = np.random.default_rng(1).normal(size=(20, 3))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_standard_scaler_constant_column(self):
        x = np.ones((10, 1))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled, 0.0)

    def test_minmax_scaler_range(self):
        x = np.random.default_rng(2).uniform(-5, 5, size=(100, 2))
        scaled = MinMaxScaler().fit_transform(x)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_scaler_dict_round_trip(self):
        x = np.random.default_rng(3).normal(size=(10, 2))
        scaler = StandardScaler().fit(x)
        restored = StandardScaler.from_dict(scaler.to_dict())
        assert np.allclose(restored.transform(x), scaler.transform(x))

    def test_unfitted_scaler_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 1)))


class TestMetrics:
    def test_mae_rmse_max_error(self):
        predicted = np.array([[1.0], [3.0]])
        target = np.array([[0.0], [0.0]])
        assert mae(predicted, target) == pytest.approx(2.0)
        assert rmse(predicted, target) == pytest.approx(np.sqrt(5.0))
        assert max_error(predicted, target) == pytest.approx(3.0)

    def test_r2_perfect_and_mean(self):
        target = np.array([[1.0], [2.0], [3.0]])
        assert r2_score(target, target) == pytest.approx(1.0)
        mean_prediction = np.full_like(target, 2.0)
        assert r2_score(mean_prediction, target) == pytest.approx(0.0)


class TestSerialisation:
    def test_round_trip_preserves_predictions(self, tmp_path):
        net = build_mlp(3, 2, hidden=(8, 4), seed=9)
        save_model(net, tmp_path / "model")
        restored = load_model(tmp_path / "model")
        x = np.random.default_rng(0).normal(size=(5, 3))
        assert np.allclose(restored.predict(x), net.predict(x))

    def test_architecture_preserved(self, tmp_path):
        net = build_mlp(3, 1, hidden=(8,), hidden_activation="tanh", seed=0)
        save_model(net, tmp_path / "model")
        restored = load_model(tmp_path / "model")
        assert restored.layers[0].activation.name == "tanh"

    def test_sequential_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])
