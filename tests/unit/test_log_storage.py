"""Unit tests for logs, partitions and topics."""

import pytest

from repro.kafka import KeyHashPartitioner, Partition, PartitionLog, RoundRobinPartitioner, Topic
from repro.kafka.log import LogSegment


class TestPartitionLog:
    def test_offsets_are_contiguous(self):
        log = PartitionLog()
        assert [log.append(k, 10, 0.0) for k in (5, 6, 7)] == [0, 1, 2]
        assert log.next_offset == 3

    def test_segment_rolling(self):
        log = PartitionLog(segment_max_entries=2)
        for key in range(5):
            log.append(key, 10, 0.0)
        assert log.segment_count == 3
        assert [entry.offset for entry in log] == list(range(5))

    def test_read_from_offset(self):
        log = PartitionLog(segment_max_entries=2)
        for key in range(6):
            log.append(key, 10, 0.0)
        entries = log.read(start_offset=3)
        assert [entry.key for entry in entries] == [3, 4, 5]

    def test_read_with_max_entries(self):
        log = PartitionLog()
        for key in range(6):
            log.append(key, 10, 0.0)
        assert len(log.read(0, max_entries=4)) == 4

    def test_duplicate_appends_are_kept(self):
        """Non-idempotent brokers persist retries again — Case 5's substrate."""
        log = PartitionLog()
        log.append(1, 10, 0.0)
        log.append(1, 10, 0.1)
        assert log.key_counts() == {1: 2}

    def test_idempotent_sequence_fencing(self):
        log = PartitionLog()
        assert log.append(1, 10, 0.0, producer_id=9, sequence=0) == 0
        assert log.append(1, 10, 0.1, producer_id=9, sequence=0) is None
        assert log.append(2, 10, 0.2, producer_id=9, sequence=1) == 1
        assert log.key_counts() == {1: 1, 2: 1}

    def test_idempotence_is_per_producer(self):
        log = PartitionLog()
        log.append(1, 10, 0.0, producer_id=1, sequence=0)
        assert log.append(2, 10, 0.0, producer_id=2, sequence=0) is not None

    def test_segment_append_offset_check(self):
        segment = LogSegment(base_offset=10)
        from repro.kafka.log import LogEntry
        with pytest.raises(ValueError):
            segment.append(LogEntry(offset=12, key=1, payload_bytes=1, timestamp=0.0))


class TestPartition:
    def make(self):
        return Partition("t", 0, "broker-0", ["broker-0", "broker-1", "broker-2"])

    def test_append_replicates_to_followers(self):
        partition = self.make()
        partition.append(1, 10, 0.0)
        assert partition.high_watermark == 1
        for log in partition.replica_logs.values():
            assert len(log) == 1

    def test_leader_is_not_its_own_follower(self):
        partition = self.make()
        assert "broker-0" not in partition.replica_logs
        assert set(partition.replica_logs) == {"broker-1", "broker-2"}

    def test_name(self):
        assert self.make().name == "t-0"

    def test_failover_promotes_follower(self):
        partition = self.make()
        partition.append(1, 10, 0.0)
        partition.elect_new_leader("broker-1")
        assert partition.leader_broker_id == "broker-1"
        assert len(partition.leader_log) == 1
        assert "broker-0" in partition.replica_logs

    def test_failover_to_non_follower_rejected(self):
        with pytest.raises(ValueError):
            self.make().elect_new_leader("broker-9")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Partition("t", -1, "broker-0")


class TestTopic:
    def make(self, partitioner=None):
        partitions = [Partition("t", i, f"broker-{i % 2}") for i in range(3)]
        return Topic("t", partitions, partitioner)

    def test_requires_partitions(self):
        with pytest.raises(ValueError):
            Topic("t", [])

    def test_key_hash_partitioner_is_deterministic(self):
        topic = self.make(KeyHashPartitioner())
        assert topic.partition_for(42) is topic.partition_for(42)

    def test_round_robin_cycles(self):
        partitioner = RoundRobinPartitioner()
        indices = [partitioner.select(0, 3) for _ in range(6)]
        assert indices == [0, 1, 2, 0, 1, 2]

    def test_key_counts_merge_partitions(self):
        topic = self.make()
        topic.partitions[0].append(1, 10, 0.0)
        topic.partitions[1].append(1, 10, 0.0)
        topic.partitions[2].append(2, 10, 0.0)
        assert topic.key_counts() == {1: 2, 2: 1}

    def test_total_messages(self):
        topic = self.make()
        topic.partitions[0].append(1, 10, 0.0)
        topic.partitions[0].append(2, 10, 0.0)
        assert topic.total_messages() == 2

    def test_read_all_concatenates(self):
        topic = self.make()
        topic.partitions[2].append(9, 10, 0.0)
        assert [entry.key for entry in topic.read_all()] == [9]


class TestRetention:
    def filled(self, entries=10, per_segment=3):
        log = PartitionLog(segment_max_entries=per_segment)
        for key in range(entries):
            log.append(key, 100, timestamp=float(key))
        return log

    def test_retain_by_bytes_drops_oldest_segments(self):
        log = self.filled(entries=9, per_segment=3)  # 3 segments * 300 B
        removed = log.retain(max_bytes=600)
        assert removed == 3
        assert log.start_offset == 3
        assert [entry.key for entry in log] == list(range(3, 9))

    def test_retain_by_time(self):
        log = self.filled(entries=9, per_segment=3)
        removed = log.retain(min_timestamp=4.0)
        assert removed == 3  # first segment's newest timestamp is 2.0
        assert log.start_offset == 3

    def test_active_segment_never_deleted(self):
        log = self.filled(entries=2, per_segment=10)
        assert log.retain(max_bytes=0) == 0
        assert len(log) == 2

    def test_offsets_stay_stable_after_retention(self):
        log = self.filled(entries=9, per_segment=3)
        log.retain(max_bytes=300)
        offset = log.append(99, 100, timestamp=9.0)
        assert offset == 9  # appends continue from the log end offset

    def test_read_after_retention_skips_deleted(self):
        log = self.filled(entries=9, per_segment=3)
        log.retain(max_bytes=300)
        entries = log.read(start_offset=0)
        assert entries[0].offset == log.start_offset

    def test_no_retention_criteria_is_noop(self):
        log = self.filled()
        assert log.retain() == 0
