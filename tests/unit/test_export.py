"""Unit tests for series/result export."""

import csv
import json

import pytest

from repro.analysis import FigureSeries
from repro.analysis.export import results_to_json, series_to_csv, series_to_json
from repro.testbed import ExperimentResult


@pytest.fixture
def series():
    s = FigureSeries("Fig", "x", "y", x=[1.0, 2.0])
    s.add_curve("a", [0.1, 0.2])
    s.add_curve("b", [0.3, 0.4])
    return s


def test_series_to_csv_round_trip(series, tmp_path):
    path = series_to_csv(series, tmp_path / "fig.csv")
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["x", "a", "b"]
    assert rows[1] == ["1", "0.1000", "0.3000"]
    assert len(rows) == 3


def test_series_to_json_structure(series, tmp_path):
    path = series_to_json(series, tmp_path / "fig.json")
    payload = json.loads(path.read_text())
    assert payload["title"] == "Fig"
    assert payload["curves"]["b"] == [0.3, 0.4]
    assert payload["x"] == [1.0, 2.0]


def test_results_to_json(tmp_path):
    result = ExperimentResult(
        message_bytes=200, timeliness_s=None, network_delay_s=0.0, loss_rate=0.1,
        semantics="at_least_once", batch_size=1, polling_interval_s=0.0,
        message_timeout_s=1.5, produced=100, p_loss=0.2, p_duplicate=0.0,
    )
    path = results_to_json([result], tmp_path / "rows.json")
    payload = json.loads(path.read_text())
    assert payload[0]["p_loss"] == 0.2
    assert payload[0]["message_bytes"] == 200


def test_export_creates_parent_dirs(series, tmp_path):
    path = series_to_csv(series, tmp_path / "deep" / "dir" / "fig.csv")
    assert path.exists()
