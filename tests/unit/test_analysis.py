"""Unit tests for figure series, tables and ASCII plots."""

import pytest

from repro.analysis import FigureSeries, ascii_plot, comparison_table, render_table


def make_series():
    series = FigureSeries("Fig X", "M (bytes)", "P_l", x=[100, 200, 300])
    series.add_curve("at-most-once", [0.8, 0.3, 0.1])
    series.add_curve("at-least-once", [0.9, 0.4, 0.05])
    return series


class TestFigureSeries:
    def test_add_curve_length_checked(self):
        series = FigureSeries("t", "x", "y", x=[1, 2])
        with pytest.raises(ValueError):
            series.add_curve("bad", [1.0])

    def test_curve_lookup(self):
        series = make_series()
        assert series.curve("at-most-once") == [0.8, 0.3, 0.1]

    def test_crossover_interpolates(self):
        series = FigureSeries("t", "x", "y", x=[0, 10])
        series.add_curve("a", [0.0, 1.0])
        series.add_curve("b", [1.0, 0.0])
        assert series.crossover("a", "b") == pytest.approx(5.0)

    def test_crossover_none_when_parallel(self):
        series = FigureSeries("t", "x", "y", x=[0, 10])
        series.add_curve("a", [0.0, 0.1])
        series.add_curve("b", [1.0, 1.1])
        assert series.crossover("a", "b") is None

    def test_crossover_at_exact_point(self):
        series = FigureSeries("t", "x", "y", x=[0, 5, 10])
        series.add_curve("a", [0.0, 0.5, 1.0])
        series.add_curve("b", [0.5, 0.5, 0.2])
        assert series.crossover("a", "b") == pytest.approx(5.0)

    def test_to_rows_shape(self):
        rows = make_series().to_rows()
        assert rows[0] == ["M (bytes)", "at-most-once", "at-least-once"]
        assert len(rows) == 4


class TestRenderTable:
    def test_renders_header_separator(self):
        text = render_table([["a", "b"], ["1", "22"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "-+-" in lines[1]

    def test_title_prepended(self):
        text = render_table([["a"]], title="Caption")
        assert text.splitlines()[0] == "Caption"

    def test_alignment_pads_columns(self):
        text = render_table([["name", "v"], ["long-name", "1"]])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[2].index("|")

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table([])


class TestComparisonTable:
    def test_verdict_column(self):
        text = comparison_table(
            "Fig 4",
            [("crossover", "~200 B", "240 B", True), ("gap", ">20pt", "5pt", False)],
        )
        assert "OK" in text
        assert "DIVERGES" in text


class TestAsciiPlot:
    def test_plot_contains_markers_and_legend(self):
        text = ascii_plot(make_series(), width=40, height=8)
        assert "*" in text
        assert "at-most-once" in text

    def test_plot_size_validation(self):
        with pytest.raises(ValueError):
            ascii_plot(make_series(), width=4, height=2)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot(FigureSeries("t", "x", "y"), width=40, height=8)

    def test_constant_series_plots(self):
        series = FigureSeries("t", "x", "y", x=[1, 2])
        series.add_curve("flat", [0.5, 0.5])
        assert "flat" in ascii_plot(series, width=30, height=6)
