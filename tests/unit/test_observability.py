"""Unit tests for the observability primitives: metrics, traces, telemetry."""

import json

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.telemetry import (
    MANIFEST_VERSION,
    RunTelemetry,
    TelemetryConfig,
)
from repro.observability.trace import (
    EventKind,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
    encode_record,
    load_trace_file,
    trace_digest,
)


class TestMetrics:
    def test_counter_only_goes_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_latest(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0

    def test_histogram_buckets_and_quantiles(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.min == 0.05 and hist.max == 50.0
        assert hist.mean == pytest.approx(56.05 / 5)
        exported = hist.as_dict()
        # Cumulative, Prometheus-style, with a trailing +Inf bucket.
        assert exported["buckets"] == {"0.1": 1, "1.0": 3, "10.0": 4, "+Inf": 5}
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 50.0
        assert Histogram("empty").quantile(0.5) is None

    def test_registry_get_or_create_and_type_guard(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.counter("a").inc(2)
        assert registry.value("a") == 2
        assert registry.value("missing", default=-1) == -1
        with pytest.raises(TypeError):
            registry.gauge("a")
        assert "a" in registry and len(registry) == 1

    def test_registry_digest_is_content_addressed(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        # Same content, different insertion order → same digest.
        left.counter("x").inc(1)
        left.gauge("y").set(2.0)
        right.gauge("y").set(2.0)
        right.counter("x").inc(1)
        assert left.digest() == right.digest()
        right.counter("x").inc(1)
        assert left.digest() != right.digest()


class TestTracer:
    def test_digest_matches_streaming_and_batch(self):
        tracer = Tracer(RingBufferSink(10))
        tracer.emit(EventKind.SEND, 0.5, key=1, attempt=0)
        tracer.emit(EventKind.ACK, 0.9, key=1, rtt_s=0.4)
        assert tracer.count == 2
        assert tracer.digest() == trace_digest(tracer.records())

    def test_digest_is_order_sensitive(self):
        records = [
            {"kind": EventKind.SEND, "t": 0.0, "key": 1},
            {"kind": EventKind.ACK, "t": 1.0, "key": 1},
        ]
        assert trace_digest(records) != trace_digest(list(reversed(records)))

    def test_encode_record_is_canonical(self):
        record = {"t": 1.0, "kind": "send", "key": 3}
        line = encode_record(record)
        assert line == '{"key":3,"kind":"send","t":1.0}'
        assert json.loads(line) == record

    def test_ring_buffer_wraps_and_reports_dropped(self):
        sink = RingBufferSink(3)
        tracer = Tracer(sink)
        for index in range(3):
            tracer.emit(EventKind.SEND, float(index), key=index)
        assert not sink.dropped  # exactly at capacity is not a wrap
        tracer.emit(EventKind.SEND, 3.0, key=3)
        assert sink.dropped
        assert [r["key"] for r in sink.records] == [1, 2, 3]
        assert tracer.count == 4  # count covers evicted records too

    def test_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "trace.jsonl"  # parent dir is created
        tracer = Tracer(JsonlFileSink(path))
        tracer.emit(EventKind.TRANSITION, 0.1, key=7, edge="I")
        tracer.emit(EventKind.FAULT, 0.2, action="clear")
        digest = tracer.digest()
        tracer.close()
        events, manifest = load_trace_file(path)
        assert manifest is None
        assert [e["kind"] for e in events] == ["transition", "fault"]
        assert trace_digest(events) == digest

    def test_load_trace_file_rejects_junk(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"send","t":0}\nnot json\n')
        with pytest.raises(ValueError):
            load_trace_file(path)
        path.write_text('{"no_kind":1}\n')
        with pytest.raises(ValueError):
            load_trace_file(path)


class TestTelemetryConfig:
    def test_for_scenario_fills_placeholders(self):
        config = TelemetryConfig(trace_path="runs/{seed}-{index}.jsonl")
        specialised = config.for_scenario(3, 42)
        assert specialised.trace_path == "runs/42-3.jsonl"

    def test_for_scenario_suffixes_when_no_placeholder(self):
        config = TelemetryConfig(trace_path="trace.jsonl")
        assert config.for_scenario(0, 1).trace_path == "trace.jsonl"
        assert config.for_scenario(2, 1).trace_path == "trace.jsonl.2"

    def test_for_scenario_without_path_is_identity(self):
        config = TelemetryConfig()
        assert config.for_scenario(5, 9) is config


class TestRunTelemetry:
    def _manifest_kwargs(self, **overrides):
        base = dict(
            scenario_fingerprint="f" * 16,
            seed=1,
            salt="s",
            produced=2,
            delivered_unique=2,
            lost=0,
            duplicated=0,
            duplicate_copies=0,
            persisted_but_unacked=0,
            case_counts={"case1": 2},
            unresolved=0,
            events_processed=10,
            sim_duration_s=1.0,
            heap={"ok": True},
            wall_time_s=0.01,
        )
        base.update(overrides)
        return base

    def test_manifest_embeds_metrics_and_trace_identity(self):
        telemetry = RunTelemetry(TelemetryConfig(ring_capacity=16))
        telemetry.metrics.counter("producer.ingested").inc(2)
        telemetry.tracer.emit(EventKind.SEND, 0.0, key=1)
        manifest = telemetry.build_manifest(**self._manifest_kwargs())
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["trace_events"] == 1
        assert manifest["trace_digest"] == telemetry.tracer.digest()
        assert manifest["trace_complete"] is True
        assert manifest["metrics"]["producer.ingested"]["value"] == 2
        assert manifest["metrics_digest"] == telemetry.metrics.digest()

    def test_manifest_marks_wrapped_ring_incomplete(self):
        telemetry = RunTelemetry(TelemetryConfig(ring_capacity=1))
        telemetry.tracer.emit(EventKind.SEND, 0.0, key=1)
        telemetry.tracer.emit(EventKind.SEND, 0.1, key=2)
        manifest = telemetry.build_manifest(**self._manifest_kwargs())
        assert manifest["trace_complete"] is False
        assert manifest["trace_events"] == 2

    def test_finalize_appends_manifest_line_to_file_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = RunTelemetry(TelemetryConfig(trace_path=str(path)))
        telemetry.tracer.emit(EventKind.SEND, 0.0, key=1)
        telemetry.build_manifest(**self._manifest_kwargs())
        telemetry.finalize()
        events, manifest = load_trace_file(path)
        assert len(events) == 1
        assert manifest is not None
        assert manifest["kind"] == "manifest"
        # The manifest line is excluded from the digest it embeds.
        assert manifest["trace_digest"] == trace_digest(events)

    def test_disabled_trace_keeps_metrics_only(self):
        telemetry = RunTelemetry(TelemetryConfig(trace=False))
        assert telemetry.tracer is None
        manifest = telemetry.build_manifest(**self._manifest_kwargs())
        assert manifest["trace_events"] == 0
        assert manifest["trace_digest"] is None
        telemetry.finalize()  # no sink: must be a no-op
