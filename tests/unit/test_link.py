"""Unit tests for the finite-capacity link."""

import numpy as np
import pytest

from repro.network import (
    BernoulliLoss,
    ConstantLatency,
    FORWARD,
    Link,
    Packet,
    PacketKind,
    REVERSE,
)
from repro.simulation import Simulator


def make_packet(size=1000):
    return Packet(kind=PacketKind.DATA, size_bytes=size, message_id=0)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def test_packet_arrives_after_tx_plus_propagation(sim, rng):
    link = Link(sim, rng, capacity_bps=1000.0, latency=ConstantLatency(0.5))
    arrivals = []
    link.send(make_packet(size=100), FORWARD, lambda p: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(0.1 + 0.5)]


def test_fifo_serialisation_queues_packets(sim, rng):
    link = Link(
        sim, rng, capacity_bps=1000.0, latency=ConstantLatency(0.0), max_queue_delay_s=10.0
    )
    arrivals = []
    for _ in range(3):
        link.send(make_packet(size=500), FORWARD, lambda p: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(0.5), pytest.approx(1.0), pytest.approx(1.5)]


def test_shared_capacity_couples_directions(sim, rng):
    link = Link(
        sim, rng, capacity_bps=1000.0, latency=ConstantLatency(0.0), max_queue_delay_s=10.0
    )
    arrivals = []
    link.send(make_packet(size=500), FORWARD, lambda p: arrivals.append(("fwd", sim.now)))
    link.send(make_packet(size=500), REVERSE, lambda p: arrivals.append(("rev", sim.now)))
    sim.run()
    # The reverse packet had to wait for the forward transmission.
    assert arrivals == [("fwd", pytest.approx(0.5)), ("rev", pytest.approx(1.0))]


def test_duplex_mode_decouples_directions(sim, rng):
    link = Link(sim, rng, capacity_bps=1000.0, latency=ConstantLatency(0.0), duplex=True)
    arrivals = []
    link.send(make_packet(size=500), FORWARD, lambda p: arrivals.append(("fwd", sim.now)))
    link.send(make_packet(size=500), REVERSE, lambda p: arrivals.append(("rev", sim.now)))
    sim.run()
    assert sorted(t for _, t in arrivals) == [pytest.approx(0.5), pytest.approx(0.5)]


def test_tail_drop_beyond_queue_bound(sim, rng):
    link = Link(
        sim, rng, capacity_bps=1000.0, latency=ConstantLatency(0.0), max_queue_delay_s=1.0
    )
    accepted = [
        link.send(make_packet(size=600), FORWARD, lambda p: None) for _ in range(5)
    ]
    # 600B at 1000B/s = 0.6s each; the third packet sees 1.2s backlog > 1.0s.
    assert accepted == [True, True, False, False, False]
    assert link.forward.stats.dropped_queue == 3


def test_lossy_link_drops_without_arrival(sim, rng):
    link = Link(sim, rng, capacity_bps=1e6, loss=BernoulliLoss(0.999))
    # Independent loss model instances per direction are installed by the
    # constructor caller; here both share, which is fine for Bernoulli.
    arrivals = []
    for _ in range(50):
        link.send(make_packet(), FORWARD, lambda p: arrivals.append(1))
    sim.run()
    assert len(arrivals) < 5
    assert link.forward.stats.dropped_loss > 40


def test_lost_packet_still_consumes_capacity(sim, rng):
    link = Link(sim, rng, capacity_bps=1000.0, loss=BernoulliLoss(0.999))
    link.send(make_packet(size=1000), FORWARD, lambda p: None)
    assert link.forward.backlog_s == pytest.approx(1.0)


def test_stats_count_sent_and_delivered(sim, rng):
    link = Link(sim, rng, capacity_bps=1e6)
    for _ in range(4):
        link.send(make_packet(size=100), FORWARD, lambda p: None)
    sim.run()
    assert link.forward.stats.sent == 4
    assert link.forward.stats.delivered == 4
    assert link.forward.stats.bytes_sent == 400


def test_direction_lookup(sim, rng):
    link = Link(sim, rng)
    assert link.direction(FORWARD) is link.forward
    assert link.direction(REVERSE) is link.reverse
    with pytest.raises(ValueError):
        link.direction("sideways")


def test_capacity_validation(sim, rng):
    with pytest.raises(ValueError):
        Link(sim, rng, capacity_bps=0.0)


def test_utilisation_hint_saturates_at_one(sim, rng):
    link = Link(sim, rng, capacity_bps=100.0, max_queue_delay_s=0.5)
    link.send(make_packet(size=100), FORWARD, lambda p: None)
    assert 0.0 < link.forward.utilisation_hint() <= 1.0
