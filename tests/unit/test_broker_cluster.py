"""Unit tests for brokers and the cluster."""

import pytest

from repro.kafka import (
    Broker,
    BrokerConfig,
    KafkaCluster,
    Partition,
    ProduceRequest,
    ProducerRecord,
)
from repro.simulation import Simulator


def make_request(partition, records=None, acks=True):
    records = records or [ProducerRecord(payload_bytes=100)]
    for record in records:
        record.ingest_time = 0.0
    return ProduceRequest(
        records=records, partition=partition, require_acks=acks, wire_bytes=300
    )


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def partition():
    return Partition("t", 0, "broker-0", ["broker-0", "broker-1"])


class TestBroker:
    def test_produce_appends_and_responds(self, sim, partition):
        broker = Broker(sim, "broker-0")
        responses = []
        broker.handle_produce(make_request(partition), responses.append)
        sim.run()
        assert len(partition.leader_log) == 1
        assert len(responses) == 1
        assert responses[0].base_offset == 0
        assert responses[0].appended == 1

    def test_service_time_includes_processing_and_append(self, sim, partition):
        config = BrokerConfig(processing_time_s=0.01, append_bytes_per_s=1e4,
                              replication_factor=1)
        broker = Broker(sim, "broker-0", config)
        request = make_request(partition)
        assert broker.service_time(request) == pytest.approx(0.01 + 100 / 1e4)

    def test_acks_all_extra_latency(self, sim, partition):
        config = BrokerConfig(replication_factor=3, acks_all_extra_s=0.02)
        broker = Broker(sim, "broker-0", config)
        with_acks = broker.service_time(make_request(partition, acks=True))
        without = broker.service_time(make_request(partition, acks=False))
        assert with_acks - without == pytest.approx(0.02)

    def test_requests_queue_fifo(self, sim, partition):
        config = BrokerConfig(processing_time_s=0.1, replication_factor=1)
        broker = Broker(sim, "broker-0", config)
        finish_times = []
        for _ in range(3):
            broker.handle_produce(
                make_request(partition), lambda r: finish_times.append(sim.now)
            )
        sim.run()
        assert len(finish_times) == 3
        assert finish_times == sorted(finish_times)
        assert finish_times[-1] >= 0.3

    def test_crashed_broker_drops_requests(self, sim, partition):
        broker = Broker(sim, "broker-0")
        broker.crash()
        responses = []
        broker.handle_produce(make_request(partition), responses.append)
        sim.run()
        assert responses == []
        assert broker.requests_dropped == 1
        assert len(partition.leader_log) == 0

    def test_crash_during_processing_drops(self, sim, partition):
        broker = Broker(sim, "broker-0", BrokerConfig(processing_time_s=1.0))
        responses = []
        broker.handle_produce(make_request(partition), responses.append)
        sim.schedule(0.5, broker.crash)
        sim.run()
        assert responses == []

    def test_append_listener_fires_per_record(self, sim, partition):
        broker = Broker(sim, "broker-0")
        appended = []
        broker.add_append_listener(lambda record, part, offset: appended.append(offset))
        records = [ProducerRecord(payload_bytes=10) for _ in range(3)]
        broker.handle_produce(make_request(partition, records))
        sim.run()
        assert appended == [0, 1, 2]

    def test_restore_resets_busy(self, sim):
        broker = Broker(sim, "broker-0")
        broker.crash()
        broker.restore()
        assert broker.available


class TestCluster:
    def test_create_topic_spreads_leaders(self, sim):
        cluster = KafkaCluster(sim, broker_count=3)
        topic = cluster.create_topic("t", partitions=6)
        leaders = {p.leader_broker_id for p in topic.partitions}
        assert leaders == {"broker-0", "broker-1", "broker-2"}

    def test_replication_factor_caps_at_broker_count(self, sim):
        cluster = KafkaCluster(sim, broker_count=2)
        topic = cluster.create_topic("t", partitions=1)
        partition = topic.partitions[0]
        assert len(partition.replica_logs) == 1  # leader + one follower

    def test_duplicate_topic_rejected(self, sim):
        cluster = KafkaCluster(sim)
        cluster.create_topic("t")
        with pytest.raises(ValueError):
            cluster.create_topic("t")

    def test_topic_lookup(self, sim):
        cluster = KafkaCluster(sim)
        topic = cluster.create_topic("t")
        assert cluster.topic("t") is topic
        with pytest.raises(KeyError):
            cluster.topic("missing")

    def test_produce_routes_to_leader(self, sim):
        cluster = KafkaCluster(sim)
        topic = cluster.create_topic("t", partitions=1)
        partition = topic.partitions[0]
        cluster.handle_produce(make_request(partition))
        sim.run()
        leader = cluster.leader_for(partition)
        assert leader.requests_handled == 1

    def test_crash_triggers_leader_election(self, sim):
        cluster = KafkaCluster(sim, broker_count=3)
        topic = cluster.create_topic("t", partitions=3)
        victims = [p for p in topic.partitions if p.leader_broker_id == "broker-0"]
        cluster.set_broker_availability("broker-0", False)
        for partition in victims:
            assert partition.leader_broker_id != "broker-0"

    def test_restore_brings_broker_back(self, sim):
        cluster = KafkaCluster(sim)
        cluster.create_topic("t")
        cluster.set_broker_availability("broker-1", False)
        cluster.set_broker_availability("broker-1", True)
        assert cluster.brokers["broker-1"].available

    def test_unknown_broker_rejected(self, sim):
        cluster = KafkaCluster(sim)
        with pytest.raises(KeyError):
            cluster.set_broker_availability("broker-9", False)

    def test_append_listener_attaches_to_all_brokers(self, sim):
        cluster = KafkaCluster(sim)
        topic = cluster.create_topic("t", partitions=3)
        seen = []
        cluster.add_append_listener(lambda record, part, offset: seen.append(part.index))
        for partition in topic.partitions:
            cluster.handle_produce(make_request(partition))
        sim.run()
        assert sorted(seen) == [0, 1, 2]
