"""Batched configuration search: must be bit-identical to the scalar walk.

`select_configuration(batched=True)` replays the exact scalar decision
sequence against γ values computed by grouped forward passes, so the
chosen configuration, γ, step count and trace must match the scalar path
bit for bit on every grid point — the batching is invisible except in
cost.
"""

import numpy as np
import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.kpi import SelectionContext, select_configuration
from repro.kpi.selection import evaluate_config, evaluate_configs, ParameterSteps
from repro.models import ReliabilityPredictor, TrainingSettings
from repro.performance import ProducerPerformanceModel

from .test_predictor_batch import SEMANTICS, training_rows


@pytest.fixture(scope="module")
def predictor():
    rows = []
    for offset, semantics in enumerate(SEMANTICS[:2]):
        rows.extend(training_rows(semantics, "normal", count=20, seed=offset))
        rows.extend(training_rows(semantics, "abnormal", count=20, seed=5 + offset))
    built = ReliabilityPredictor()
    built.fit(rows, TrainingSettings(hidden=(16,), epochs=30, patience=None))
    return built


def contexts(count=9, seed=31):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(count):
        if index % 2 == 0:
            delay, loss = float(rng.uniform(0.0, 0.15)), 0.0
        else:
            delay = float(rng.uniform(0.2, 0.45))
            loss = float(rng.uniform(0.02, 0.25))
        out.append(
            SelectionContext(
                message_bytes=int(rng.choice([100, 200, 500])),
                timeliness_s=float(rng.choice([5.0, 10.0])),
                network_delay_s=delay,
                loss_rate=loss,
            )
        )
    return out


class TestEvaluateConfigs:
    def test_entries_match_scalar_evaluate_config(self, predictor):
        model = ProducerPerformanceModel()
        steps = ParameterSteps()
        context = contexts(1)[0]
        # A slice of the full grid crossing semantics and batch size.
        configs = [
            ProducerConfig(semantics=semantics, batch_size=batch)
            for semantics in steps.semantics
            for batch in steps.batch_size
        ]
        gammas = evaluate_configs(configs, context, predictor, model)
        for config, gamma in zip(configs, gammas):
            assert gamma == evaluate_config(config, context, predictor, model)

    def test_uncovered_config_yields_none(self, predictor):
        model = ProducerPerformanceModel()
        context = contexts(1)[0]
        uncovered = ProducerConfig(semantics=DeliverySemantics.EXACTLY_ONCE)
        assert evaluate_configs([uncovered], context, predictor, model) == [None]
        with pytest.raises(KeyError):
            evaluate_config(uncovered, context, predictor, model)


class TestBatchedSearchIdentity:
    @pytest.mark.parametrize("gamma_requirement", [0.5, 0.8, 0.99])
    def test_batched_search_bit_identical_to_scalar(
        self, predictor, gamma_requirement
    ):
        model = ProducerPerformanceModel()
        for context in contexts():
            batched = select_configuration(
                context, predictor, model,
                gamma_requirement=gamma_requirement, batched=True,
            )
            scalar = select_configuration(
                context, predictor, model,
                gamma_requirement=gamma_requirement, batched=False,
            )
            assert batched.config == scalar.config, context
            assert batched.gamma == scalar.gamma
            assert batched.met_requirement == scalar.met_requirement
            assert batched.steps_taken == scalar.steps_taken
            assert batched.trace == scalar.trace

    def test_scalar_only_stub_predictor_still_works(self):
        class StubPredictor:
            def predict_vector(self, vector):
                from repro.models import ReliabilityEstimate

                if vector.semantics is DeliverySemantics.EXACTLY_ONCE:
                    raise KeyError("no submodel")
                return ReliabilityEstimate(
                    p_loss=min(1.0, vector.loss_rate * 3.0 / vector.batch_size),
                    p_duplicate=0.0,
                )

        model = ProducerPerformanceModel()
        context = SelectionContext(
            message_bytes=200, timeliness_s=10.0,
            network_delay_s=0.3, loss_rate=0.1,
        )
        batched = select_configuration(
            context, StubPredictor(), model, gamma_requirement=0.9, batched=True
        )
        scalar = select_configuration(
            context, StubPredictor(), model, gamma_requirement=0.9, batched=False
        )
        assert batched.config == scalar.config
        assert batched.gamma == scalar.gamma
        assert batched.trace == scalar.trace
