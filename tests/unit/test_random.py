"""Unit tests for the seeded RNG registry."""

import pytest

from repro.simulation import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("loss")
    b = RngRegistry(42).stream("loss")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    registry = RngRegistry(42)
    loss = [registry.stream("loss").random() for _ in range(5)]
    delay = [RngRegistry(42).stream("delay").random() for _ in range(5)]
    assert loss != delay


def test_stream_identity_is_order_independent():
    first = RngRegistry(7)
    _ = first.stream("a")
    value_b_first = first.stream("b").random()
    second = RngRegistry(7)
    value_b_only = second.stream("b").random()
    assert value_b_first == value_b_only


def test_stream_is_cached():
    registry = RngRegistry(1)
    assert registry.stream("x") is registry.stream("x")


def test_fork_changes_streams_deterministically():
    base = RngRegistry(3)
    fork_a = base.fork(1)
    fork_b = RngRegistry(3).fork(1)
    fork_c = base.fork(2)
    assert fork_a.stream("s").random() == fork_b.stream("s").random()
    assert fork_a.master_seed == fork_b.master_seed
    assert fork_a.master_seed != fork_c.master_seed


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(-1)
