"""Unit tests for multi-segment transport behaviour."""

import numpy as np

from repro.network import (
    BernoulliLoss,
    ConstantLatency,
    FORWARD,
    Link,
    ReliableChannel,
    SendFailure,
    TransportConfig,
)
from repro.simulation import Simulator


def make(loss=0.0, capacity=1e6, config=None, seed=23):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    link = Link(
        sim, rng, capacity_bps=capacity, latency=ConstantLatency(0.001),
        loss=BernoulliLoss(loss) if loss else None, max_queue_delay_s=100.0,
    )
    return sim, link, ReliableChannel(sim, link, config)


def test_segment_count_matches_mtu():
    sim, link, channel = make()
    channel.send(FORWARD, 10_000)
    sim.run()
    payload_per_segment = channel.config.mtu - 66
    expected = -(-10_000 // payload_per_segment)
    assert channel.stats(FORWARD).segments_sent == expected


def test_partial_arrival_never_delivers():
    """If one segment exhausts retries, the message must not surface."""
    config = TransportConfig(max_retransmits=0)
    sim, link, channel = make(loss=0.5, config=config, seed=3)
    received = []
    failed = []
    channel.set_receiver(FORWARD, lambda payload, size: received.append(payload))
    for index in range(30):
        channel.send(
            FORWARD, 4000, payload=index,
            on_failed=lambda payload, reason: failed.append(payload),
        )
    sim.run()
    # Every message resolves: fully arrived, sender-failed, or both (the
    # ack-loss race: receiver complete, sender unaware — Kafka's Case 5
    # substrate).  What never happens is a message in neither set, or a
    # duplicate receiver-side delivery.
    assert set(received) | set(failed) == set(range(30))
    assert len(received) == len(set(received))


def test_multi_segment_deadline_covers_all_segments():
    sim, link, channel = make(loss=0.95, seed=5)
    outcomes = []
    channel.send(
        FORWARD, 6000, deadline=1.0,
        on_failed=lambda payload, reason: outcomes.append(reason),
    )
    sim.run()
    assert outcomes == [SendFailure.DEADLINE]
    assert sim.now >= 1.0


def test_segment_sizes_sum_to_message():
    sim, link, channel = make()
    channel.send(FORWARD, 3000)
    sim.run()
    # Wire bytes = payload + one header per segment.
    segments = channel.stats(FORWARD).segments_sent
    assert link.forward.stats.bytes_sent == 3000 + segments * 66


def test_interleaved_messages_reassemble_independently():
    sim, link, channel = make(capacity=5e4)
    received = []
    channel.set_receiver(FORWARD, lambda payload, size: received.append((payload, size)))
    channel.send(FORWARD, 4000, payload="big-a")
    channel.send(FORWARD, 100, payload="small")
    channel.send(FORWARD, 4000, payload="big-b")
    sim.run()
    assert sorted(size for _, size in received) == [100, 4000, 4000]
    assert {payload for payload, _ in received} == {"big-a", "small", "big-b"}


def test_abort_unknown_message_is_noop():
    sim, link, channel = make()
    channel.abort(FORWARD, 999_999_999)  # nothing should raise
    sim.run()
