"""Unit tests for chaos schedules: validation, builders, determinism."""

import pytest

from repro.chaos import (
    ChaosAction,
    ChaosPhase,
    ChaosSchedule,
    baseline_phase,
    blackout_phase,
    broker_flap_phase,
    compose,
    delay_spike_phase,
    flap_burst_schedule,
    loss_burst_phase,
    phase_seed,
    staged_escalation_schedule,
)
from repro.chaos.schedule import DEFAULT_BROKERS
from repro.network.faults import NetworkFault

LOSS = NetworkFault(loss_rate=0.2)


class TestChaosAction:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChaosAction(time_s=-0.1, kind="clear_fault")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown action kind"):
            ChaosAction(time_s=1.0, kind="unplug_cable")

    def test_inject_requires_fault(self):
        with pytest.raises(ValueError, match="needs a fault"):
            ChaosAction(time_s=1.0, kind="inject_fault")

    def test_broker_kinds_require_broker_id(self):
        for kind in ("crash_broker", "restore_broker"):
            with pytest.raises(ValueError, match="broker_id"):
                ChaosAction(time_s=1.0, kind=kind)


class TestChaosPhase:
    def test_actions_sorted_chronologically(self):
        phase = ChaosPhase(
            name="p",
            duration_s=5.0,
            actions=(
                ChaosAction(time_s=3.0, kind="clear_fault"),
                ChaosAction(time_s=1.0, kind="inject_fault", fault=LOSS),
            ),
        )
        assert [a.time_s for a in phase.actions] == [1.0, 3.0]

    def test_action_outside_duration_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ChaosPhase(
                name="p",
                duration_s=2.0,
                actions=(ChaosAction(time_s=2.0, kind="clear_fault"),),
            )

    def test_requires_name_and_positive_duration(self):
        with pytest.raises(ValueError):
            ChaosPhase(name="", duration_s=1.0)
        with pytest.raises(ValueError):
            ChaosPhase(name="p", duration_s=0.0)

    def test_last_recovery_tracks_restores_and_clears(self):
        phase = ChaosPhase(
            name="p",
            duration_s=6.0,
            actions=(
                ChaosAction(time_s=1.0, kind="crash_broker", broker_id="broker-0"),
                ChaosAction(time_s=2.5, kind="restore_broker", broker_id="broker-0"),
                ChaosAction(time_s=0.5, kind="inject_fault", fault=LOSS),
                ChaosAction(time_s=4.0, kind="clear_fault"),
            ),
        )
        assert phase.last_recovery_s == 4.0
        assert baseline_phase().last_recovery_s is None
        assert blackout_phase().last_recovery_s is None


class TestChaosSchedule:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            ChaosSchedule(name="empty", phases=())

    def test_duration_sums_phases(self):
        schedule = compose("s", baseline_phase(2.0), baseline_phase(3.0, name="b"))
        assert schedule.duration_s == pytest.approx(5.0)

    def test_compose_flattens_schedules(self):
        inner = compose("inner", baseline_phase(1.0), blackout_phase())
        outer = compose("outer", baseline_phase(2.0, name="warm"), inner)
        assert [p.name for p in outer.phases] == ["warm", "baseline", "blackout"]


class TestBuilders:
    def test_same_seed_same_schedule(self):
        assert flap_burst_schedule(seed=3) == flap_burst_schedule(seed=3)
        assert staged_escalation_schedule(seed=3) == staged_escalation_schedule(seed=3)

    def test_different_seed_moves_jittered_actions(self):
        a = loss_burst_phase(seed=1)
        b = loss_burst_phase(seed=2)
        assert a != b
        assert {x.kind for x in a.actions} == {x.kind for x in b.actions}

    def test_loss_burst_actions_inside_phase(self):
        for seed in range(5):
            phase = loss_burst_phase(duration_s=5.0, seed=seed)
            inject, clear = phase.actions
            assert inject.kind == "inject_fault"
            assert inject.fault.bursty
            assert clear.kind == "clear_fault"
            assert 0.0 < inject.time_s < clear.time_s < 5.0

    def test_delay_spike_count_and_bounds(self):
        phase = delay_spike_phase(duration_s=6.0, spikes=3, seed=4)
        assert len(phase.actions) == 6
        assert phase.last_recovery_s is not None
        with pytest.raises(ValueError):
            delay_spike_phase(spikes=0)

    def test_broker_flap_crashes_and_restores_every_broker(self):
        phase = broker_flap_phase(duration_s=6.0, downtime_s=2.4, seed=7)
        crashes = [a for a in phase.actions if a.kind == "crash_broker"]
        restores = [a for a in phase.actions if a.kind == "restore_broker"]
        assert {a.broker_id for a in crashes} == set(DEFAULT_BROKERS)
        assert {a.broker_id for a in restores} == set(DEFAULT_BROKERS)
        downtime = restores[0].time_s - crashes[0].time_s
        assert downtime == pytest.approx(2.4)

    def test_broker_flap_downtime_must_fit(self):
        with pytest.raises(ValueError, match="room"):
            broker_flap_phase(duration_s=2.0, downtime_s=2.4)

    def test_blackout_never_restores(self):
        phase = blackout_phase()
        assert all(a.kind == "crash_broker" for a in phase.actions)


class TestPhaseSeed:
    def test_stable_and_distinct(self):
        assert phase_seed(1, 0, "baseline") == phase_seed(1, 0, "baseline")
        assert phase_seed(1, 0, "baseline") != phase_seed(1, 1, "baseline")
        assert phase_seed(1, 0, "baseline") != phase_seed(1, 0, "blackout")
        assert phase_seed(1, 0, "baseline") != phase_seed(2, 0, "baseline")


class TestFaultValidation:
    def test_field_specific_messages(self):
        with pytest.raises(ValueError, match="delay_s"):
            NetworkFault(delay_s=-0.1)
        with pytest.raises(ValueError, match="jitter_s"):
            NetworkFault(jitter_s=-0.1)
        with pytest.raises(ValueError, match="loss_rate"):
            NetworkFault(loss_rate=1.0)
        with pytest.raises(ValueError, match="burst_length"):
            NetworkFault(burst_length=0.5)

    def test_non_finite_and_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            NetworkFault(delay_s=float("nan"))
        with pytest.raises(ValueError, match="finite"):
            NetworkFault(loss_rate=float("inf"))
        with pytest.raises(ValueError, match="number"):
            NetworkFault(delay_s="fast")

    def test_rate_process_validation(self):
        from repro.network.trace import GilbertElliottRateProcess

        with pytest.raises(ValueError, match="p_good_to_bad"):
            GilbertElliottRateProcess(p_good_to_bad=1.5)
        with pytest.raises(ValueError, match="bad_rate"):
            GilbertElliottRateProcess(good_rate=0.2, bad_rate=0.1)
        with pytest.raises(ValueError, match="rate_jitter"):
            GilbertElliottRateProcess(rate_jitter=-0.01)
