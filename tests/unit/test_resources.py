"""Unit tests for FIFO stores and token buckets."""

import pytest

from repro.simulation import FifoStore, Simulator, StoreFull, TokenBucket


def test_store_put_then_get():
    sim = Simulator()
    store = FifoStore(sim)
    store.put("a")
    signal = store.get()
    assert signal.triggered
    assert signal.value == "a"


def test_store_is_fifo():
    sim = Simulator()
    store = FifoStore(sim)
    for item in ("a", "b", "c"):
        store.put(item)
    assert [store.get().value for _ in range(3)] == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = FifoStore(sim)
    signal = store.get()
    assert not signal.triggered
    sim.schedule(1.0, store.put, "late")
    sim.run()
    assert signal.triggered
    assert signal.value == "late"


def test_bounded_store_rejects_when_full():
    sim = Simulator()
    store = FifoStore(sim, capacity=1)
    store.put("a")
    assert store.is_full
    assert store.try_put("b") is False
    with pytest.raises(StoreFull):
        store.put("b")


def test_store_put_hands_straight_to_waiting_getter():
    sim = Simulator()
    store = FifoStore(sim, capacity=1)
    signal = store.get()
    store.put("x")
    assert len(store) == 0
    sim.run()
    assert signal.value == "x"


def test_store_capacity_validation():
    with pytest.raises(ValueError):
        FifoStore(Simulator(), capacity=0)


def test_store_drain_empties_buffer():
    sim = Simulator()
    store = FifoStore(sim)
    store.put(1)
    store.put(2)
    assert store.drain() == [1, 2]
    assert len(store) == 0


def test_bucket_acquire_release_cycle():
    sim = Simulator()
    bucket = TokenBucket(sim, tokens=2)
    first = bucket.acquire()
    second = bucket.acquire()
    third = bucket.acquire()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert bucket.available == 0
    bucket.release()
    sim.run()
    assert third.triggered
    assert bucket.in_use == 2


def test_bucket_release_without_acquire_raises():
    bucket = TokenBucket(Simulator(), tokens=1)
    with pytest.raises(RuntimeError):
        bucket.release()


def test_bucket_waiters_served_fifo():
    sim = Simulator()
    bucket = TokenBucket(sim, tokens=1)
    bucket.acquire()
    order = []
    first = bucket.acquire()
    second = bucket.acquire()
    first.add_waiter(lambda _: order.append("first"))
    second.add_waiter(lambda _: order.append("second"))
    bucket.release()
    bucket.release()
    sim.run()
    assert order == ["first", "second"]


def test_bucket_requires_positive_tokens():
    with pytest.raises(ValueError):
        TokenBucket(Simulator(), tokens=0)
