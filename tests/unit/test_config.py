"""Unit tests for producer/broker configuration and the hardware profile."""

import pytest

from repro.kafka import (
    BrokerConfig,
    DEFAULT_PRODUCER_CONFIG,
    DeliverySemantics,
    HardwareProfile,
    ProducerConfig,
)


class TestProducerConfig:
    def test_defaults_are_valid(self):
        config = ProducerConfig()
        assert config.semantics is DeliverySemantics.AT_LEAST_ONCE
        assert config.batch_size == 1

    def test_with_replaces_fields(self):
        config = ProducerConfig().with_(batch_size=4, message_timeout_s=2.0)
        assert config.batch_size == 4
        assert config.message_timeout_s == 2.0
        assert ProducerConfig().batch_size == 1  # original untouched

    def test_with_parses_semantics_strings(self):
        config = ProducerConfig().with_(semantics="at_most_once")
        assert config.semantics is DeliverySemantics.AT_MOST_ONCE

    def test_effective_retries_zero_for_at_most_once(self):
        config = ProducerConfig(semantics=DeliverySemantics.AT_MOST_ONCE, max_retries=7)
        assert config.effective_retries == 0

    def test_effective_retries_for_at_least_once(self):
        config = ProducerConfig(max_retries=7)
        assert config.effective_retries == 7

    @pytest.mark.parametrize(
        "field,value",
        [
            ("batch_size", 0),
            ("polling_interval_s", -0.1),
            ("message_timeout_s", 0.0),
            ("request_timeout_s", 0.0),
            ("retry_backoff_s", -1.0),
            ("max_retries", -1),
            ("max_in_flight", 0),
            ("linger_s", -0.1),
            ("queue_capacity", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ProducerConfig(**{field: value})

    def test_default_preset_is_streaming_mode(self):
        assert DEFAULT_PRODUCER_CONFIG.batch_size == 1
        assert DEFAULT_PRODUCER_CONFIG.polling_interval_s == 0.0
        assert DEFAULT_PRODUCER_CONFIG.request_timeout_s < DEFAULT_PRODUCER_CONFIG.message_timeout_s


class TestDeliverySemantics:
    def test_parse_accepts_enum_and_string(self):
        assert DeliverySemantics.parse("at_least_once") is DeliverySemantics.AT_LEAST_ONCE
        assert (
            DeliverySemantics.parse(DeliverySemantics.EXACTLY_ONCE)
            is DeliverySemantics.EXACTLY_ONCE
        )

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            DeliverySemantics.parse("at_best_effort")

    def test_flags(self):
        assert not DeliverySemantics.AT_MOST_ONCE.waits_for_ack
        assert DeliverySemantics.AT_LEAST_ONCE.waits_for_ack
        assert not DeliverySemantics.AT_LEAST_ONCE.idempotent
        assert DeliverySemantics.EXACTLY_ONCE.idempotent
        assert not DeliverySemantics.AT_MOST_ONCE.retries_allowed


class TestHardwareProfile:
    def test_serialization_time_scales_with_bytes(self):
        hardware = HardwareProfile()
        small = hardware.serialization_time_s(100, 1)
        large = hardware.serialization_time_s(10000, 1)
        assert large > small

    def test_batch_overhead_amortised(self):
        hardware = HardwareProfile()
        per_message_single = hardware.serialization_time_s(200, 1)
        per_message_batched = hardware.serialization_time_s(2000, 10) / 10
        assert per_message_batched < per_message_single

    def test_full_load_rate_inverse_in_size(self):
        hardware = HardwareProfile()
        assert hardware.full_load_rate(100, False) > hardware.full_load_rate(400, False)

    def test_ack_overhead_slows_full_load(self):
        hardware = HardwareProfile()
        assert hardware.full_load_rate(200, True) < hardware.full_load_rate(200, False)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareProfile(io_bytes_per_s=0)
        with pytest.raises(ValueError):
            HardwareProfile(ack_overhead_factor=0.0)
        with pytest.raises(ValueError):
            HardwareProfile(source_burst_off_s=-1.0)


class TestBrokerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BrokerConfig(processing_time_s=-1)
        with pytest.raises(ValueError):
            BrokerConfig(append_bytes_per_s=0)
        with pytest.raises(ValueError):
            BrokerConfig(replication_factor=0)
