"""Broker crash/restore with requests in flight, under every semantics.

Each run executes with ``TelemetryConfig(check_invariants=True)``, so the
experiment itself raises :class:`InvariantViolation` if a crash breaks
message conservation or the per-semantics delivery rules — every call
below doubles as an invariant assertion.
"""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import Experiment, Scenario, TelemetryConfig

TELEMETRY = TelemetryConfig(trace=True, check_invariants=True)

#: High arrival rate + batching keeps requests in flight at the crash
#: instant (0.5 s into a ~7.5 s send window).
def inflight_scenario(semantics, seed=12):
    return Scenario(
        message_bytes=200,
        message_count=300,
        seed=seed,
        arrival_rate=40.0,
        config=ProducerConfig(
            semantics=semantics,
            batch_size=4,
            message_timeout_s=2.0,
            request_timeout_s=0.8,
        ),
        broker_count=3,
        partition_count=3,
    )


def run_with_flap(semantics, crash_at=0.5, restore_at=None, brokers=("broker-0",)):
    experiment = Experiment(inflight_scenario(semantics), telemetry=TELEMETRY)
    for broker_id in brokers:
        experiment.injector.crash_broker_at(crash_at, broker_id)
        if restore_at is not None:
            experiment.injector.restore_broker_at(restore_at, broker_id)
    return experiment, experiment.run()


ALL_SEMANTICS = list(DeliverySemantics)


class TestSingleBrokerFlap:
    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    def test_crash_with_inflight_requests_keeps_invariants(self, semantics):
        _, result = run_with_flap(semantics, crash_at=0.5)
        # Failover absorbs a single broker's loss; the run completing at
        # all proves the invariant checker stayed green.
        assert 0.0 <= result.p_loss < 0.5
        assert result.produced == 300

    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    def test_crash_and_restore_is_no_worse_than_crash(self, semantics):
        _, crashed = run_with_flap(semantics, crash_at=0.5)
        _, restored = run_with_flap(semantics, crash_at=0.5, restore_at=2.0)
        assert restored.p_loss <= crashed.p_loss + 0.05

    def test_exactly_once_never_duplicates_across_the_flap(self):
        _, result = run_with_flap(
            DeliverySemantics.EXACTLY_ONCE, crash_at=0.5, restore_at=2.0
        )
        assert result.p_duplicate == 0.0

    def test_at_least_once_retries_may_duplicate_but_never_lose_acked(self):
        _, result = run_with_flap(
            DeliverySemantics.AT_LEAST_ONCE, crash_at=0.5, restore_at=2.0
        )
        assert result.p_duplicate >= 0.0
        assert result.p_loss < 0.5


class TestFullOutageFlap:
    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    def test_all_brokers_flap_with_inflight_requests(self, semantics):
        brokers = ("broker-0", "broker-1", "broker-2")
        _, result = run_with_flap(
            semantics, crash_at=0.5, restore_at=1.5, brokers=brokers
        )
        # A one-second full outage against a 2 s message timeout: some
        # messages may expire, but conservation and semantics rules must
        # hold (enforced by the invariant checker) and the run recovers.
        assert 0.0 <= result.p_loss <= 1.0
        assert result.produced == 300

    def test_deep_retry_budget_beats_the_default_across_the_outage(self):
        # The degraded-mode parked configuration's shape (long message
        # timeout, deep retries) expires far fewer messages across the
        # outage than the default 2 s-timeout shape does.
        brokers = ("broker-0", "broker-1", "broker-2")
        _, default = run_with_flap(
            DeliverySemantics.AT_LEAST_ONCE,
            crash_at=0.5,
            restore_at=1.5,
            brokers=brokers,
        )
        scenario = inflight_scenario(DeliverySemantics.AT_LEAST_ONCE).with_(
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_LEAST_ONCE,
                batch_size=4,
                polling_interval_s=0.04,
                message_timeout_s=6.0,
                request_timeout_s=1.0,
                retry_backoff_s=0.1,
                max_retries=20,
            )
        )
        experiment = Experiment(scenario, telemetry=TELEMETRY)
        for broker_id in brokers:
            experiment.injector.crash_broker_at(0.5, broker_id)
            experiment.injector.restore_broker_at(1.5, broker_id)
        parked = experiment.run()
        assert parked.p_loss < default.p_loss - 0.05
