"""Parallel path integration: pool results must equal serial bit-for-bit.

The experiment is a pure function of its scenario, so fanning a grid out
over spawn-based worker processes must return exactly the rows the serial
loop measures — same P_l, P_d, timings, everything — in the same order.
"""

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import (
    ResultCache,
    Scenario,
    TelemetryConfig,
    run_experiment,
    run_many,
    sweep,
)
from repro.testbed.sweep import grid_scenarios


def small_grid():
    base = Scenario(
        message_count=250,
        seed=21,
        config=ProducerConfig(message_timeout_s=1.0),
    )
    return grid_scenarios(
        base,
        {
            "message_bytes": [100, 400],
            "loss_rate": [0.0, 0.12],
            "config.semantics": [
                DeliverySemantics.AT_MOST_ONCE,
                DeliverySemantics.AT_LEAST_ONCE,
            ],
        },
    )


def test_run_many_parallel_matches_serial_exactly():
    scenarios = small_grid()
    serial = run_many(scenarios, workers=1)
    parallel = run_many(scenarios, workers=4)
    assert len(serial) == len(parallel) == len(scenarios)
    for left, right in zip(serial, parallel):
        # ExperimentResult is a dataclass: == compares every field,
        # including float metrics, exactly.
        assert left == right


def test_trace_digest_deterministic_serial_and_parallel():
    """Same scenario + seed → identical trace digest, however it is run.

    The digest covers every structured event of the run (sends, acks,
    retransmissions, state transitions, ...), so equality here is a much
    stronger determinism statement than comparing the result rows.
    """
    scenarios = small_grid()
    telemetry = TelemetryConfig()
    serial = [run_experiment(s, telemetry=telemetry) for s in scenarios]
    parallel = run_many(scenarios, workers=4, telemetry=telemetry)
    rerun = run_many(scenarios, workers=1, telemetry=telemetry)
    for direct, pooled, again in zip(serial, parallel, rerun):
        assert direct.manifest is not None
        assert pooled.manifest is not None
        assert direct.manifest["trace_digest"] == pooled.manifest["trace_digest"]
        assert direct.manifest["trace_digest"] == again.manifest["trace_digest"]
        assert direct.manifest["trace_events"] == pooled.manifest["trace_events"]
        assert (
            direct.manifest["metrics_digest"] == pooled.manifest["metrics_digest"]
        )
    # Distinct scenarios must not collide on one digest.
    digests = {r.manifest["trace_digest"] for r in parallel}
    assert len(digests) == len(scenarios)


def test_telemetry_does_not_perturb_results():
    """Runs with telemetry on are bit-identical to uninstrumented runs."""
    scenarios = small_grid()[:4]
    plain = run_many(scenarios, workers=1)
    traced = run_many(scenarios, workers=1, telemetry=TelemetryConfig())
    for left, right in zip(plain, traced):
        assert left == right  # manifest is excluded from equality
        assert left.manifest is None
        assert right.manifest is not None


def test_sweep_workers_and_cache_match_serial(tmp_path):
    base = Scenario(message_count=200, seed=8)
    axes = {"message_bytes": [150, 300], "config.batch_size": [1, 2]}
    serial = sweep(base, axes, workers=1)
    cache = ResultCache(tmp_path, salt="t")
    warm = sweep(base, axes, workers=2, cache=cache)
    assert warm == serial
    # Second pass is served entirely from the cache, still identical.
    cache.reset_stats()
    cached = sweep(base, axes, workers=2, cache=cache)
    assert cached == serial
    assert cache.hits == len(serial)
    assert cache.misses == 0
