"""Parallel path integration: pool results must equal serial bit-for-bit.

The experiment is a pure function of its scenario, so fanning a grid out
over spawn-based worker processes must return exactly the rows the serial
loop measures — same P_l, P_d, timings, everything — in the same order.
"""

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import ResultCache, Scenario, run_many, sweep
from repro.testbed.sweep import grid_scenarios


def small_grid():
    base = Scenario(
        message_count=250,
        seed=21,
        config=ProducerConfig(message_timeout_s=1.0),
    )
    return grid_scenarios(
        base,
        {
            "message_bytes": [100, 400],
            "loss_rate": [0.0, 0.12],
            "config.semantics": [
                DeliverySemantics.AT_MOST_ONCE,
                DeliverySemantics.AT_LEAST_ONCE,
            ],
        },
    )


def test_run_many_parallel_matches_serial_exactly():
    scenarios = small_grid()
    serial = run_many(scenarios, workers=1)
    parallel = run_many(scenarios, workers=4)
    assert len(serial) == len(parallel) == len(scenarios)
    for left, right in zip(serial, parallel):
        # ExperimentResult is a dataclass: == compares every field,
        # including float metrics, exactly.
        assert left == right


def test_sweep_workers_and_cache_match_serial(tmp_path):
    base = Scenario(message_count=200, seed=8)
    axes = {"message_bytes": [150, 300], "config.batch_size": [1, 2]}
    serial = sweep(base, axes, workers=1)
    cache = ResultCache(tmp_path, salt="t")
    warm = sweep(base, axes, workers=2, cache=cache)
    assert warm == serial
    # Second pass is served entirely from the cache, still identical.
    cache.reset_stats()
    cached = sweep(base, axes, workers=2, cache=cache)
    assert cached == serial
    assert cache.hits == len(serial)
    assert cache.misses == 0
