"""End-to-end observability: every integration-style scenario must satisfy
the conservation laws, and file traces must survive an offline replay.

Running with ``TelemetryConfig(check_invariants=True)`` (the default) makes
the experiment itself raise :class:`InvariantViolation` on any breach, so
each ``run_experiment`` call below *is* the assertion; the explicit checks
on top pin the round-trip through the JSONL file format.
"""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.observability import (
    conservation_violations,
    load_trace_file,
    trace_violations,
    verify_trace,
)
from repro.testbed import Scenario, TelemetryConfig, run_experiment


def scenario_matrix():
    """A cross-section of the integration suite's shapes."""
    return [
        # Clean network, at-least-once, full load.
        Scenario(message_count=200, seed=11),
        # Heavy random loss + delay, all three semantics.
        *[
            Scenario(
                message_count=200,
                message_bytes=150,
                loss_rate=0.15,
                network_delay_s=0.05,
                seed=12,
                config=ProducerConfig(
                    semantics=semantics,
                    message_timeout_s=2.0,
                    request_timeout_s=0.8,
                ),
            )
            for semantics in DeliverySemantics
        ],
        # Bursty (Gilbert–Elliott) loss with batching.
        Scenario(
            message_count=200,
            loss_rate=0.2,
            bursty_loss=True,
            seed=13,
            config=ProducerConfig(batch_size=4, message_timeout_s=2.0),
        ),
        # Polled source with a tight timeout (expiry paths).
        Scenario(
            message_count=150,
            seed=14,
            config=ProducerConfig(
                message_timeout_s=0.4, polling_interval_s=0.05
            ),
        ),
    ]


@pytest.mark.parametrize(
    "scenario", scenario_matrix(), ids=lambda s: f"seed{s.seed}-{s.config.semantics.value}"
)
def test_invariants_hold_for_integration_scenarios(scenario):
    result = run_experiment(scenario, telemetry=TelemetryConfig())
    manifest = result.manifest
    assert manifest is not None
    # The run already verified itself; re-check explicitly so a future
    # change that silently disables in-run checking still fails here.
    assert conservation_violations(manifest) == []
    assert manifest["trace_complete"] is True
    assert manifest["heap"]["ok"] is True


def test_file_trace_survives_offline_replay(tmp_path):
    path = tmp_path / "roundtrip.jsonl"
    scenario = Scenario(
        message_count=200,
        loss_rate=0.15,
        seed=15,
        config=ProducerConfig(message_timeout_s=2.0, request_timeout_s=0.8),
    )
    result = run_experiment(
        scenario, telemetry=TelemetryConfig(trace_path=str(path))
    )
    events, manifest = load_trace_file(path)
    assert manifest is not None
    # The file round-trip preserves the event stream bit-for-bit: the
    # recomputed digest matches, the replayed census matches, nothing is
    # lost to float formatting or line splitting.
    verify_trace(events, manifest)
    assert trace_violations(events, manifest) == []
    assert manifest["trace_digest"] == result.manifest["trace_digest"]
    assert len(events) == manifest["trace_events"]


def test_ring_and_file_sinks_agree_on_the_digest(tmp_path):
    scenario = Scenario(message_count=150, loss_rate=0.1, seed=16)
    ring = run_experiment(scenario, telemetry=TelemetryConfig())
    file_based = run_experiment(
        scenario,
        telemetry=TelemetryConfig(trace_path=str(tmp_path / "t.jsonl")),
    )
    assert ring.manifest["trace_digest"] == file_based.manifest["trace_digest"]
    assert ring.manifest["trace_events"] == file_based.manifest["trace_events"]
    assert ring == file_based  # measured outputs identical too
