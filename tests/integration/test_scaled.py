"""Integration tests for scaled producer fleets (Section IV-C)."""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import Scenario, run_experiment, run_scaled_experiment


BASE = Scenario(
    message_bytes=200,
    message_count=1200,
    seed=5,
    arrival_rate=24.0,
    config=ProducerConfig(message_timeout_s=1.0),
)


def test_scaling_relieves_overload():
    single = run_experiment(BASE)
    fleet = run_scaled_experiment(BASE, producers=4)
    assert single.p_loss > 0.3
    assert fleet.p_loss < 0.1


def test_fleet_conserves_all_keys():
    result = run_scaled_experiment(BASE.with_(message_count=900), producers=3)
    # check_conservation ran inside; produced must equal the request.
    assert result.produced == 900


def test_one_producer_fleet_matches_single_experiment_shape():
    scenario = BASE.with_(arrival_rate=6.0, message_count=600)
    single = run_experiment(scenario)
    fleet = run_scaled_experiment(scenario, producers=1)
    assert abs(single.p_loss - fleet.p_loss) < 0.05


def test_fault_applies_to_every_member():
    scenario = BASE.with_(
        loss_rate=0.2,
        network_delay_s=0.1,
        arrival_rate=8.0,
        message_count=900,
        config=BASE.config.with_(
            semantics=DeliverySemantics.AT_MOST_ONCE, message_timeout_s=0.5
        ),
    )
    fleet = run_scaled_experiment(scenario, producers=3)
    assert fleet.p_loss > 0.02  # faults visible through every uplink


def test_uneven_message_split_covers_total():
    result = run_scaled_experiment(
        BASE.with_(message_count=1001, arrival_rate=9.0), producers=3
    )
    assert result.produced == 1001


def test_producers_validation():
    with pytest.raises(ValueError):
        run_scaled_experiment(BASE, producers=0)


def test_scaled_run_is_deterministic():
    scenario = BASE.with_(message_count=600, arrival_rate=12.0)
    first = run_scaled_experiment(scenario, producers=2)
    second = run_scaled_experiment(scenario, producers=2)
    assert first.p_loss == second.p_loss
    assert first.p_duplicate == second.p_duplicate
