"""Integration test: the closed-loop online configuration experiment."""

import pytest

from repro.kafka import DEFAULT_PRODUCER_CONFIG, ProducerConfig
from repro.kpi import (
    KpiWeights,
    OnlineDynamicController,
    run_online_experiment,
    run_traced_experiment,
)
from repro.models import FeatureVector, ReliabilityEstimate
from repro.network import NetworkTrace, TracePoint
from repro.performance import ProducerPerformanceModel
from repro.workloads import WEB_ACCESS_LOGS


class AnalyticPredictor:
    """Loss grows with loss rate, shrinks with batching — enough structure
    for the controller to make sensible moves without ANN training."""

    def predict_vector(self, vector: FeatureVector) -> ReliabilityEstimate:
        loss = min(1.0, (vector.loss_rate * 2.5 + vector.network_delay_s) / vector.batch_size)
        dup = 0.01 if vector.semantics.waits_for_ack else 0.0
        return ReliabilityEstimate(p_loss=loss, p_duplicate=dup)


@pytest.fixture
def trace():
    return NetworkTrace(interval_s=30, points=[
        TracePoint(0.0, 0.02, 0.0),
        TracePoint(30.0, 0.08, 0.18),
        TracePoint(60.0, 0.08, 0.18),
        TracePoint(90.0, 0.03, 0.02),
    ])


def make_controller(**kwargs):
    return OnlineDynamicController(
        AnalyticPredictor(),
        ProducerPerformanceModel(),
        weights=KpiWeights.of(WEB_ACCESS_LOGS.kpi_weights),
        gamma_requirement=0.97,
        **kwargs,
    )


def test_online_loop_runs_and_aggregates(trace):
    report = run_online_experiment(
        trace, WEB_ACCESS_LOGS, make_controller(),
        reconfig_interval_s=30.0, messages_cap_per_interval=80, seed=5,
    )
    assert report.policy == "online"
    assert len(report.intervals) == 4
    assert 0.0 <= report.rates.r_loss <= 1.0


def test_online_adapts_during_loss_episode(trace):
    """After the first lossy interval, the controller must batch up."""
    controller = make_controller()
    decisions = []
    original = controller.decide

    def spy(estimate, stream, current):
        decided = original(estimate, stream, current)
        decisions.append(decided.batch_size)
        return decided

    controller.decide = spy
    run_online_experiment(
        trace, WEB_ACCESS_LOGS, controller,
        reconfig_interval_s=30.0, messages_cap_per_interval=80, seed=5,
    )
    assert max(decisions) > 1


def test_online_no_worse_than_default_on_this_trace(trace):
    online = run_online_experiment(
        trace, WEB_ACCESS_LOGS, make_controller(),
        reconfig_interval_s=30.0, messages_cap_per_interval=120, seed=7,
    )
    default = run_traced_experiment(
        trace, WEB_ACCESS_LOGS, static_config=DEFAULT_PRODUCER_CONFIG,
        messages_cap_per_interval=120, seed=7,
    )
    assert online.rates.r_loss <= default.rates.r_loss + 0.05


def test_online_respects_start_config(trace):
    start = ProducerConfig(batch_size=3, message_timeout_s=2.0)
    report = run_online_experiment(
        trace, WEB_ACCESS_LOGS, make_controller(),
        start=start, reconfig_interval_s=30.0,
        messages_cap_per_interval=60, seed=9,
    )
    assert len(report.intervals) == 4
