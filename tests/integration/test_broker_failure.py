"""Integration tests for broker-failure scenarios (paper future work)."""

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import Experiment, Scenario


def run_with_crash(crash_at, restore_at=None, semantics=DeliverySemantics.AT_LEAST_ONCE):
    scenario = Scenario(
        message_bytes=200,
        message_count=300,
        seed=12,
        arrival_rate=20.0,
        config=ProducerConfig(semantics=semantics, message_timeout_s=2.0),
        broker_count=3,
        partition_count=3,
    )
    experiment = Experiment(scenario)
    experiment.injector.crash_broker_at(crash_at, "broker-0")
    if restore_at is not None:
        experiment.injector.restore_broker_at(restore_at, "broker-0")
    return experiment, experiment.run()


def test_crash_with_failover_keeps_most_messages():
    experiment, result = run_with_crash(crash_at=2.0)
    # Leader election moves broker-0's partitions to the replicas, so the
    # cluster stays available and losses stay bounded.
    assert result.p_loss < 0.5
    for topic in experiment.cluster.topics.values():
        for partition in topic.partitions:
            assert partition.leader_broker_id != "broker-0"


def test_crash_and_restore_recovers():
    _, crashed = run_with_crash(crash_at=2.0)
    _, recovered = run_with_crash(crash_at=2.0, restore_at=4.0)
    assert recovered.p_loss <= crashed.p_loss + 0.05


def test_all_brokers_down_loses_messages():
    scenario = Scenario(
        message_bytes=200,
        message_count=150,
        seed=13,
        arrival_rate=20.0,
        config=ProducerConfig(
            semantics=DeliverySemantics.AT_MOST_ONCE, message_timeout_s=1.0
        ),
    )
    experiment = Experiment(scenario)
    for broker_id in list(experiment.cluster.brokers):
        experiment.injector.crash_broker_at(0.0, broker_id)
    result = experiment.run()
    assert result.p_loss == 1.0


def test_fault_injector_combined_with_network_fault():
    scenario = Scenario(
        message_bytes=200,
        message_count=200,
        seed=14,
        arrival_rate=15.0,
        loss_rate=0.1,
        config=ProducerConfig(message_timeout_s=2.0),
    )
    experiment = Experiment(scenario)
    experiment.injector.crash_broker_at(3.0, "broker-1")
    result = experiment.run()
    assert 0.0 <= result.p_loss <= 1.0
    result_clean = Experiment(scenario).run()
    assert result.p_loss >= result_clean.p_loss - 0.05
