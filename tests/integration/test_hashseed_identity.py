"""Campaign reports must be byte-identical across PYTHONHASHSEED values.

Python randomises ``str``/``bytes`` hashing per process unless
``PYTHONHASHSEED`` is pinned, so any set/dict-order leak into a
serialized artifact shows up as run-to-run byte drift.  The lint rules
(REPRO103/104) forbid the patterns statically; this test closes the
loop dynamically by rendering the same capped chaos campaign in two
subprocesses with *different* hash seeds and comparing the report
bytes.  CI additionally pins ``PYTHONHASHSEED`` in the tier-1 and
chaos-smoke jobs so a regression cannot hide behind a lucky seed.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parents[2]


def render_campaign(tmp_path: Path, hash_seed: str) -> bytes:
    out = tmp_path / f"campaign-{hash_seed}.json"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "chaos",
            "--schedule", "flap-burst", "--policy", "static",
            "--seed", "7", "--cap", "40", "--out", str(out),
        ],
        check=True,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        timeout=120,
    )
    return out.read_bytes()


def test_campaign_report_is_byte_identical_across_hash_seeds(tmp_path):
    first = render_campaign(tmp_path, "0")
    second = render_campaign(tmp_path, "431")
    assert first == second

    # Sanity: the artifact is a real report, not an empty file.
    payload = json.loads(first)
    assert payload["kind"] == "chaos_campaign_report"
    assert payload["phases"]
