"""Integration tests: training pipeline, registry and dynamic configuration."""

import pytest

from repro.kafka import DEFAULT_PRODUCER_CONFIG
from repro.kpi import (
    DynamicConfigurationController,
    KpiWeights,
    run_traced_experiment,
)
from repro.models import (
    FeatureVector,
    ModelRegistry,
    TrainingSettings,
    train_reliability_model,
)
from repro.network import NetworkTrace, TracePoint
from repro.performance import ProducerPerformanceModel
from repro.testbed import Scenario, abnormal_case_plan, normal_case_plan
from repro.workloads import WEB_ACCESS_LOGS

FAST_SETTINGS = TrainingSettings(
    hidden=(24, 12), epochs=60, learning_rate=0.3, patience=20
)


@pytest.fixture(scope="module")
def trained_report():
    base = Scenario(message_count=250)
    plans = [
        normal_case_plan(base=base, max_rows=16),
        abnormal_case_plan(base=base, max_rows=24),
    ]
    return train_reliability_model(plans=plans, settings=FAST_SETTINGS, seed=3)


def test_pipeline_trains_submodels(trained_report):
    assert trained_report.train_rows > 0
    assert trained_report.test_rows > 0
    assert len(trained_report.predictor.submodels) >= 2
    assert 0.0 <= trained_report.overall_mae <= 1.0


def test_predictions_available_for_measured_rows(trained_report):
    for row in trained_report.test_results[:5]:
        vector = FeatureVector.from_result(row)
        if vector.submodel_key in trained_report.predictor.submodels:
            estimate = trained_report.predictor.predict_vector(vector)
            assert 0.0 <= estimate.p_loss <= 1.0


def test_registry_round_trip(trained_report, tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.save("pipeline-model", trained_report.predictor)
    assert registry.list_models() == ["pipeline-model"]
    loaded = registry.load("pipeline-model")
    row = trained_report.train_results[0]
    vector = FeatureVector.from_result(row)
    if vector.submodel_key in trained_report.predictor.submodels:
        original = trained_report.predictor.predict_vector(vector)
        restored = loaded.predict_vector(vector)
        assert restored.p_loss == pytest.approx(original.p_loss)
    registry.delete("pipeline-model")
    assert registry.list_models() == []


def test_registry_missing_model_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        ModelRegistry(tmp_path).load("ghost")


def test_dynamic_configuration_end_to_end(trained_report, tmp_path):
    trace = NetworkTrace(interval_s=10, points=[
        TracePoint(0.0, 0.03, 0.0),
        TracePoint(10.0, 0.08, 0.15),
        TracePoint(20.0, 0.05, 0.05),
    ])
    controller = DynamicConfigurationController(
        trained_report.predictor,
        ProducerPerformanceModel(),
        weights=KpiWeights.of(WEB_ACCESS_LOGS.kpi_weights),
        gamma_requirement=0.95,
        reconfig_interval_s=10.0,
    )
    plan = controller.generate_plan(trace, WEB_ACCESS_LOGS)
    assert len(plan.entries) == 3
    path = tmp_path / "plan.json"
    plan.save(path)

    dynamic = run_traced_experiment(
        trace, WEB_ACCESS_LOGS, plan=plan, messages_cap_per_interval=60
    )
    default = run_traced_experiment(
        trace,
        WEB_ACCESS_LOGS,
        static_config=DEFAULT_PRODUCER_CONFIG,
        messages_cap_per_interval=60,
    )
    for report in (dynamic, default):
        assert 0.0 <= report.rates.r_loss <= 1.0
        assert len(report.intervals) == 3
    assert dynamic.policy == "dynamic"
    assert default.policy == "default"


def test_traced_experiment_requires_exactly_one_policy():
    trace = NetworkTrace(interval_s=10, points=[TracePoint(0.0, 0.01, 0.0)])
    with pytest.raises(ValueError):
        run_traced_experiment(trace, WEB_ACCESS_LOGS)
    with pytest.raises(ValueError):
        run_traced_experiment(
            trace,
            WEB_ACCESS_LOGS,
            plan=None,
            static_config=None,
        )
