"""Integration tests for chaos campaigns (PR 3 acceptance criteria).

Every campaign phase runs with invariant checking enabled, so a campaign
completing at all certifies that conservation and semantics invariants
held under every injected fault.
"""

import pytest

from repro.chaos import (
    blackout_phase,
    broker_flap_phase,
    compose,
    flap_burst_schedule,
    run_campaign,
)
from repro.kpi import PARKED_CONFIG

SEED = 7


@pytest.fixture(scope="module")
def static_report():
    return run_campaign(flap_burst_schedule(seed=SEED), policy="static", seed=SEED)


@pytest.fixture(scope="module")
def degraded_report():
    return run_campaign(flap_burst_schedule(seed=SEED), policy="degraded", seed=SEED)


def phase_named(report, name):
    [phase] = [p for p in report.phases if p.name == name]
    return phase


class TestDeterminism:
    def test_static_report_is_byte_identical_across_runs(self, static_report):
        again = run_campaign(
            flap_burst_schedule(seed=SEED), policy="static", seed=SEED
        )
        assert again.to_json() == static_report.to_json()

    def test_degraded_report_is_byte_identical_across_runs(self, degraded_report):
        again = run_campaign(
            flap_burst_schedule(seed=SEED), policy="degraded", seed=SEED
        )
        assert again.to_json() == degraded_report.to_json()

    def test_different_seed_changes_the_report(self, static_report):
        other = run_campaign(
            flap_burst_schedule(seed=SEED + 1), policy="static", seed=SEED + 1
        )
        assert other.to_json() != static_report.to_json()

    def test_phase_seeds_are_distinct(self, static_report):
        seeds = [phase.seed for phase in static_report.phases]
        assert len(set(seeds)) == len(seeds)


class TestReportShape:
    def test_report_covers_every_phase_in_order(self, static_report):
        schedule = flap_burst_schedule(seed=SEED)
        assert [p.name for p in static_report.phases] == [
            p.name for p in schedule.phases
        ]
        assert [p.index for p in static_report.phases] == list(range(5))

    def test_phases_carry_manifest_identity(self, static_report):
        for phase in static_report.phases:
            assert phase.trace_digest
            assert phase.events_processed > 0
            assert phase.produced > 0

    def test_json_has_no_wall_clock_fields(self, static_report):
        payload = static_report.to_dict()
        assert payload["kind"] == "chaos_campaign_report"
        assert "wall_time_s" not in static_report.to_json()

    def test_recovery_is_measured_where_scheduled(self, static_report):
        flap = phase_named(static_report, "broker-flap")
        assert flap.time_to_recover_s is not None
        assert 0.0 <= flap.time_to_recover_s < flap.duration_s
        blackout = phase_named(static_report, "blackout")
        assert blackout.time_to_recover_s is None  # never restores


class TestDegradedPolicy:
    def test_blackout_trips_breaker_and_parks_the_flap_phase(self, degraded_report):
        flap = phase_named(degraded_report, "broker-flap")
        assert flap.decision_reason == "parked"
        assert flap.breaker_state == "open"
        assert flap.semantics == PARKED_CONFIG.semantics.value
        assert flap.message_timeout_s == PARKED_CONFIG.message_timeout_s
        assert degraded_report.breaker_trips >= 1

    def test_parked_config_avoids_the_static_loss_spike(
        self, static_report, degraded_report
    ):
        static_flap = phase_named(static_report, "broker-flap")
        degraded_flap = phase_named(degraded_report, "broker-flap")
        # The static default's 1.5 s message timeout expires messages during
        # the 2.4 s outage; the parked configuration rides it out.
        assert static_flap.p_loss > 0.3
        assert degraded_flap.p_loss < 0.05
        assert degraded_report.overall_p_loss < static_report.overall_p_loss

    def test_decisions_report_predicted_gamma_and_tier(self, degraded_report):
        for phase in degraded_report.phases[1:]:
            assert phase.gamma_predicted is not None
            assert 0.0 <= phase.gamma_predicted <= 1.0
            assert phase.prediction_source in ("ann", "neighbour", "conservative")
            assert phase.breaker_state in ("closed", "open", "half_open")

    def test_recovery_phase_closes_the_breaker(self, degraded_report):
        recovery = phase_named(degraded_report, "recovery")
        assert recovery.breaker_state in ("closed", "half_open")


class TestCampaignOptions:
    def test_messages_cap_bounds_phase_size(self):
        schedule = compose(
            "tiny", broker_flap_phase(duration_s=6.0, downtime_s=2.4, seed=1)
        )
        report = run_campaign(schedule, seed=1, messages_cap_per_phase=20)
        assert all(phase.produced <= 20 for phase in report.phases)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            run_campaign(compose("one", blackout_phase()), policy="yolo")
