"""Integration tests: full testbed experiments end to end."""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.kafka.state import DeliveryCase
from repro.testbed import Experiment, Scenario, run_experiment


def test_clean_network_delivers_everything():
    scenario = Scenario(
        message_bytes=200,
        message_count=300,
        seed=2,
        arrival_rate=8.0,
        config=ProducerConfig(message_timeout_s=5.0),
    )
    result = run_experiment(scenario)
    assert result.p_loss == 0.0
    assert result.p_duplicate == 0.0
    assert result.case_fractions.get("case1", 0.0) == pytest.approx(1.0)


def test_heavy_loss_causes_message_loss():
    scenario = Scenario(
        message_bytes=100,
        message_count=400,
        loss_rate=0.25,
        network_delay_s=0.1,
        seed=3,
        config=ProducerConfig(
            semantics=DeliverySemantics.AT_MOST_ONCE, message_timeout_s=1.0
        ),
    )
    result = run_experiment(scenario)
    assert result.p_loss > 0.05


def test_tracker_and_reconciliation_agree_on_losses():
    """Producer-view case census vs consumer ground truth.

    Keys the consumer finds missing must be exactly the messages whose
    state machine never recorded a persist.
    """
    scenario = Scenario(
        message_bytes=150,
        message_count=300,
        loss_rate=0.2,
        seed=4,
        config=ProducerConfig(message_timeout_s=0.8),
    )
    experiment = Experiment(scenario)
    result = experiment.run()
    never_persisted = sum(
        1
        for machine in experiment.tracker.machines.values()
        if not machine.persisted
    )
    assert never_persisted == round(result.p_loss * result.produced)


def test_duplicated_keys_match_case5_census():
    scenario = Scenario(
        message_bytes=200,
        message_count=400,
        loss_rate=0.2,
        network_delay_s=0.1,
        seed=7,
        arrival_rate=6.0,
        config=ProducerConfig(
            message_timeout_s=6.0, request_timeout_s=0.9
        ),
    )
    experiment = Experiment(scenario)
    result = experiment.run()
    census = experiment.tracker.census()
    case5 = census.case_counts.get(DeliveryCase.CASE5, 0)
    assert case5 == round(result.p_duplicate * result.produced)


def test_throughput_and_latency_reported():
    result = run_experiment(
        Scenario(message_count=200, arrival_rate=8.0, seed=5)
    )
    assert result.throughput_msgs_per_s is not None
    assert result.throughput_msgs_per_s > 0
    assert result.mean_ack_latency_s is not None
    assert result.simulated_duration_s > 0


def test_staleness_measured_when_timeliness_set():
    scenario = Scenario(
        message_bytes=200,
        message_count=200,
        timeliness_s=0.001,  # absurdly strict: everything delivered is stale
        seed=6,
        arrival_rate=8.0,
    )
    result = run_experiment(scenario)
    assert result.p_stale > 0.8


def test_results_reproducible_across_runs():
    scenario = Scenario(message_count=250, loss_rate=0.15, seed=11)
    first = run_experiment(scenario)
    second = run_experiment(scenario)
    assert first.p_loss == second.p_loss
    assert first.case_fractions == second.case_fractions


def test_different_seeds_vary_results():
    base = Scenario(message_count=300, loss_rate=0.15, message_bytes=100)
    results = {run_experiment(base.with_(seed=s)).p_loss for s in range(4)}
    assert len(results) > 1


def test_polled_scenario_uses_polling_interval():
    scenario = Scenario(
        message_count=100,
        seed=8,
        config=ProducerConfig(polling_interval_s=0.05, message_timeout_s=5.0),
    )
    result = run_experiment(scenario)
    # 100 messages at >= 50 ms each require >= 5 simulated seconds.
    assert result.simulated_duration_s >= 5.0
    assert result.p_loss <= 0.05
