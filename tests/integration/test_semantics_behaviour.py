"""Integration tests pinning the semantics-dependent behaviours."""

import pytest

from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import Scenario, TelemetryConfig, run_experiment


LOSSY = dict(loss_rate=0.18, network_delay_s=0.08, message_bytes=150, message_count=400)


def run_with(semantics, telemetry=None, **overrides):
    base = dict(LOSSY)
    config_kwargs = overrides.pop("config_kwargs", {})
    base.update(overrides)
    config = ProducerConfig(
        semantics=semantics, message_timeout_s=4.0, request_timeout_s=1.0,
        **config_kwargs,
    )
    return run_experiment(
        Scenario(seed=9, config=config, **base), telemetry=telemetry
    )


def test_at_least_once_recovers_more_than_at_most_once():
    amo = run_with(DeliverySemantics.AT_MOST_ONCE)
    alo = run_with(DeliverySemantics.AT_LEAST_ONCE, arrival_rate=5.0)
    amo_rate = run_with(DeliverySemantics.AT_MOST_ONCE, arrival_rate=5.0)
    assert alo.p_loss <= amo_rate.p_loss


def test_duplicates_require_acknowledgement_path():
    amo = run_with(DeliverySemantics.AT_MOST_ONCE, arrival_rate=6.0)
    assert amo.p_duplicate == 0.0


def test_exactly_once_fences_duplicates_under_retries():
    eos = run_with(DeliverySemantics.EXACTLY_ONCE, arrival_rate=6.0)
    assert eos.p_duplicate == 0.0


def test_exactly_once_matches_at_least_once_loss_profile():
    """Idempotence removes duplicates without adding losses."""
    alo = run_with(DeliverySemantics.AT_LEAST_ONCE, arrival_rate=4.0)
    eos = run_with(DeliverySemantics.EXACTLY_ONCE, arrival_rate=4.0)
    assert abs(eos.p_loss - alo.p_loss) < 0.15


@pytest.mark.parametrize(
    "semantics",
    [
        DeliverySemantics.AT_MOST_ONCE,
        DeliverySemantics.AT_LEAST_ONCE,
        DeliverySemantics.EXACTLY_ONCE,
    ],
)
def test_census_agrees_with_reconciliation_under_loss(semantics):
    """Cross-check: the tracker's Table I census and the consumer-side
    key reconciliation must describe the same run, for every semantics.

    The manifest carries both accountings; the relations below are the
    conservation laws the invariant checker enforces, asserted here
    explicitly so a drift in either bookkeeper fails with a readable
    message instead of a generic InvariantViolation.
    """
    result = run_with(semantics, arrival_rate=5.0, telemetry=TelemetryConfig())
    manifest = result.manifest
    assert manifest is not None
    cases = manifest["case_counts"]
    total_cases = sum(cases.values())
    # Every produced message is either classified or still unresolved.
    assert total_cases + manifest["unresolved"] == manifest["produced"]
    # Consumer-side reconciliation totals mirror the same population.
    assert manifest["delivered_unique"] + manifest["lost"] == manifest["produced"]
    # Duplicates: the census' case 5 is exactly the reconciliation count.
    assert cases.get("case5", 0) == manifest["duplicated"]
    # Delivered messages are cases 1/4/5 plus persisted-but-unacked.
    assert (
        cases.get("case1", 0)
        + cases.get("case4", 0)
        + cases.get("case5", 0)
        + manifest["persisted_but_unacked"]
        == manifest["delivered_unique"]
    )
    # The run actually exercised the lossy path.
    assert manifest["produced"] == LOSSY["message_count"]
    if semantics is DeliverySemantics.AT_MOST_ONCE:
        assert manifest["duplicated"] == 0
    if semantics is DeliverySemantics.EXACTLY_ONCE:
        assert manifest["duplicated"] == 0


def test_batching_reduces_loss_under_packet_loss():
    single = run_with(
        DeliverySemantics.AT_LEAST_ONCE, config_kwargs={"batch_size": 1}
    )
    batched = run_with(
        DeliverySemantics.AT_LEAST_ONCE, config_kwargs={"batch_size": 6}
    )
    assert batched.p_loss < single.p_loss


def test_larger_timeout_reduces_loss_at_full_load():
    tight = run_with(
        DeliverySemantics.AT_MOST_ONCE, loss_rate=0.0, network_delay_s=0.0,
        message_bytes=200, config_kwargs={},
    )
    generous = run_experiment(
        Scenario(
            seed=9, message_bytes=200, message_count=400,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_MOST_ONCE, message_timeout_s=6.0
            ),
        )
    )
    tight = run_experiment(
        Scenario(
            seed=9, message_bytes=200, message_count=400,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_MOST_ONCE, message_timeout_s=0.4
            ),
        )
    )
    assert generous.p_loss < tight.p_loss


def test_polling_throttle_reduces_loss():
    full_load = run_experiment(
        Scenario(
            seed=10, message_bytes=200, message_count=400,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_MOST_ONCE,
                message_timeout_s=0.5,
                polling_interval_s=0.0,
            ),
        )
    )
    throttled = run_experiment(
        Scenario(
            seed=10, message_bytes=200, message_count=400,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_MOST_ONCE,
                message_timeout_s=0.5,
                polling_interval_s=0.09,
            ),
        )
    )
    assert throttled.p_loss < full_load.p_loss
