"""Feature schema for the reliability prediction model (paper Eq. 1).

The model's inputs are ``(M, S, D, L, Confs)`` where ``Confs`` covers
delivery semantics, batch size, polling interval and message timeout.
Delivery semantics is a categorical feature; following the paper's Fig. 3
design the predictor trains *separate* submodels per semantics (and per
normal/abnormal network region), so the numeric vector excludes it and
the schema exposes the submodel key instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..kafka.semantics import DeliverySemantics
from ..testbed.results import ExperimentResult
from ..testbed.scenario import Scenario

__all__ = ["FeatureVector", "FeatureSchema", "region_of", "NORMAL", "ABNORMAL"]

#: Region labels of the Fig. 3 split.
NORMAL = "normal"
ABNORMAL = "abnormal"

#: The Fig. 3 normal-network predicate thresholds.
_NORMAL_MAX_DELAY_S = 0.200


def region_of(network_delay_s: float, loss_rate: float) -> str:
    """Classify a network condition into the Fig. 3 region."""
    if network_delay_s < _NORMAL_MAX_DELAY_S and loss_rate == 0.0:
        return NORMAL
    return ABNORMAL


@dataclass(frozen=True)
class FeatureVector:
    """One model input: the Eq. 1 features."""

    message_bytes: float
    timeliness_s: float
    network_delay_s: float
    loss_rate: float
    semantics: DeliverySemantics
    batch_size: float
    polling_interval_s: float
    message_timeout_s: float

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "FeatureVector":
        """Extract the features of a testbed scenario."""
        return cls(
            message_bytes=float(scenario.message_bytes),
            timeliness_s=float(scenario.timeliness_s or 0.0),
            network_delay_s=float(scenario.network_delay_s),
            loss_rate=float(scenario.loss_rate),
            semantics=scenario.config.semantics,
            batch_size=float(scenario.config.batch_size),
            polling_interval_s=float(scenario.config.polling_interval_s),
            message_timeout_s=float(scenario.config.message_timeout_s),
        )

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "FeatureVector":
        """Extract the features a measured result was produced under."""
        return cls(
            message_bytes=float(result.message_bytes),
            timeliness_s=float(result.timeliness_s or 0.0),
            network_delay_s=float(result.network_delay_s),
            loss_rate=float(result.loss_rate),
            semantics=DeliverySemantics.parse(result.semantics),
            batch_size=float(result.batch_size),
            polling_interval_s=float(result.polling_interval_s),
            message_timeout_s=float(result.message_timeout_s),
        )

    @property
    def region(self) -> str:
        """Fig. 3 region of this feature vector."""
        return region_of(self.network_delay_s, self.loss_rate)

    @property
    def submodel_key(self) -> Tuple[str, str]:
        """(region, semantics) — the submodel this vector routes to."""
        return (self.region, self.semantics.value)

    def quantised_key(self, decimals: int = 9) -> Tuple:
        """Hashable memo key: routing identity + quantised numeric features.

        Rounding to ``decimals`` makes float keys robust against noise far
        below any physical resolution of the testbed grids while keeping
        every practically distinct feature value distinct.  The region and
        semantics ride along *unrounded* so two vectors on opposite sides
        of the Fig. 3 region predicate (e.g. ``loss_rate=0`` vs ``1e-10``)
        can never collide on one memo slot.
        """
        # Inlined region predicate: this runs once per candidate per
        # search round, so the property + function-call hop is measurable.
        region = (
            NORMAL
            if self.network_delay_s < _NORMAL_MAX_DELAY_S
            and self.loss_rate == 0.0
            else ABNORMAL
        )
        return (
            region,
            self.semantics.value,
            round(self.message_bytes, decimals),
            round(self.timeliness_s, decimals),
            round(self.network_delay_s, decimals),
            round(self.loss_rate, decimals),
            round(self.batch_size, decimals),
            round(self.polling_interval_s, decimals),
            round(self.message_timeout_s, decimals),
        )


class FeatureSchema:
    """Maps feature vectors to numeric arrays for one submodel.

    Per the Fig. 3 reduction, each region uses only its *effective*
    numeric features; the remaining inputs are constant within a submodel
    and would only add noise columns.

    ``physics_features`` additionally appends the analytic load ratio
    λ̂/μ̂ from the performance model — the hybrid analytical+ML approach
    of the paper's reference [15].  The ratio encodes where the overload
    cliff sits, which a small MLP struggles to infer from raw features.
    """

    #: Effective numeric features per region.
    REGION_COLUMNS: Dict[str, List[str]] = {
        NORMAL: [
            "message_bytes",
            "timeliness_s",
            "batch_size",
            "polling_interval_s",
            "message_timeout_s",
        ],
        ABNORMAL: [
            "message_bytes",
            "timeliness_s",
            "network_delay_s",
            "loss_rate",
            "batch_size",
            "message_timeout_s",
        ],
    }

    def __init__(self, region: str, physics_features: bool = True) -> None:
        if region not in self.REGION_COLUMNS:
            raise ValueError(f"unknown region {region!r}")
        self.region = region
        self.physics_features = physics_features
        self.columns = list(self.REGION_COLUMNS[region])
        if physics_features:
            self.columns.append("load_ratio")
        self._performance_model = None
        # The load ratio is a pure function of its inputs but costs a
        # whole queueing-model evaluation in Python; configuration
        # searches re-encode the same candidates round after round, so
        # memoise per distinct input tuple.
        self._load_ratio_cache: Dict[Tuple, float] = {}

    @property
    def input_dim(self) -> int:
        """Width of the numeric input vector."""
        return len(self.columns)

    def _load_ratio(self, vector: FeatureVector) -> float:
        key = (
            vector.semantics,
            vector.batch_size,
            vector.polling_interval_s,
            vector.message_timeout_s,
            vector.message_bytes,
            vector.network_delay_s,
        )
        cached = self._load_ratio_cache.get(key)
        if cached is not None:
            return cached
        ratio = self._load_ratio_uncached(vector)
        if len(self._load_ratio_cache) >= 4096:
            self._load_ratio_cache.clear()
        self._load_ratio_cache[key] = ratio
        return ratio

    def _load_ratio_uncached(self, vector: FeatureVector) -> float:
        from ..kafka.config import ProducerConfig
        from ..performance.queueing import ProducerPerformanceModel

        if self._performance_model is None:
            self._performance_model = ProducerPerformanceModel()
        config = ProducerConfig(
            semantics=vector.semantics,
            batch_size=max(1, int(round(vector.batch_size))),
            polling_interval_s=vector.polling_interval_s,
            message_timeout_s=vector.message_timeout_s,
        )
        message_bytes = max(1, int(round(vector.message_bytes)))
        mu = self._performance_model.service_rate(
            config, message_bytes, vector.network_delay_s
        )
        lam = self._performance_model.arrival_rate(config, message_bytes)
        return min(10.0, lam / max(mu, 1e-9))

    def encode(self, vector: FeatureVector) -> np.ndarray:
        """Encode one feature vector as a numeric row."""
        row = []
        for column in self.columns:
            if column == "load_ratio":
                row.append(self._load_ratio(vector))
            else:
                row.append(getattr(vector, column))
        return np.array(row, dtype=np.float64)

    def encode_many(self, vectors: List[FeatureVector]) -> np.ndarray:
        """Encode a batch of feature vectors as a matrix.

        Values are bitwise-identical to stacking :meth:`encode` rows —
        the columns are gathered as Python floats either way — but the
        matrix is materialised with a single ``np.array`` call instead of
        one small-array allocation per vector.
        """
        if not vectors:
            raise ValueError("no feature vectors to encode")
        rows = [
            [
                self._load_ratio(vector) if column == "load_ratio"
                else getattr(vector, column)
                for column in self.columns
            ]
            for vector in vectors
        ]
        return np.array(rows, dtype=np.float64)

    def output_columns(self, semantics: DeliverySemantics) -> List[str]:
        """Model outputs for a semantics: P_l always, P_d only with acks.

        This is the paper's output-layer reduction: under at-most-once
        there are no duplicates, so the submodel predicts P_l alone.
        """
        if semantics is DeliverySemantics.AT_MOST_ONCE:
            return ["p_loss"]
        return ["p_loss", "p_duplicate"]
