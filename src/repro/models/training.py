"""End-to-end training pipeline: collect → train → evaluate.

One call reproduces the paper's workflow: run the Fig. 3 collection plans
on the testbed, split the measured rows, train the ANN submodels and
report hold-out MAE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..testbed.cache import ResultCache
from ..testbed.collection import (
    CollectionPlan,
    abnormal_case_plan,
    collect_training_data,
    normal_case_plan,
)
from ..testbed.results import ExperimentResult
from .predictor import ReliabilityPredictor, TrainingSettings

__all__ = ["TrainedModelReport", "train_reliability_model", "split_results"]


@dataclass
class TrainedModelReport:
    """Outcome of one training pipeline run."""

    predictor: ReliabilityPredictor
    train_rows: int
    test_rows: int
    submodel_rows: Dict[Tuple[str, str], int]
    mae_report: Dict[str, float]
    train_results: List[ExperimentResult] = field(default_factory=list)
    test_results: List[ExperimentResult] = field(default_factory=list)

    @property
    def overall_mae(self) -> float:
        """Hold-out MAE (paper target: below 0.02)."""
        return self.mae_report["overall"]


def split_results(
    results: Sequence[ExperimentResult],
    test_fraction: float = 0.2,
    seed: int = 0,
) -> Tuple[List[ExperimentResult], List[ExperimentResult]]:
    """Shuffle-split measured rows into train and hold-out sets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if len(results) < 5:
        raise ValueError("too few results to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(results))
    cut = max(1, int(round(len(results) * test_fraction)))
    test_index = set(order[:cut].tolist())
    train = [results[i] for i in range(len(results)) if i not in test_index]
    test = [results[i] for i in range(len(results)) if i in test_index]
    return train, test


def train_reliability_model(
    results: Optional[Sequence[ExperimentResult]] = None,
    plans: Optional[Sequence[CollectionPlan]] = None,
    settings: Optional[TrainingSettings] = None,
    test_fraction: float = 0.2,
    seed: int = 0,
    progress: Optional[Callable[[int, int, object], None]] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> TrainedModelReport:
    """Run the full pipeline and return the trained predictor + report.

    Parameters
    ----------
    results:
        Pre-measured rows; when omitted, the testbed is run over ``plans``
        (defaulting to the paper's Fig. 3 normal + abnormal grids).
    plans:
        Collection plans to measure when ``results`` is not given.
    settings:
        ANN hyperparameters (defaults to the paper's).
    test_fraction / seed:
        Hold-out split control.
    progress:
        Forwarded to the collection loop.
    workers / cache:
        Parallel-collection pool size and result cache, forwarded to
        :func:`~repro.testbed.collection.collect_training_data` (no
        effect when ``results`` is given).
    """
    if results is None:
        if plans is None:
            plans = [normal_case_plan(), abnormal_case_plan()]
        results = collect_training_data(
            plans, progress=progress, workers=workers, cache=cache
        )
    results = list(results)
    train, test = split_results(results, test_fraction, seed)
    predictor = ReliabilityPredictor()
    submodel_rows = predictor.fit(train, settings)
    evaluable = [
        row
        for row in test
        if (
            ("normal" if row.network_delay_s < 0.2 and row.loss_rate == 0.0 else "abnormal"),
            row.semantics,
        )
        in predictor.submodels
    ]
    mae_report = predictor.evaluate(evaluable if evaluable else train)
    return TrainedModelReport(
        predictor=predictor,
        train_rows=len(train),
        test_rows=len(test),
        submodel_rows=submodel_rows,
        mae_report=mae_report,
        train_results=train,
        test_results=test,
    )
