"""The reliability predictor — the paper's primary contribution.

``{P̂_l, P̂_d} = f(M, S, D, L, Confs)`` (Eq. 1), realised as a family of
ANN submodels routed by the Fig. 3 region (normal/abnormal network) and
the delivery semantics (at-most-once predicts only P̂_l).  Each submodel
is the paper's fully-connected network (hidden layers 200/200/200/64,
SGD, MSE) behind a standard scaler; predictions are clipped to [0, 1].
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann.network import PAPER_HIDDEN_LAYERS, Sequential, build_mlp
from ..ann.optimizers import SGD
from ..ann.scaling import StandardScaler
from ..kafka.semantics import DeliverySemantics
from ..testbed.results import ExperimentResult
from ..testbed.scenario import Scenario
from .features import FeatureSchema, FeatureVector

__all__ = [
    "TrainingSettings",
    "ReliabilityEstimate",
    "FallbackEstimate",
    "SubModel",
    "ReliabilityPredictor",
    "CONSERVATIVE_ESTIMATE",
]



@dataclass(frozen=True)
class TrainingSettings:
    """Hyperparameters for submodel training.

    Defaults follow the paper (Section III-G): hidden layers 200/200/200/64,
    SGD with learning rate 0.5, 1000 epochs.  Tests and quick runs pass a
    smaller topology and fewer epochs.
    """

    hidden: Tuple[int, ...] = PAPER_HIDDEN_LAYERS
    learning_rate: float = 0.5
    epochs: int = 1000
    batch_size: int = 32
    validation_fraction: float = 0.15
    patience: Optional[int] = 100
    seed: int = 0
    physics_features: bool = True

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 < self.validation_fraction < 0.5:
            raise ValueError("validation_fraction must be in (0, 0.5)")


@dataclass(frozen=True)
class ReliabilityEstimate:
    """A prediction of the two reliability metrics."""

    p_loss: float
    p_duplicate: float

    def __post_init__(self) -> None:
        for name, value in (("p_loss", self.p_loss), ("p_duplicate", self.p_duplicate)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


#: The last resort of the prediction fallback chain: assume the network is
#: bad enough that half the stream is at risk and duplicates are possible.
#: Deliberately pessimistic so a controller falling back to it prefers the
#: safest configurations rather than optimistic, brittle ones.
CONSERVATIVE_ESTIMATE = ReliabilityEstimate(p_loss=0.5, p_duplicate=0.05)

#: Sentinel distinguishing "index not built yet" from "built, but empty"
#: (``None``) in the neighbour-index cache.
_UNBUILT = object()


@dataclass(frozen=True)
class FallbackEstimate:
    """A prediction plus the fallback-chain tier that produced it.

    ``source`` is one of ``"ann"`` (a trained submodel served the
    prediction), ``"neighbour"`` (nearest measured neighbour of the query
    among remembered results) or ``"conservative"`` (the pessimistic
    built-in default — nothing else applied).
    """

    estimate: ReliabilityEstimate
    source: str

    @property
    def degraded(self) -> bool:
        """Whether the prediction came from a fallback tier, not the ANN."""
        return self.source != "ann"


class SubModel:
    """One (region, semantics) ANN with its scaler."""

    def __init__(
        self,
        region: str,
        semantics: DeliverySemantics,
        network: Sequential,
        scaler: StandardScaler,
        physics_features: bool = True,
    ) -> None:
        self.region = region
        self.semantics = semantics
        self.network = network
        self.scaler = scaler
        self.schema = FeatureSchema(region, physics_features)
        self.outputs = self.schema.output_columns(semantics)

    def predict_rows(self, rows: np.ndarray) -> np.ndarray:
        """Predict clipped outputs for pre-encoded feature rows."""
        scaled = self.scaler.transform(rows)
        return np.clip(self.network.predict(scaled), 0.0, 1.0)

    def predict_rows_batched(self, rows: np.ndarray) -> np.ndarray:
        """One vectorised forward pass over many pre-encoded rows.

        Row ``i`` of the result is bitwise-identical to
        ``predict_rows(rows[i:i+1])[0]``: the scaler and the clip are
        elementwise, and :meth:`Sequential.predict_rowwise` preserves
        per-row GEMV accumulation order inside the network.
        """
        scaled = self.scaler.transform(rows)
        return np.clip(self.network.predict_rowwise(scaled), 0.0, 1.0)

    def estimate_from_outputs(self, outputs: np.ndarray) -> ReliabilityEstimate:
        """Name one output row and wrap it as a :class:`ReliabilityEstimate`."""
        named = dict(zip(self.outputs, outputs))
        return ReliabilityEstimate(
            p_loss=float(named.get("p_loss", 0.0)),
            p_duplicate=float(named.get("p_duplicate", 0.0)),
        )


class ReliabilityPredictor:
    """Routes feature vectors to trained submodels (the Eq. 1 ``f``)."""

    #: Characteristic scales used to normalise feature distances in the
    #: nearest-neighbour fallback (roughly the spans of the Fig. 3 grid).
    _NEIGHBOUR_SCALES = {
        "message_bytes": 1000.0,
        "timeliness_s": 10.0,
        "network_delay_s": 0.4,
        "loss_rate": 0.3,
        "batch_size": 10.0,
        "polling_interval_s": 0.1,
        "message_timeout_s": 3.0,
    }

    #: Capacity of the quantised-feature prediction memo (LRU eviction).
    MEMO_CAPACITY = 4096

    def __init__(self) -> None:
        self.submodels: Dict[Tuple[str, str], SubModel] = {}
        self._memory: List[ExperimentResult] = []
        # Quantised-feature LRU memo over the fallback chain's answers.
        # Keys are FeatureVector.quantised_key(); entries are the exact
        # FallbackEstimate the chain produced, so a memo hit is
        # bit-identical to recomputing.  Invalidated whenever the chain's
        # inputs change: fit() (new submodels) and remember() (new rows
        # for the neighbour tier).
        self._memo: "OrderedDict[Tuple, FallbackEstimate]" = OrderedDict()
        self._memo_hits = 0
        self._memo_misses = 0
        # Per-semantics numpy index over remembered rows for the
        # vectorised nearest-neighbour fallback; rebuilt lazily after
        # every invalidation.
        self._neighbour_index_cache: Dict[
            str, Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]
        ] = {}

    # ------------------------------------------------------------- caching

    def invalidate_caches(self) -> None:
        """Drop the prediction memo and the neighbour index.

        Called automatically by :meth:`fit` and :meth:`remember`; exposed
        for callers that mutate :attr:`submodels` directly (registry
        loaders, tests).
        """
        self._memo.clear()
        self._neighbour_index_cache.clear()

    @property
    def memo_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the quantised-feature memo since creation."""
        return (self._memo_hits, self._memo_misses)

    def _memo_get(self, key: Tuple) -> Optional[FallbackEstimate]:
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
            self._memo_hits += 1
        else:
            self._memo_misses += 1
        return hit

    def _memo_put(self, key: Tuple, value: FallbackEstimate) -> None:
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > self.MEMO_CAPACITY:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------ training

    @staticmethod
    def _targets(result: ExperimentResult, outputs: List[str]) -> np.ndarray:
        mapping = {"p_loss": result.p_loss, "p_duplicate": result.p_duplicate}
        return np.array([mapping[name] for name in outputs], dtype=np.float64)

    def fit(
        self,
        results: Sequence[ExperimentResult],
        settings: Optional[TrainingSettings] = None,
    ) -> Dict[Tuple[str, str], int]:
        """Train one submodel per (region, semantics) present in ``results``.

        Returns the number of training rows per submodel.  Regions or
        semantics with fewer than 8 rows are skipped (too little data to
        even overfit meaningfully); prediction for a missing submodel
        raises ``KeyError``.
        """
        if not results:
            raise ValueError("no training data")
        settings = settings if settings is not None else TrainingSettings()
        # Training rows double as the neighbour-fallback lookup table, so a
        # freshly trained predictor degrades gracefully out of the box.
        # (Registry persistence stores only the networks; reload and call
        # :meth:`remember` to rebuild the table from saved results.)
        self._memory.extend(results)
        self.invalidate_caches()
        groups: Dict[Tuple[str, str], List[ExperimentResult]] = {}
        for result in results:
            vector = FeatureVector.from_result(result)
            groups.setdefault(vector.submodel_key, []).append(result)
        counts: Dict[Tuple[str, str], int] = {}
        for key, rows in groups.items():
            if len(rows) < 8:
                continue
            counts[key] = len(rows)
            self._fit_submodel(key, rows, settings)
        if not self.submodels:
            raise ValueError("every submodel group had fewer than 8 rows")
        return counts

    def _fit_submodel(
        self,
        key: Tuple[str, str],
        rows: Sequence[ExperimentResult],
        settings: TrainingSettings,
    ) -> None:
        region, semantics_value = key
        semantics = DeliverySemantics.parse(semantics_value)
        schema = FeatureSchema(region, settings.physics_features)
        outputs = schema.output_columns(semantics)
        vectors = [FeatureVector.from_result(row) for row in rows]
        x = schema.encode_many(vectors)
        y = np.stack([self._targets(row, outputs) for row in rows])
        scaler = StandardScaler()
        x_scaled = scaler.fit_transform(x)
        rng = np.random.default_rng(settings.seed)
        count = x.shape[0]
        order = rng.permutation(count)
        val_count = max(1, int(round(count * settings.validation_fraction)))
        val_index, train_index = order[:val_count], order[val_count:]
        network = build_mlp(
            schema.input_dim,
            len(outputs),
            hidden=settings.hidden,
            seed=settings.seed,
        )
        network.fit(
            x_scaled[train_index],
            y[train_index],
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            optimizer=SGD(settings.learning_rate),
            loss="mse",
            validation=(x_scaled[val_index], y[val_index]),
            patience=settings.patience,
            rng=rng,
        )
        self.submodels[key] = SubModel(
            region, semantics, network, scaler, settings.physics_features
        )

    # ---------------------------------------------------------- prediction

    def submodel_for(self, vector: FeatureVector) -> SubModel:
        """Look up the submodel responsible for ``vector``."""
        key = vector.submodel_key
        submodel = self.submodels.get(key)
        if submodel is None:
            raise KeyError(
                f"no submodel trained for region={key[0]!r}, semantics={key[1]!r}"
            )
        return submodel

    def predict_vector(self, vector: FeatureVector) -> ReliabilityEstimate:
        """Predict the reliability metrics for one feature vector."""
        submodel = self.submodel_for(vector)
        row = submodel.schema.encode(vector)[None, :]
        outputs = submodel.predict_rows(row)[0]
        named = dict(zip(submodel.outputs, outputs))
        return ReliabilityEstimate(
            p_loss=float(named.get("p_loss", 0.0)),
            p_duplicate=float(named.get("p_duplicate", 0.0)),
        )

    def predict_scenario(self, scenario: Scenario) -> ReliabilityEstimate:
        """Predict for a testbed scenario (Eq. 1 with scenario inputs)."""
        return self.predict_vector(FeatureVector.from_scenario(scenario))

    # ------------------------------------------------------------ fallback

    def remember(self, results: Sequence[ExperimentResult]) -> int:
        """Retain measured rows for the nearest-neighbour fallback tier.

        Training already consumes measured results; remembering them (or
        any later measurements) keeps a plain lookup table the fallback
        chain can serve from when no submodel covers a query — e.g. a
        semantics/region combination that had too few training rows, or a
        predictor still warming up.  Returns the total remembered rows.
        """
        self._memory.extend(results)
        self.invalidate_caches()
        return len(self._memory)

    @property
    def remembered_rows(self) -> int:
        """Number of measured rows available to the neighbour fallback."""
        return len(self._memory)

    def _neighbour_distance(
        self, vector: FeatureVector, candidate: FeatureVector
    ) -> float:
        total = 0.0
        for name, scale in self._NEIGHBOUR_SCALES.items():
            delta = (getattr(vector, name) - getattr(candidate, name)) / scale
            total += delta * delta
        return total

    def _neighbour_index(
        self, semantics: DeliverySemantics
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Numpy view of the remembered rows under one semantics.

        Returns ``(features, p_loss, p_duplicate)`` where ``features`` has
        one column per :data:`_NEIGHBOUR_SCALES` entry and rows keep the
        memory (insertion) order — the tie-breaking order of the scalar
        scan.  Rebuilt lazily after every :meth:`invalidate_caches`.
        """
        cached = self._neighbour_index_cache.get(semantics.value, _UNBUILT)
        if cached is not _UNBUILT:
            return cached
        features: List[List[float]] = []
        p_loss: List[float] = []
        p_duplicate: List[float] = []
        names = list(self._NEIGHBOUR_SCALES)
        for row in self._memory:
            candidate = FeatureVector.from_result(row)
            if candidate.semantics is not semantics:
                continue
            features.append([getattr(candidate, name) for name in names])
            p_loss.append(row.p_loss)
            p_duplicate.append(row.p_duplicate)
        index: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]
        if not features:
            index = None
        else:
            index = (
                np.array(features, dtype=np.float64),
                np.array(p_loss, dtype=np.float64),
                np.array(p_duplicate, dtype=np.float64),
            )
        self._neighbour_index_cache[semantics.value] = index
        return index

    def _nearest_neighbour(
        self, vector: FeatureVector
    ) -> Optional[ReliabilityEstimate]:
        """Measured result closest to ``vector`` under the same semantics.

        Ties resolve to the earliest remembered row, so the tier is
        deterministic for a fixed memory.  The distances are computed over
        the whole memory at once with numpy, column by column in
        :data:`_NEIGHBOUR_SCALES` order so every per-row sum reproduces the
        sequential scalar accumulation bit for bit (``np.sum`` would not:
        it uses pairwise summation).
        """
        index = self._neighbour_index(vector.semantics)
        if index is None:
            return None
        features, p_loss, p_duplicate = index
        total: Optional[np.ndarray] = None
        for column, (name, scale) in enumerate(self._NEIGHBOUR_SCALES.items()):
            delta = (getattr(vector, name) - features[:, column]) / scale
            squared = delta * delta
            total = squared if total is None else total + squared
        pick = int(np.argmin(total))
        return ReliabilityEstimate(
            p_loss=min(1.0, max(0.0, float(p_loss[pick]))),
            p_duplicate=min(1.0, max(0.0, float(p_duplicate[pick]))),
        )

    def predict_with_fallback(self, vector: FeatureVector) -> FallbackEstimate:
        """Predict through the degradation chain, never raising ``KeyError``.

        Tier 1 is the trained ANN submodel (the normal path).  When no
        submodel covers the query, tier 2 answers with the measured result
        nearest in feature space under the same semantics.  With no usable
        memory either, tier 3 returns :data:`CONSERVATIVE_ESTIMATE` — a
        pessimistic constant that steers any downstream configuration
        search toward the safest settings.
        """
        try:
            return FallbackEstimate(self.predict_vector(vector), "ann")
        except KeyError:
            pass
        neighbour = self._nearest_neighbour(vector)
        if neighbour is not None:
            return FallbackEstimate(neighbour, "neighbour")
        return FallbackEstimate(CONSERVATIVE_ESTIMATE, "conservative")

    # ------------------------------------------------------- batched paths

    def predict_vectors(
        self,
        vectors: Sequence[FeatureVector],
        missing: str = "raise",
    ) -> List[Optional[ReliabilityEstimate]]:
        """Predict many feature vectors with one forward pass per submodel.

        Vectors are grouped by submodel key (region × semantics) and each
        group runs through :meth:`SubModel.predict_rows_batched`, so the
        Python-level network overhead is paid once per group instead of
        once per vector.  Entry ``i`` of the result is bitwise-identical
        to ``predict_vector(vectors[i])``.

        ``missing`` controls uncovered vectors: ``"raise"`` (default)
        raises the same ``KeyError`` as the scalar path; ``"none"`` leaves
        ``None`` in that slot so callers can chain into the fallback tiers.
        """
        if missing not in ("raise", "none"):
            raise ValueError(f"unknown missing policy {missing!r}")
        vectors = list(vectors)
        out: List[Optional[ReliabilityEstimate]] = [None] * len(vectors)
        keys: List[Optional[Tuple]] = [None] * len(vectors)
        pending: Dict[Tuple[str, str], List[int]] = {}
        for i, vector in enumerate(vectors):
            # The first two key elements ARE the submodel key, so one
            # quantised_key() call covers both routing and the memo probe.
            quantised = vector.quantised_key()
            keys[i] = quantised
            cached = self._memo_get(quantised)
            if cached is not None and cached.source == "ann":
                # An "ann" memo entry implies the submodel existed when it
                # was stored, and fit() invalidates the memo — so the
                # coverage check can be skipped on a hit.
                out[i] = cached.estimate
                continue
            key = quantised[:2]
            if key not in self.submodels:
                if missing == "raise":
                    raise KeyError(
                        f"no submodel trained for region={key[0]!r}, "
                        f"semantics={key[1]!r}"
                    )
                continue
            pending.setdefault(key, []).append(i)
        for key, indices in pending.items():
            submodel = self.submodels[key]
            rows = submodel.schema.encode_many([vectors[i] for i in indices])
            outputs = submodel.predict_rows_batched(rows)
            for slot, i in enumerate(indices):
                estimate = submodel.estimate_from_outputs(outputs[slot])
                out[i] = estimate
                self._memo_put(keys[i], FallbackEstimate(estimate, "ann"))
        return out

    def predict_with_fallback_batch(
        self, vectors: Sequence[FeatureVector]
    ) -> List[FallbackEstimate]:
        """Batched :meth:`predict_with_fallback`: never raises ``KeyError``.

        Entry ``i`` is bitwise-identical to
        ``predict_with_fallback(vectors[i])`` — covered vectors share one
        vectorised forward pass per submodel, uncovered ones take the
        numpy nearest-neighbour tier, and everything lands in the
        quantised-feature memo so repeated queries (hill-climb search
        revisiting the same candidates round after round) are O(1).
        """
        vectors = list(vectors)
        out: List[Optional[FallbackEstimate]] = [None] * len(vectors)
        keys: List[Optional[Tuple]] = [None] * len(vectors)
        pending: Dict[Tuple[str, str], List[int]] = {}
        uncovered: List[int] = []
        for i, vector in enumerate(vectors):
            quantised = vector.quantised_key()
            keys[i] = quantised
            cached = self._memo_get(quantised)
            if cached is not None:
                out[i] = cached
                continue
            key = quantised[:2]
            if key in self.submodels:
                pending.setdefault(key, []).append(i)
            else:
                uncovered.append(i)
        for key, indices in pending.items():
            submodel = self.submodels[key]
            rows = submodel.schema.encode_many([vectors[i] for i in indices])
            outputs = submodel.predict_rows_batched(rows)
            for slot, i in enumerate(indices):
                result = FallbackEstimate(
                    submodel.estimate_from_outputs(outputs[slot]), "ann"
                )
                out[i] = result
                self._memo_put(keys[i], result)
        for i in uncovered:
            neighbour = self._nearest_neighbour(vectors[i])
            if neighbour is not None:
                result = FallbackEstimate(neighbour, "neighbour")
            else:
                result = FallbackEstimate(CONSERVATIVE_ESTIMATE, "conservative")
            out[i] = result
            self._memo_put(keys[i], result)
        return out

    # ---------------------------------------------------------- evaluation

    def evaluate(
        self, results: Sequence[ExperimentResult]
    ) -> Dict[str, float]:
        """MAE of the predictor against measured hold-out results.

        Returns per-output MAE plus ``"overall"`` — the figure the paper
        reports as "below 0.02".
        """
        errors: Dict[str, List[float]] = {"p_loss": [], "p_duplicate": []}
        for result in results:
            vector = FeatureVector.from_result(result)
            estimate = self.predict_vector(vector)
            errors["p_loss"].append(abs(estimate.p_loss - result.p_loss))
            if vector.semantics is not DeliverySemantics.AT_MOST_ONCE:
                errors["p_duplicate"].append(
                    abs(estimate.p_duplicate - result.p_duplicate)
                )
        report = {
            name: float(np.mean(values))
            for name, values in errors.items()
            if values
        }
        all_errors = [e for values in errors.values() for e in values]
        if not all_errors:
            raise ValueError("no evaluable results")
        report["overall"] = float(np.mean(all_errors))
        return report
