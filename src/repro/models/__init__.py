"""The paper's primary contribution: the reliability prediction framework.

``ReliabilityPredictor`` realises Eq. 1 — an ANN family mapping
``(M, S, D, L, Confs)`` to ``(P̂_l, P̂_d)`` — with the Fig. 3 submodel
split (normal/abnormal network region × delivery semantics).
``train_reliability_model`` runs the full collect → train → evaluate
pipeline, and ``ModelRegistry`` persists trained predictors.
"""

from .features import ABNORMAL, FeatureSchema, FeatureVector, NORMAL, region_of
from .predictor import (
    CONSERVATIVE_ESTIMATE,
    FallbackEstimate,
    ReliabilityEstimate,
    ReliabilityPredictor,
    SubModel,
    TrainingSettings,
)
from .registry import ModelRegistry
from .training import TrainedModelReport, split_results, train_reliability_model

__all__ = [
    "FeatureSchema",
    "FeatureVector",
    "NORMAL",
    "ABNORMAL",
    "region_of",
    "ReliabilityEstimate",
    "FallbackEstimate",
    "CONSERVATIVE_ESTIMATE",
    "ReliabilityPredictor",
    "SubModel",
    "TrainingSettings",
    "ModelRegistry",
    "TrainedModelReport",
    "train_reliability_model",
    "split_results",
]
