"""Persisted-predictor registry.

A trained :class:`~repro.models.predictor.ReliabilityPredictor` is a set
of submodels; the registry lays them out on disk so benches and the
dynamic-configuration controller can reuse a model trained in an earlier
session instead of re-collecting data.

Layout::

    <root>/<name>/
      manifest.json            # submodel keys and scaler states
      <region>__<semantics>/   # one ANN per submodel (architecture + weights)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from ..ann.scaling import StandardScaler
from ..ann.serialize import load_model, save_model
from ..kafka.semantics import DeliverySemantics
from .predictor import ReliabilityPredictor, SubModel

__all__ = ["ModelRegistry"]

_MANIFEST = "manifest.json"


class ModelRegistry:
    """Saves and loads named predictors under a root directory."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)

    def _model_dir(self, name: str) -> Path:
        if not name or "/" in name:
            raise ValueError(f"invalid model name {name!r}")
        return self.root / name

    def list_models(self) -> List[str]:
        """Names of models currently stored."""
        if not self.root.exists():
            return []
        return sorted(
            path.name
            for path in self.root.iterdir()
            if (path / _MANIFEST).exists()
        )

    def save(self, name: str, predictor: ReliabilityPredictor) -> Path:
        """Persist ``predictor`` as ``name`` (overwrites)."""
        if not predictor.submodels:
            raise ValueError("refusing to save an untrained predictor")
        directory = self._model_dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Dict] = {}
        for (region, semantics), submodel in predictor.submodels.items():
            key = f"{region}__{semantics}"
            save_model(submodel.network, directory / key)
            manifest[key] = {
                "region": region,
                "semantics": semantics,
                "scaler": submodel.scaler.to_dict(),
                "physics_features": submodel.schema.physics_features,
            }
        (directory / _MANIFEST).write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        return directory

    def load(self, name: str) -> ReliabilityPredictor:
        """Load the predictor stored as ``name``."""
        directory = self._model_dir(name)
        manifest_path = directory / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"no model named {name!r} under {self.root}")
        manifest = json.loads(manifest_path.read_text())
        predictor = ReliabilityPredictor()
        for key, entry in manifest.items():
            network = load_model(directory / key)
            submodel = SubModel(
                region=entry["region"],
                semantics=DeliverySemantics.parse(entry["semantics"]),
                network=network,
                scaler=StandardScaler.from_dict(entry["scaler"]),
                physics_features=entry.get("physics_features", True),
            )
            predictor.submodels[(entry["region"], entry["semantics"])] = submodel
        return predictor

    def delete(self, name: str) -> None:
        """Remove a stored model."""
        import shutil

        directory = self._model_dir(name)
        if directory.exists():
            shutil.rmtree(directory)
