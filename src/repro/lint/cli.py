"""``repro lint`` subcommand: argument wiring and the run entry point.

Kept inside the lint package so ``repro/cli.py`` stays a thin
dispatcher; :func:`configure_parser` attaches the arguments to the
subparser the top-level CLI creates, and :func:`run` executes a lint
invocation and returns the process exit code (0 = clean, 1 = new
findings at/above the fail level, 2 = usage error).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .engine import lint_paths
from .finding import Severity
from .report import json_report, render_human, render_json
from .rules import default_rules, rule_classes

__all__ = ["DEFAULT_BASELINE", "DEFAULT_PATHS", "configure_parser", "run"]

#: Default scan roots, relative to the invocation directory.
DEFAULT_PATHS = ("src/repro",)

#: Default committed baseline location (repo root).
DEFAULT_BASELINE = "lint-baseline.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint`` arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=f"files or directories to scan (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human",
        help="report format on stdout (default: human)",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing file "
             f"= empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: every finding gates",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record all current findings into the baseline file and "
             "exit 0",
    )
    parser.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--fail-on", choices=["error", "warning", "never"], default="error",
        help="minimum severity of a new finding that fails the run "
             "(default: error)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def _list_rules() -> int:
    for cls in rule_classes():
        scope = (
            ", ".join(cls.default_scope) if cls.default_scope else "all files"
        )
        print(f"{cls.id}  {cls.name:<18} {cls.severity.value:<7} {scope}")
        print(f"         {cls.description}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute one ``repro lint`` invocation."""
    if args.list_rules:
        return _list_rules()

    try:
        only = (
            [part.strip() for part in args.rules.split(",") if part.strip()]
            if args.rules
            else None
        )
        rules = default_rules(only=only)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths: List[str] = list(args.paths) if args.paths else list(DEFAULT_PATHS)
    try:
        result = lint_paths(paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(result.findings)} finding(s) recorded)"
        )
        return 0

    baseline: Optional[Baseline] = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if baseline is not None:
        new, baselined = baseline.split(result.findings)
        result.findings = new
    else:
        baselined = []

    fail_on = (
        None if args.fail_on == "never" else Severity.parse(args.fail_on)
    )
    effective_fail = fail_on if fail_on is not None else Severity.ERROR
    document = json_report(
        result, baselined, rules, paths, fail_on=effective_fail
    )
    if fail_on is None:
        document["ok"] = True

    if args.out:
        Path(args.out).write_text(render_json(document), encoding="utf-8")
    if args.format == "json":
        sys.stdout.write(render_json(document))
    else:
        sys.stdout.write(render_human(result, baselined, effective_fail))

    if fail_on is None:
        return 0
    gating = [
        f for f in result.findings if f.severity.rank >= fail_on.rank
    ]
    return 1 if gating else 0
