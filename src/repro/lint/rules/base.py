"""Rule base class, lint context, and the rule registry.

A rule is a small AST checker: it declares which node types it wants
(``node_types``), which dotted package prefixes it applies to
(``scope``; ``None`` = every scanned file) and yields
:class:`~repro.lint.finding.Finding` objects from :meth:`check`.  The
engine walks each module's AST exactly once and dispatches every node
to the rules subscribed to its type.

Adding a rule (see DESIGN.md §9):

1. subclass :class:`Rule` in one of the modules under
   ``repro/lint/rules/`` and decorate it with :func:`register`,
2. add a violating + clean fixture pair under
   ``tests/unit/lint_fixtures/`` and a row in the rule table of
   ``tests/unit/test_lint_rules.py``,
3. document it in DESIGN.md §9.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..finding import Finding, Severity

__all__ = [
    "DETERMINISTIC_PACKAGES",
    "LintContext",
    "Rule",
    "default_rules",
    "register",
    "rule_classes",
]

#: Packages whose code runs inside the simulated clock: everything here
#: must draw randomness from seeded streams and never read the host
#: wall clock, or seed/trace reproducibility silently breaks.
DETERMINISTIC_PACKAGES: Tuple[str, ...] = (
    "repro.simulation",
    "repro.kafka",
    "repro.chaos",
    "repro.network",
    "repro.workloads",
)


class LintContext:
    """Per-file state handed to every rule check.

    Parameters
    ----------
    path:
        Repo-relative POSIX path of the file (used verbatim in findings).
    module:
        Dotted module name (``repro.kafka.producer``); rules use it for
        scope tests.  Files outside a package lint as their bare stem.
    source_lines:
        The file's source split into lines (1-based access via
        :meth:`line`).
    tree:
        The parsed module, already annotated with parent links.
    """

    def __init__(
        self,
        path: str,
        module: str,
        source_lines: Sequence[str],
        tree: ast.Module,
    ) -> None:
        self.path = path
        self.module = module
        self.source_lines = source_lines
        self.tree = tree
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def inside_sorted_call(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside a ``sorted(...)`` argument.

        The walk stops at statement boundaries, so a ``sorted`` call
        elsewhere in the function never launders an unrelated iteration.
        """
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return False
            if isinstance(ancestor, ast.Call):
                func = ancestor.func
                if isinstance(func, ast.Name) and func.id == "sorted":
                    return True
        return False


class Rule:
    """Base class for lint rules."""

    #: Stable identifier, e.g. ``"REPRO105"`` (used in suppressions,
    #: baselines and reports).
    id: str = ""
    #: Short kebab-case name shown next to the id.
    name: str = ""
    #: One-line description for ``repro lint --list-rules``.
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Dotted package prefixes this rule applies to; ``None`` = all.
    default_scope: Optional[Tuple[str, ...]] = None
    #: AST node classes the engine dispatches to :meth:`check`.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        self.scope = self.default_scope if scope is None else scope

    def applies_to(self, module: str) -> bool:
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, node: ast.AST, ctx: LintContext, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            name=self.name,
            severity=self.severity,
            path=ctx.path,
            line=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=ctx.line(lineno).strip(),
        )


_RULE_CLASSES: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must set id and name")
    if any(existing.id == cls.id for existing in _RULE_CLASSES):
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULE_CLASSES.append(cls)
    return cls


def rule_classes() -> List[Type[Rule]]:
    """All registered rule classes, ordered by rule id."""
    return sorted(_RULE_CLASSES, key=lambda cls: cls.id)


def default_rules(
    only: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Fresh instances of the registered rules (optionally filtered)."""
    selected = rule_classes()
    if only is not None:
        wanted = set(only)
        unknown = wanted - {cls.id for cls in selected}
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        selected = [cls for cls in selected if cls.id in wanted]
    return [cls() for cls in selected]
