"""Codec rule: scenario/config dataclass fields must round-trip.

The parallel engine ships scenarios to spawn workers as *field-diff*
payloads (:func:`repro.testbed.runner._encode_scenario`): only fields
differing from the defaults cross the process boundary, nested configs
are diffed recursively, and enums travel as their ``.value``.  That
codec can only rehydrate fields whose types it understands — scalars,
``Optional`` scalars, known enums and the known nested config
dataclasses.  A field of any other type (dict, list, callable, ...)
would silently pickle on the serial path and corrupt or crash on the
pool path, so this rule rejects it at lint time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..finding import Finding
from .base import LintContext, Rule, register

__all__ = ["CodecFieldRule"]


@register
class CodecFieldRule(Rule):
    """REPRO301: codec-unsafe field on a wire-crossing config dataclass."""

    id = "REPRO301"
    name = "codec-field"
    description = (
        "config dataclass field whose type the field-diff scenario "
        "codec cannot round-trip"
    )
    #: Modules whose dataclasses cross the worker boundary via the
    #: field-diff codec.
    default_scope: Optional[Tuple[str, ...]] = (
        "repro.testbed.scenario",
        "repro.kafka.config",
    )
    node_types = (ast.ClassDef,)

    #: Scalar annotation names the codec ships verbatim.
    SCALARS = {"int", "float", "str", "bool", "bytes", "None"}
    #: Enum / nested-dataclass names the codec knows how to diff and
    #: rehydrate (see ``runner._NESTED_FIELDS`` and enum handling).
    CODEC_CLASSES = {
        "DeliverySemantics",
        "ProducerConfig",
        "HardwareProfile",
        "BrokerConfig",
    }
    _WRAPPERS = {"Optional", "Tuple", "tuple", "Union"}

    def _annotation_ok(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            if node.value is None:
                return True
            if isinstance(node.value, str):
                # Quoted annotation: parse and recurse.
                try:
                    parsed = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return False
                return self._annotation_ok(parsed)
            return False
        if isinstance(node, ast.Name):
            return node.id in self.SCALARS or node.id in self.CODEC_CLASSES
        if isinstance(node, ast.Attribute):
            return node.attr in self.CODEC_CLASSES
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._annotation_ok(node.left) and self._annotation_ok(
                node.right
            )
        if isinstance(node, ast.Subscript):
            base = node.value
            base_name = (
                base.id if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute)
                else None
            )
            if base_name not in self._WRAPPERS:
                return False
            inner = node.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            return all(
                self._annotation_ok(element)
                or (isinstance(element, ast.Constant) and element.value is Ellipsis)
                for element in elements
            )
        return False

    def _is_dataclass(self, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = (
                target.id if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute)
                else None
            )
            if name == "dataclass":
                return True
        return False

    def check(self, node: ast.ClassDef, ctx: LintContext) -> Iterator[Finding]:
        if not self._is_dataclass(node):
            return
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            annotation = statement.annotation
            # ClassVar fields never cross the wire.
            if (
                isinstance(annotation, ast.Subscript)
                and isinstance(annotation.value, ast.Name)
                and annotation.value.id == "ClassVar"
            ):
                continue
            if not self._annotation_ok(annotation):
                target = statement.target
                field_name = (
                    target.id if isinstance(target, ast.Name) else "<field>"
                )
                rendered = ast.unparse(annotation)
                yield self.finding(
                    statement, ctx,
                    f"field '{field_name}: {rendered}' of dataclass "
                    f"'{node.name}' cannot round-trip through the "
                    f"field-diff scenario codec; use scalars, Optional "
                    f"scalars, tuples, or a registered config class",
                )
