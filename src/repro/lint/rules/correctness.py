"""Correctness rules: float equality, mutable defaults, pool closures."""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..finding import Finding
from .base import LintContext, Rule, register

__all__ = [
    "FloatEqualityRule",
    "MutableDefaultRule",
    "SpawnClosureRule",
]


@register
class FloatEqualityRule(Rule):
    """REPRO201: exact equality against a non-trivial float literal.

    ``x == 0.37`` is almost never what a numeric pipeline means — one
    rounding difference and the branch flips.  Compare through a
    tolerance helper (``math.isclose``, ``numpy.isclose``) instead.
    Exact comparison against ``0.0`` / ``1.0`` / ``inf`` sentinels is
    allowed: those are bit-exact states the code legitimately tests
    (e.g. "no jitter configured", "constant column").  Scoped to the
    ``repro`` source packages: in *tests*, exact float asserts are the
    repo's bit-identity contract and stay untouched.
    """

    id = "REPRO201"
    name = "float-equality"
    description = (
        "== / != against a non-sentinel float literal; use a tolerance "
        "helper"
    )
    default_scope = ("repro",)
    node_types = (ast.Compare,)

    _SENTINELS = (0.0, 1.0, -1.0, float("inf"), float("-inf"))

    def _is_hazard(self, node: ast.expr) -> bool:
        value = None
        if isinstance(node, ast.Constant):
            value = node.value
        elif (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
        ):
            operand = node.operand.value
            if isinstance(operand, float):
                value = -operand
        if not isinstance(value, float):
            return False
        return not any(value == sentinel for sentinel in self._SENTINELS)

    def check(self, node: ast.Compare, ctx: LintContext) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if self._is_hazard(side):
                    yield self.finding(
                        node, ctx,
                        "exact ==/!= against a float literal is one "
                        "rounding error away from flipping; use "
                        "math.isclose or an explicit tolerance",
                    )
                    return


@register
class MutableDefaultRule(Rule):
    """REPRO202: mutable default argument values.

    A ``def f(x, acc=[])`` default is created once and shared by every
    call — state leaks across experiments and across test runs.  Use
    ``None`` plus an in-body default, or ``dataclasses.field`` with a
    factory.
    """

    id = "REPRO202"
    name = "mutable-default"
    description = "mutable default argument (list/dict/set literal or call)"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = {
        "list", "dict", "set", "bytearray", "deque", "defaultdict",
        "OrderedDict", "Counter",
    }

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            return name in self._MUTABLE_CALLS
        return False

    def check(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda],
        ctx: LintContext,
    ) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                label = getattr(node, "name", "<lambda>")
                yield self.finding(
                    default, ctx,
                    f"mutable default in '{label}' is shared across "
                    f"calls; default to None (or a dataclass field "
                    f"factory) and build it in the body",
                )


@register
class SpawnClosureRule(Rule):
    """REPRO203: closures handed to the spawn pool.

    The experiment engine uses the ``spawn`` start method, so every
    callable crossing into a worker must pickle — lambdas and functions
    defined inside another function do not.  ``runner.py`` learned this
    the hard way: keep pool entry points at module top level.
    """

    id = "REPRO203"
    name = "spawn-closure"
    description = (
        "lambda or nested function submitted to a multiprocessing pool "
        "(unpicklable under spawn)"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _SUBMIT_METHODS = {
        "apply", "apply_async", "map", "map_async", "imap",
        "imap_unordered", "starmap", "starmap_async", "submit",
    }

    def check(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        ctx: LintContext,
    ) -> Iterator[Finding]:
        # Names bound to functions defined *inside* this function (one
        # level is enough: any nested def is closure-scoped).
        nested = {
            child.name
            for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node
        }
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            # Only report calls whose nearest enclosing function is this
            # one — nested functions get their own dispatch, so a call
            # inside one would otherwise be flagged twice.
            enclosing = next(
                (
                    ancestor
                    for ancestor in ctx.ancestors(call)
                    if isinstance(
                        ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                ),
                None,
            )
            if enclosing is not node:
                continue
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._SUBMIT_METHODS
            ):
                continue
            candidates = list(call.args[:1]) + [
                keyword.value
                for keyword in call.keywords
                if keyword.arg in ("func", "fn")
            ]
            for candidate in candidates:
                if isinstance(candidate, ast.Lambda):
                    yield self.finding(
                        candidate, ctx,
                        f"lambda passed to pool.{func.attr}() cannot "
                        f"pickle under the spawn start method; use a "
                        f"module-level function",
                    )
                elif (
                    isinstance(candidate, ast.Name)
                    and candidate.id in nested
                ):
                    yield self.finding(
                        candidate, ctx,
                        f"'{candidate.id}' is defined inside "
                        f"'{node.name}' and cannot pickle into a spawn "
                        f"pool worker; move it to module level",
                    )
