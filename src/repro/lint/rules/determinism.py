"""Determinism rules: randomness, clocks, hash order, serialization.

These encode the invariants the runtime suites assert (byte-identical
campaign reports, reproducible per-(point, replication) seeding) as
patterns that must not appear in the source at all.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..finding import Finding
from .base import DETERMINISTIC_PACKAGES, LintContext, Rule, register

__all__ = [
    "BuiltinHashRule",
    "FsOrderRule",
    "SetIterationRule",
    "UnseededRandomRule",
    "UnsortedJsonRule",
    "WallClockRule",
]


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute/name chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: ``numpy.random`` legacy global-state functions (module-level RNG):
#: calling these ties results to hidden global state even when a seed
#: appears somewhere else in the program.
_NUMPY_GLOBAL_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "exponential", "poisson", "binomial", "seed", "standard_normal",
}

#: ``random`` stdlib module functions backed by the hidden global RNG.
_STDLIB_RANDOM = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "triangular", "seed", "getrandbits",
    "paretovariate", "lognormvariate", "vonmisesvariate", "weibullvariate",
}


@register
class UnseededRandomRule(Rule):
    """REPRO101: global/unseeded RNGs inside the deterministic core.

    Everything under the simulated clock must draw from the run's
    seeded streams (:class:`repro.simulation.random.RngRegistry` or an
    explicitly threaded ``numpy.random.Generator``); module-level RNGs
    (``random.random()``, ``np.random.rand()``) and seedless
    ``default_rng()`` silently break per-scenario reproducibility.
    """

    id = "REPRO101"
    name = "unseeded-random"
    description = (
        "global or unseeded RNG call inside the deterministic core; "
        "draw from a seeded stream instead"
    )
    default_scope = DETERMINISTIC_PACKAGES
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2 and parts[1] in _STDLIB_RANDOM:
            yield self.finding(
                node, ctx,
                f"call to global-state '{dotted}()'; use a seeded "
                f"numpy Generator from the run's RngRegistry",
            )
            return
        if len(parts) >= 2 and parts[-2] == "random":
            # np.random.<fn> / numpy.random.<fn>
            if parts[-1] in _NUMPY_GLOBAL_RANDOM:
                yield self.finding(
                    node, ctx,
                    f"call to numpy legacy global RNG '{dotted}()'; "
                    f"thread a seeded Generator instead",
                )
                return
            if parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    node, ctx,
                    "default_rng() without a seed is entropy-seeded; "
                    "pass a seed or SeedSequence",
                )


@register
class WallClockRule(Rule):
    """REPRO102: host wall-clock reads inside the deterministic core.

    Simulated components must read :attr:`Simulator.now`; a host clock
    leaking into event times, seeds or reports makes every run unique.
    """

    id = "REPRO102"
    name = "wall-clock"
    description = (
        "wall-clock read inside the deterministic core; use the "
        "simulator clock"
    )
    default_scope = DETERMINISTIC_PACKAGES
    node_types = (ast.Call,)

    _CLOCK_CALLS = {
        "time.time", "time.monotonic", "time.perf_counter",
        "time.process_time", "time.time_ns", "time.monotonic_ns",
        "time.perf_counter_ns",
    }
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in self._CLOCK_CALLS:
            yield self.finding(
                node, ctx,
                f"'{dotted}()' reads the host clock; simulated components "
                f"must use the simulator's virtual time",
            )
            return
        parts = dotted.split(".")
        if (
            len(parts) >= 2
            and parts[-1] in self._DATETIME_ATTRS
            and parts[-2] in ("datetime", "date")
        ):
            yield self.finding(
                node, ctx,
                f"'{dotted}()' reads the host clock; timestamps in "
                f"deterministic code must come from the simulation",
            )


def _is_set_expr(node: ast.AST) -> Optional[str]:
    """Describe ``node`` when it is syntactically a set, else ``None``."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"{node.func.id}()"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra: |, &, -, ^ over at least one syntactic set.
        for side in (node.left, node.right):
            described = _is_set_expr(side)
            if described is not None:
                return f"set expression ({described} operand)"
    return None


@register
class SetIterationRule(Rule):
    """REPRO103: iterating a hash-ordered container.

    Set iteration order depends on ``PYTHONHASHSEED`` (for str keys) and
    on insertion history; any set-ordered loop that feeds seeds, traces
    or serialized reports breaks byte-identity across processes.  Wrap
    the iterable in ``sorted(...)`` to fix the order, or suppress with
    ``# repro: allow[REPRO103]`` where order provably cannot escape.
    """

    id = "REPRO103"
    name = "set-iteration"
    description = (
        "iteration over a set/frozenset; order depends on PYTHONHASHSEED "
        "— wrap in sorted(...)"
    )
    node_types = (ast.For, ast.comprehension)

    def check(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        iterable = node.iter
        described = _is_set_expr(iterable)
        if described is None:
            return
        if ctx.inside_sorted_call(iterable):
            return
        anchor = node if isinstance(node, ast.For) else iterable
        yield self.finding(
            anchor, ctx,
            f"iteration over {described} is hash-ordered; wrap it in "
            f"sorted(...) so downstream seeds/reports stay byte-identical",
        )


@register
class BuiltinHashRule(Rule):
    """REPRO104: ``hash()`` builtin on determinism-sensitive paths.

    ``hash(str)`` changes with ``PYTHONHASHSEED``, so anything derived
    from it (seeds, cache keys, report fields) differs between
    processes.  Use ``hashlib.blake2b`` like the runner/cache layers do.
    """

    id = "REPRO104"
    name = "builtin-hash"
    description = (
        "builtin hash() is PYTHONHASHSEED-dependent; derive keys with "
        "hashlib.blake2b"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            yield self.finding(
                node, ctx,
                "builtin hash() varies with PYTHONHASHSEED across "
                "processes; use hashlib.blake2b for stable keys",
            )


@register
class UnsortedJsonRule(Rule):
    """REPRO105: JSON serialization without ``sort_keys=True``.

    Key order in a dump reflects dict insertion history, which refactors
    silently change; every artifact this repo writes (campaign reports,
    manifests, plans, caches) promises byte-identity, so dumps must pin
    the order.
    """

    id = "REPRO105"
    name = "unsorted-json"
    description = "json.dump/json.dumps without sort_keys=True"

    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted not in ("json.dump", "json.dumps"):
            return
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                value = keyword.value
                if isinstance(value, ast.Constant) and value.value is False:
                    break  # explicit False: flag it
                return
            if keyword.arg is None:
                return  # **kwargs may carry sort_keys; give the benefit
        yield self.finding(
            node, ctx,
            f"{dotted}(...) without sort_keys=True leaks dict insertion "
            f"order into the artifact; pass sort_keys=True",
        )


@register
class FsOrderRule(Rule):
    """REPRO106: directory listings consumed in filesystem order.

    ``iterdir``/``glob``/``os.listdir`` yield entries in an order the
    filesystem chooses; any listing that feeds results, reports or cache
    scans must be wrapped in ``sorted(...)`` (or suppressed where order
    provably does not matter, e.g. bulk deletion).
    """

    id = "REPRO106"
    name = "fs-order"
    description = (
        "directory listing consumed in filesystem order; wrap in "
        "sorted(...)"
    )
    node_types = (ast.Call,)

    _PATH_METHODS = {"iterdir", "glob", "rglob"}
    _OS_CALLS = {"os.listdir", "os.scandir", "os.walk"}

    def check(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        described = None
        if dotted in self._OS_CALLS:
            described = f"{dotted}()"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._PATH_METHODS
        ):
            described = f".{node.func.attr}()"
        if described is None:
            return
        if ctx.inside_sorted_call(node):
            return
        yield self.finding(
            node, ctx,
            f"{described} yields entries in filesystem order; wrap the "
            f"listing in sorted(...) before consuming it",
        )
