"""Rule registry: importing this package registers every shipped rule."""

from .base import (
    DETERMINISTIC_PACKAGES,
    LintContext,
    Rule,
    default_rules,
    register,
    rule_classes,
)
from . import codec, correctness, determinism  # noqa: F401  (registration)

__all__ = [
    "DETERMINISTIC_PACKAGES",
    "LintContext",
    "Rule",
    "default_rules",
    "register",
    "rule_classes",
]
