"""Determinism & correctness lint framework (``repro lint``).

The repo's headline guarantees — byte-identical campaign reports,
bitwise-identical batched vs. scalar prediction, reproducible
per-(point, replication) seeding — are asserted by runtime tests; this
package enforces the *coding patterns* those guarantees depend on
statically, before a change ever reaches the test suite:

* no unseeded randomness or wall-clock reads inside the deterministic
  core (``simulation``, ``kafka``, ``chaos``, ``network``,
  ``workloads``),
* no iteration over hash-ordered containers or ``PYTHONHASHSEED``-
  dependent ``hash()`` on paths that feed seeds, traces or serialized
  reports,
* no unsorted JSON serialization, float ``==``, mutable default
  arguments, unpicklable closures handed to the spawn pool, or config
  dataclass fields the field-diff scenario codec cannot round-trip.

Findings can be silenced inline (``# repro: allow[REPRO105]``) or
parked wholesale in a committed baseline file so legacy findings never
block CI while new ones always do.  See DESIGN.md §9 for the rule set
and how to add a rule.
"""

from .baseline import Baseline, finding_fingerprint
from .engine import LintResult, lint_paths, lint_source
from .finding import Finding, Severity
from .report import json_report, render_human
from .rules import DETERMINISTIC_PACKAGES, Rule, default_rules, rule_classes

__all__ = [
    "Baseline",
    "DETERMINISTIC_PACKAGES",
    "Finding",
    "LintResult",
    "Rule",
    "Severity",
    "default_rules",
    "finding_fingerprint",
    "json_report",
    "lint_paths",
    "lint_source",
    "render_human",
    "rule_classes",
]
