"""Human and JSON reporters for lint results.

The JSON report is itself a determinism-sensitive artifact (CI uploads
it), so it is fully sorted: findings by (path, line, col, rule), keys
alphabetically.  Schema (version 1)::

    {
      "version": 1,
      "tool": "repro-lint",
      "paths": [...],              # scanned roots, as given
      "files_scanned": int,
      "counts": {"new": n, "baselined": n, "suppressed": n},
      "rules": [{"id", "name", "severity", "description"}...],
      "findings": [Finding.to_dict()...],        # new findings only
      "baselined": [...], "suppressed": [...],
      "ok": bool                   # nothing gates at the fail level
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .engine import LintResult
from .finding import Finding, Severity
from .rules import Rule

__all__ = ["REPORT_VERSION", "json_report", "render_human"]

REPORT_VERSION = 1


def _gates(findings: Sequence[Finding], fail_on: Severity) -> bool:
    return any(f.severity.rank >= fail_on.rank for f in findings)


def json_report(
    result: LintResult,
    baselined: Sequence[Finding],
    rules: Sequence[Rule],
    paths: Sequence[str],
    fail_on: Severity = Severity.ERROR,
) -> Dict[str, Any]:
    """Build the schema-stable JSON document for one run."""
    return {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "paths": list(paths),
        "files_scanned": result.files_scanned,
        "counts": {
            "new": len(result.findings),
            "baselined": len(baselined),
            "suppressed": len(result.suppressed),
        },
        "rules": [
            {
                "id": rule.id,
                "name": rule.name,
                "severity": rule.severity.value,
                "description": rule.description,
            }
            for rule in sorted(rules, key=lambda r: r.id)
        ],
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in baselined],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "ok": not _gates(result.findings, fail_on),
    }


def render_json(document: Dict[str, Any]) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_human(
    result: LintResult,
    baselined: Sequence[Finding],
    fail_on: Severity = Severity.ERROR,
) -> str:
    """Compiler-style listing plus a one-line summary."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.severity.value} {finding.rule} [{finding.name}] "
            f"{finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"{result.files_scanned} file(s) scanned: "
        f"{len(result.findings)} new finding(s), "
        f"{len(baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    lines.append(summary)
    if result.findings and _gates(result.findings, fail_on):
        lines.append(
            "fix the finding, add '# repro: allow[RULE]' with a "
            "justification, or record it via --write-baseline"
        )
    return "\n".join(lines) + "\n"
