"""The lint engine: file discovery, AST dispatch, suppressions.

One parse and one AST walk per file; every node is dispatched to the
rules subscribed to its type.  Findings are then filtered through
inline suppressions (``# repro: allow[REPRO105]`` on the flagged line
or alone on the line above) and, by the CLI layer, through the
committed baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from .finding import Finding, Severity
from .rules import Rule, default_rules

__all__ = [
    "LintResult",
    "PARSE_ERROR_RULE",
    "discover_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
]

#: Rule id attached to findings for files that fail to parse.
PARSE_ERROR_RULE = "REPRO000"

#: Directories never scanned: deliberate-violation fixtures and caches.
DEFAULT_EXCLUDED_DIRS = ("lint_fixtures", "__pycache__", ".git")

_ALLOW_DIRECTIVE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[A-Za-z0-9_*,\s]+)\]"
)


@dataclass
class LintResult:
    """Outcome of one lint run (before baseline filtering)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_scanned += other.files_scanned

    def sort(self) -> None:
        self.findings.sort(key=lambda f: f.sort_key)
        self.suppressed.sort(key=lambda f: f.sort_key)


def _allowed_ids(line: str) -> Optional[Set[str]]:
    """Rule ids allowed by a ``# repro: allow[...]`` directive, if any."""
    match = _ALLOW_DIRECTIVE.search(line)
    if match is None:
        return None
    return {part.strip() for part in match.group("ids").split(",") if part.strip()}


def _is_suppressed(finding: Finding, source_lines: Sequence[str]) -> bool:
    """Inline suppression on the flagged line, or comment-only line above."""
    candidates = []
    if 1 <= finding.line <= len(source_lines):
        candidates.append(source_lines[finding.line - 1])
    if finding.line >= 2:
        above = source_lines[finding.line - 2]
        if above.strip().startswith("#"):
            candidates.append(above)
    for line in candidates:
        ids = _allowed_ids(line)
        if ids is not None and ("*" in ids or finding.rule in ids):
            return True
    return False


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (``src`` layout aware).

    ``src/repro/kafka/producer.py`` → ``repro.kafka.producer``; files
    outside a ``src`` root fall back to their bare stem, which keeps
    scoped rules quiet on scripts and test files.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def _display_path(path: Path) -> str:
    """Repo-relative POSIX path when possible, else the given path."""
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    module: Optional[str] = None,
) -> LintResult:
    """Lint one module given as text (the unit-test entry point)."""
    if rules is None:
        rules = default_rules()
    if module is None:
        module = module_name_for(Path(path))
    source_lines = source.splitlines()
    result = LintResult(files_scanned=1)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule=PARSE_ERROR_RULE,
                name="parse-error",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        )
        return result

    from .rules.base import LintContext

    ctx = LintContext(path, module, source_lines, tree)
    active = [rule for rule in rules if rule.applies_to(module)]
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if not dispatch:
        return result

    raw: List[Finding] = []
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            raw.extend(rule.check(node, ctx))
    for finding in raw:
        if _is_suppressed(finding, source_lines):
            result.suppressed.append(_mark_suppressed(finding))
        else:
            result.findings.append(finding)
    result.sort()
    return result


def _mark_suppressed(finding: Finding) -> Finding:
    return Finding(
        rule=finding.rule,
        name=finding.name,
        severity=finding.severity,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        message=finding.message,
        snippet=finding.snippet,
        suppressed=True,
    )


def discover_files(
    paths: Iterable[Path],
    excluded_dirs: Tuple[str, ...] = DEFAULT_EXCLUDED_DIRS,
) -> List[Path]:
    """Python files under ``paths``, deterministically ordered."""
    found: Set[Path] = set()
    for root in paths:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py":
                found.add(root)
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {root}")
        for candidate in sorted(root.rglob("*.py")):
            if any(part in excluded_dirs for part in candidate.parts):
                continue
            found.add(candidate)
    return sorted(found)


def lint_paths(
    paths: Sequence["str | Path"],
    rules: Optional[Sequence[Rule]] = None,
    excluded_dirs: Tuple[str, ...] = DEFAULT_EXCLUDED_DIRS,
) -> LintResult:
    """Lint every Python file under ``paths``."""
    if rules is None:
        rules = default_rules()
    result = LintResult()
    for file_path in discover_files([Path(p) for p in paths], excluded_dirs):
        file_result = lint_source(
            file_path.read_text(encoding="utf-8"),
            path=_display_path(file_path),
            rules=rules,
            module=module_name_for(file_path),
        )
        result.extend(file_result)
    result.sort()
    return result
