"""Finding and severity types shared by the lint engine and reporters."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


class Severity(enum.Enum):
    """How strongly a rule's finding gates the lint run.

    ``ERROR`` findings fail the run under the default ``--fail-on error``;
    ``WARNING`` findings are reported but only gate under
    ``--fail-on warning``.
    """

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return 1 if self is Severity.ERROR else 0

    @classmethod
    def parse(cls, text: str) -> "Severity":
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(f"unknown severity {text!r}")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative with POSIX separators so reports are
    byte-identical across operating systems and checkout locations.
    ``snippet`` is the stripped source line — it anchors the baseline
    fingerprint, so a finding stays baselined when code above it moves
    but resurfaces when the flagged line itself changes.
    """

    rule: str
    name: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
