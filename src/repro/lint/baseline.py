"""Committed lint baseline: park legacy findings without blocking CI.

A baseline entry fingerprints a finding by *rule id + file path + a
BLAKE2b hash of the flagged source line* (not the line number), so a
baselined finding survives unrelated edits above it but resurfaces the
moment the flagged line itself changes.  The file is JSON with sorted
keys, so regenerating it on an unchanged tree is a no-op diff.

Workflow:

* ``repro lint --write-baseline`` records every currently-active
  finding (do this once when adopting a new rule over legacy code),
* CI runs ``repro lint`` with the committed baseline: old findings are
  reported as *baselined* and do not gate; any new finding fails,
* shrink the baseline over time by fixing entries and regenerating.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple

from .finding import Finding

__all__ = ["Baseline", "finding_fingerprint"]

_VERSION = 1


def finding_fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across line-number drift."""
    line_hash = hashlib.blake2b(
        finding.snippet.strip().encode("utf-8"), digest_size=8
    ).hexdigest()
    return f"{finding.rule}:{finding.path}:{line_hash}"


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(self, entries: Counter = None) -> None:
        self.entries: Counter = Counter(entries or {})

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{payload.get('version')!r}"
            )
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"malformed baseline file {path}")
        return cls(Counter({str(k): int(v) for k, v in entries.items()}))

    def save(self, path: "str | Path") -> None:
        payload = {
            "version": _VERSION,
            "entries": {key: count for key, count in sorted(self.entries.items())},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(Counter(finding_fingerprint(f) for f in findings))

    def split(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, baselined).

        Each baseline entry absorbs at most its recorded count of
        matching findings, so adding a *second* occurrence of a
        baselined pattern to the same file still fails the run.
        """
        remaining = Counter(self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = finding_fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(_mark_baselined(finding))
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.entries.values())


def _mark_baselined(finding: Finding) -> Finding:
    return Finding(
        rule=finding.rule,
        name=finding.name,
        severity=finding.severity,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        message=finding.message,
        snippet=finding.snippet,
        baselined=True,
    )
