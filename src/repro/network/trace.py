"""Time-varying network condition traces (paper Fig. 9).

The dynamic-configuration experiment of Section V runs the producer under a
network whose one-way delay follows a Pareto distribution and whose packet
loss rate is driven by a Gilbert–Elliott two-state Markov chain.  This
module generates such traces as a sequence of per-interval samples that can
be (a) plotted (Fig. 9), (b) replayed onto a link through the
:class:`~repro.network.faults.FaultInjector`, and (c) fed to the dynamic
configuration controller as the "known network status" the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from .faults import FaultInjector, NetworkFault
from .latency import ParetoLatency
from .loss import GilbertElliottLoss

__all__ = ["TracePoint", "NetworkTrace", "GilbertElliottRateProcess", "generate_paper_trace"]


@dataclass
class TracePoint:
    """Network conditions during one trace interval."""

    time_s: float
    delay_s: float
    loss_rate: float


@dataclass
class NetworkTrace:
    """A piecewise-constant network condition timeline."""

    interval_s: float
    points: List[TracePoint] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Total trace duration."""
        return len(self.points) * self.interval_s

    def at(self, time_s: float) -> TracePoint:
        """Return the conditions in effect at ``time_s`` (clamped to ends)."""
        if not self.points:
            raise ValueError("empty trace")
        index = int(time_s // self.interval_s)
        index = min(max(index, 0), len(self.points) - 1)
        return self.points[index]

    def __iter__(self) -> Iterator[TracePoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def mean_delay_s(self) -> float:
        """Average one-way delay across the trace."""
        return float(np.mean([p.delay_s for p in self.points]))

    def mean_loss_rate(self) -> float:
        """Average loss rate across the trace."""
        return float(np.mean([p.loss_rate for p in self.points]))

    def schedule_on(self, injector: FaultInjector, bursty: bool = False) -> None:
        """Replay the trace as scheduled fault injections on a link."""
        for point in self.points:
            injector.inject_at(
                point.time_s,
                NetworkFault(delay_s=point.delay_s, loss_rate=point.loss_rate, bursty=bursty),
            )


class GilbertElliottRateProcess:
    """Per-interval loss *rate* process driven by a Gilbert–Elliott chain.

    The chain is stepped once per interval.  In the Good state the interval
    loss rate is drawn near ``good_rate``; in the Bad state near
    ``bad_rate``.  This mirrors how the paper derives a piecewise loss-rate
    signal from the G-E link model.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.10,
        p_bad_to_good: float = 0.30,
        good_rate: float = 0.01,
        bad_rate: float = 0.18,
        rate_jitter: float = 0.03,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name, value in (("good_rate", good_rate), ("bad_rate", bad_rate)):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if bad_rate < good_rate:
            raise ValueError(
                f"bad_rate ({bad_rate}) must be >= good_rate ({good_rate}); "
                f"an inverted pair silently flips the chain's meaning"
            )
        if rate_jitter < 0:
            raise ValueError(f"rate_jitter must be non-negative, got {rate_jitter}")
        self._chain = GilbertElliottLoss(p_good_to_bad, p_bad_to_good)
        self.good_rate = float(good_rate)
        self.bad_rate = float(bad_rate)
        self.rate_jitter = float(rate_jitter)

    def sample(self, rng: np.random.Generator) -> float:
        """Advance one interval and return its loss rate."""
        state = self._chain.step(rng)
        base = self.bad_rate if state == GilbertElliottLoss.BAD else self.good_rate
        rate = base + rng.uniform(-self.rate_jitter, self.rate_jitter)
        return float(min(0.95, max(0.0, rate)))


def generate_paper_trace(
    rng: np.random.Generator,
    duration_s: float = 600.0,
    interval_s: float = 10.0,
    delay_scale_s: float = 0.020,
    delay_shape: float = 2.0,
    delay_cap_s: float = 0.400,
    rate_process: Optional[GilbertElliottRateProcess] = None,
) -> NetworkTrace:
    """Generate the Fig. 9-style trace: Pareto delay + G-E loss rate.

    Parameters mirror the paper's setup: delays cluster at tens of
    milliseconds with a heavy tail to hundreds, and the loss rate
    alternates between a near-clean regime and bursty 10–20 % episodes.
    """
    if duration_s <= 0 or interval_s <= 0:
        raise ValueError("duration and interval must be positive")
    delay_model = ParetoLatency(delay_scale_s, delay_shape, cap_s=delay_cap_s)
    process = rate_process if rate_process is not None else GilbertElliottRateProcess()
    trace = NetworkTrace(interval_s=interval_s)
    steps = int(round(duration_s / interval_s))
    for step in range(steps):
        trace.points.append(
            TracePoint(
                time_s=step * interval_s,
                delay_s=delay_model.sample(rng),
                loss_rate=process.sample(rng),
            )
        )
    return trace
