"""NetEm-style fault injection for the simulated link.

In the paper's testbed, network faults (extra delay, packet loss) are
injected with the Linux NetEm emulator while the producer runs, and removed
before the consumer reconciles the topic.  :class:`FaultInjector` plays the
same role for a simulated :class:`~repro.network.link.Link`: it installs
delay/loss treatments on both directions, can be rescheduled mid-run, and
restores the baseline treatments on :meth:`clear`.

It also implements the paper's future-work scenario of broker failures:
:meth:`crash_broker` / :meth:`restore_broker` toggle a broker's availability
through a callback interface so the Kafka substrate does not depend on this
module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..observability.trace import EventKind
from ..simulation.simulator import Simulator
from .latency import ConstantLatency, LatencyModel
from .link import Link
from .loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss

__all__ = ["NetworkFault", "FaultInjector"]


class _TracedLoss(LossModel):
    """Wraps a Gilbert–Elliott chain and traces its state flips.

    Pure observation: delegates sampling to the wrapped model (consuming
    exactly the same RNG stream) and emits a ``channel_state`` record
    whenever the chain changes state, so traces show the loss bursts the
    dynamic-configuration controller is reacting to.  Installed only when
    tracing is enabled.
    """

    def __init__(self, inner: GilbertElliottLoss, tracer, clock, direction: str) -> None:
        self._inner = inner
        self._tracer = tracer
        self._clock = clock
        self._direction = direction

    def is_lost(self, rng) -> bool:
        before = self._inner.state
        lost = self._inner.is_lost(rng)
        after = self._inner.state
        if after != before:
            self._tracer.emit(
                EventKind.CHANNEL_STATE,
                self._clock.now,
                direction=self._direction,
                state="bad" if after == GilbertElliottLoss.BAD else "good",
            )
        return lost

    def expected_loss_rate(self) -> float:
        return self._inner.expected_loss_rate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TracedLoss({self._inner!r})"


@dataclass
class NetworkFault:
    """A NetEm-style treatment description.

    Attributes
    ----------
    delay_s:
        Extra one-way propagation delay (NetEm ``delay``).
    loss_rate:
        Independent per-packet loss probability (NetEm ``loss``).
    jitter_s:
        Optional uniform jitter added to ``delay_s``.
    bursty:
        When True, ``loss_rate`` is realised through a Gilbert–Elliott chain
        with the given mean instead of independent Bernoulli drops.
    burst_length:
        Mean number of consecutive packets lost per bad burst (only used
        when ``bursty``).
    """

    delay_s: float = 0.0
    loss_rate: float = 0.0
    jitter_s: float = 0.0
    bursty: bool = False
    burst_length: float = 4.0

    def __post_init__(self) -> None:
        for name in ("delay_s", "loss_rate", "jitter_s", "burst_length"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.jitter_s < 0:
            raise ValueError(f"jitter_s must be non-negative, got {self.jitter_s}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1) — a rate of 1 would sever the "
                f"link forever; got {self.loss_rate}"
            )
        if self.burst_length < 1.0:
            raise ValueError(
                f"burst_length is a mean burst of consecutive packets and "
                f"must be >= 1, got {self.burst_length}"
            )

    def build_latency(self) -> LatencyModel:
        """Materialise the delay treatment as a latency model."""
        if self.jitter_s > 0:
            from .latency import UniformLatency

            return UniformLatency(self.delay_s, min(self.jitter_s, self.delay_s))
        return ConstantLatency(self.delay_s)

    def build_loss(self) -> LossModel:
        """Materialise the loss treatment as a loss model."""
        if self.loss_rate == 0.0:
            return NoLoss()
        if not self.bursty:
            return BernoulliLoss(self.loss_rate)
        # Choose Gilbert-Elliott parameters with the requested stationary
        # loss rate and mean burst length: pi_bad = loss_rate (loss_bad=1),
        # mean bad sojourn = burst_length packets.  Extreme rates saturate
        # the chain (p_good_to_bad capped at 1); the residual loss is then
        # carried by the good state so the stationary rate still matches.
        p_bad_to_good = 1.0 / self.burst_length
        pi_bad = self.loss_rate
        p_good_to_bad = min(
            1.0, p_bad_to_good * pi_bad / max(1e-12, (1.0 - pi_bad))
        )
        achieved_pi = p_good_to_bad / (p_good_to_bad + p_bad_to_good)
        loss_good = 0.0
        if achieved_pi < pi_bad - 1e-12:
            loss_good = (pi_bad - achieved_pi) / (1.0 - achieved_pi)
        return GilbertElliottLoss(
            p_good_to_bad=p_good_to_bad,
            p_bad_to_good=p_bad_to_good,
            loss_good=loss_good,
            loss_bad=1.0,
        )


class FaultInjector:
    """Applies and removes network faults on a link, NetEm style.

    Parameters
    ----------
    sim:
        The simulator (used for scheduled injections).
    link:
        The producer↔cluster link to manipulate.
    both_directions:
        Whether treatments apply to the reverse direction too (NetEm on the
        bridge affects both; NetEm on one veth affects one).
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        both_directions: bool = True,
        telemetry=None,
    ) -> None:
        self._sim = sim
        self._link = link
        self._both = both_directions
        self._baseline_latency = (link.forward.latency, link.reverse.latency)
        self._baseline_loss = (link.forward.loss, link.reverse.loss)
        self.active_fault: Optional[NetworkFault] = None
        self._broker_callbacks: List[Callable[[str, bool], None]] = []
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._metrics = telemetry.metrics if telemetry is not None else None

    def _build_loss(self, fault: NetworkFault, direction: str) -> LossModel:
        """Materialise the fault's loss model, traced when telemetry is on."""
        loss = fault.build_loss()
        if self._tracer is not None and isinstance(loss, GilbertElliottLoss):
            return _TracedLoss(loss, self._tracer, self._sim, direction)
        return loss

    def inject(self, fault: NetworkFault) -> None:
        """Apply ``fault`` immediately (replacing any active fault)."""
        self.active_fault = fault
        if self._metrics is not None:
            self._metrics.counter("faults.injected").inc()
        if self._tracer is not None:
            self._tracer.emit(
                EventKind.FAULT,
                self._sim.now,
                action="inject",
                delay_s=fault.delay_s,
                loss_rate=fault.loss_rate,
                bursty=fault.bursty,
            )
        self._link.forward.latency = fault.build_latency()
        self._link.forward.loss = self._build_loss(fault, "forward")
        if self._both:
            self._link.reverse.latency = fault.build_latency()
            # Separate loss-model instance: stateful chains must not be
            # shared between directions.
            self._link.reverse.loss = self._build_loss(fault, "reverse")

    def inject_at(self, time: float, fault: NetworkFault) -> None:
        """Schedule ``fault`` to be applied at absolute simulated time."""
        self._sim.schedule_at(time, self.inject, fault)

    def clear(self) -> None:
        """Restore the baseline (pre-fault) treatments."""
        self.active_fault = None
        if self._tracer is not None:
            self._tracer.emit(EventKind.FAULT, self._sim.now, action="clear")
        self._link.forward.latency, self._link.reverse.latency = self._baseline_latency
        self._link.forward.loss, self._link.reverse.loss = self._baseline_loss

    def clear_at(self, time: float) -> None:
        """Schedule :meth:`clear` at absolute simulated time."""
        self._sim.schedule_at(time, self.clear)

    # ----------------------------------------------------- broker failures

    def on_broker_availability(self, callback: Callable[[str, bool], None]) -> None:
        """Register ``callback(broker_id, available)`` for crash/restore."""
        self._broker_callbacks.append(callback)

    def crash_broker(self, broker_id: str) -> None:
        """Mark a broker as failed; the cluster stops serving from it."""
        if self._tracer is not None:
            self._tracer.emit(
                EventKind.FAULT, self._sim.now, action="crash_broker", broker=broker_id
            )
        for callback in self._broker_callbacks:
            callback(broker_id, False)

    def restore_broker(self, broker_id: str) -> None:
        """Bring a crashed broker back."""
        if self._tracer is not None:
            self._tracer.emit(
                EventKind.FAULT, self._sim.now, action="restore_broker", broker=broker_id
            )
        for callback in self._broker_callbacks:
            callback(broker_id, True)

    def crash_broker_at(self, time: float, broker_id: str) -> None:
        """Schedule a broker crash."""
        self._sim.schedule_at(time, self.crash_broker, broker_id)

    def restore_broker_at(self, time: float, broker_id: str) -> None:
        """Schedule a broker restore."""
        self._sim.schedule_at(time, self.restore_broker, broker_id)
