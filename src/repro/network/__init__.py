"""Simulated network substrate (the Docker bridge + NetEm analogue).

Provides the finite-capacity duplex :class:`Link`, latency models
(including the Pareto model of the paper's dynamic experiment), loss models
(Bernoulli and Gilbert-Elliott), a TCP-like :class:`ReliableChannel`, the
NetEm-style :class:`FaultInjector` and time-varying :class:`NetworkTrace`
generation (paper Fig. 9).
"""

from .faults import FaultInjector, NetworkFault
from .latency import (
    ConstantLatency,
    LatencyModel,
    NormalLatency,
    ParetoLatency,
    UniformLatency,
)
from .link import FORWARD, REVERSE, Link, LinkDirection, LinkStats
from .loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from .packet import ACK_PACKET_BYTES, DEFAULT_MTU, Packet, PacketKind, WIRE_HEADER_BYTES
from .trace import (
    GilbertElliottRateProcess,
    NetworkTrace,
    TracePoint,
    generate_paper_trace,
)
from .transport import ReliableChannel, SendFailure, TransportConfig, TransportStats

__all__ = [
    "FaultInjector",
    "NetworkFault",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "NormalLatency",
    "ParetoLatency",
    "Link",
    "LinkDirection",
    "LinkStats",
    "FORWARD",
    "REVERSE",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "Packet",
    "PacketKind",
    "WIRE_HEADER_BYTES",
    "ACK_PACKET_BYTES",
    "DEFAULT_MTU",
    "NetworkTrace",
    "TracePoint",
    "GilbertElliottRateProcess",
    "generate_paper_trace",
    "ReliableChannel",
    "SendFailure",
    "TransportConfig",
    "TransportStats",
]
