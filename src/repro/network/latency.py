"""Propagation-delay models.

The paper's dynamic-configuration experiment draws network delay from a
Pareto distribution (their reference [23]); NetEm itself supports constant,
uniform and normal jitter.  All models return a one-way delay in seconds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "NormalLatency",
    "ParetoLatency",
]


class LatencyModel:
    """Base class for one-way propagation delay models."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw a one-way delay in seconds."""
        raise NotImplementedError

    def mean(self) -> float:
        """The model's mean delay in seconds (for analytic checks)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """A fixed one-way delay, NetEm's ``delay <d>``."""

    def __init__(self, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.delay_s = float(delay_s)

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay_s

    def mean(self) -> float:
        return self.delay_s

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay_s * 1e3:.1f} ms)"


class UniformLatency(LatencyModel):
    """Uniform jitter around a base delay, NetEm's ``delay <d> <jitter>``."""

    def __init__(self, base_s: float, jitter_s: float) -> None:
        if base_s < 0 or jitter_s < 0:
            raise ValueError("base and jitter must be non-negative")
        if jitter_s > base_s:
            raise ValueError("jitter larger than base would allow negative delay")
        self.base_s = float(base_s)
        self.jitter_s = float(jitter_s)

    def sample(self, rng: np.random.Generator) -> float:
        return self.base_s + rng.uniform(-self.jitter_s, self.jitter_s)

    def mean(self) -> float:
        return self.base_s

    def __repr__(self) -> str:
        return f"UniformLatency({self.base_s * 1e3:.1f} ± {self.jitter_s * 1e3:.1f} ms)"


class NormalLatency(LatencyModel):
    """Normally distributed jitter truncated at zero."""

    def __init__(self, mean_s: float, stddev_s: float) -> None:
        if mean_s < 0 or stddev_s < 0:
            raise ValueError("mean and stddev must be non-negative")
        self.mean_s = float(mean_s)
        self.stddev_s = float(stddev_s)

    def sample(self, rng: np.random.Generator) -> float:
        return max(0.0, rng.normal(self.mean_s, self.stddev_s))

    def mean(self) -> float:
        return self.mean_s

    def __repr__(self) -> str:
        return f"NormalLatency({self.mean_s * 1e3:.1f} ms, σ={self.stddev_s * 1e3:.1f} ms)"


class ParetoLatency(LatencyModel):
    """Pareto-distributed delay, the paper's model for end-to-end delay.

    Delay = ``scale * (1 + Pareto(shape))`` so the minimum delay equals
    ``scale`` (the Pareto location parameter ``x_m``) and the tail index is
    ``shape`` (α).  With α ≤ 1 the mean diverges; we require α > 1 and
    optionally cap samples at ``cap_s`` the way real measurements truncate.
    """

    def __init__(self, scale_s: float, shape: float, cap_s: Optional[float] = None) -> None:
        if scale_s <= 0:
            raise ValueError("scale must be positive")
        if shape <= 1.0:
            raise ValueError("shape must exceed 1 for a finite mean delay")
        if cap_s is not None and cap_s < scale_s:
            raise ValueError("cap below the minimum delay")
        self.scale_s = float(scale_s)
        self.shape = float(shape)
        self.cap_s = cap_s

    def sample(self, rng: np.random.Generator) -> float:
        value = self.scale_s * (1.0 + rng.pareto(self.shape))
        if self.cap_s is not None:
            value = min(value, self.cap_s)
        return value

    def mean(self) -> float:
        # Mean of x_m * alpha / (alpha - 1), ignoring the cap.
        return self.scale_s * self.shape / (self.shape - 1.0)

    def __repr__(self) -> str:
        return f"ParetoLatency(x_m={self.scale_s * 1e3:.1f} ms, α={self.shape:.2f})"
