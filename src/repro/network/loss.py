"""Packet-loss models.

Two loss processes are used by the paper: independent (Bernoulli) loss at a
configured rate — NetEm's ``loss <p>%`` used for the sensitivity
experiments — and the two-state Gilbert–Elliott Markov model (their
reference [24]) that drives the bursty loss in the dynamic-configuration
experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LossModel", "NoLoss", "BernoulliLoss", "GilbertElliottLoss"]


class LossModel:
    """Base class: decides, per packet, whether the packet is lost."""

    def is_lost(self, rng: np.random.Generator) -> bool:
        """Sample the fate of one packet; True means the packet is dropped."""
        raise NotImplementedError

    def expected_loss_rate(self) -> float:
        """Long-run fraction of packets lost (for analytic checks)."""
        raise NotImplementedError


class NoLoss(LossModel):
    """A perfect link."""

    def is_lost(self, rng: np.random.Generator) -> bool:
        return False

    def expected_loss_rate(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Independent per-packet loss at a fixed rate, NetEm's ``loss <p>%``."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.rate = float(rate)

    def is_lost(self, rng: np.random.Generator) -> bool:
        if self.rate == 0.0:
            return False
        return bool(rng.random() < self.rate)

    def expected_loss_rate(self) -> float:
        return self.rate

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.rate:.1%})"


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) bursty loss model.

    The chain alternates between a Good state and a Bad state.  Each packet
    advances the chain one step and is then lost with the current state's
    loss probability (``1 - k`` for Good, ``1 - h`` for Bad in the usual
    G-E notation; we take the loss probabilities directly).

    Parameters
    ----------
    p_good_to_bad:
        Transition probability Good → Bad per packet.
    p_bad_to_good:
        Transition probability Bad → Good per packet.
    loss_good:
        Loss probability while in the Good state (often 0).
    loss_bad:
        Loss probability while in the Bad state (often close to 1).
    start_in_bad:
        Initial chain state.
    """

    GOOD = 0
    BAD = 1

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        start_in_bad: bool = False,
    ) -> None:
        for name, value in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if p_good_to_bad == 0.0 and start_in_bad is False and loss_good == 0.0:
            # Degenerate but valid: a lossless link.
            pass
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self.state = self.BAD if start_in_bad else self.GOOD

    def step(self, rng: np.random.Generator) -> int:
        """Advance the Markov chain one packet and return the new state."""
        if self.state == self.GOOD:
            if rng.random() < self.p_good_to_bad:
                self.state = self.BAD
        else:
            if rng.random() < self.p_bad_to_good:
                self.state = self.GOOD
        return self.state

    def is_lost(self, rng: np.random.Generator) -> bool:
        self.step(rng)
        loss_p = self.loss_bad if self.state == self.BAD else self.loss_good
        if loss_p == 0.0:
            return False
        return bool(rng.random() < loss_p)

    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time the chain spends in the Bad state."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            return 1.0 if self.state == self.BAD else 0.0
        return self.p_good_to_bad / denom

    def expected_loss_rate(self) -> float:
        pi_bad = self.stationary_bad_fraction()
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(g→b={self.p_good_to_bad:.3f}, "
            f"b→g={self.p_bad_to_good:.3f}, "
            f"loss={self.loss_good:.2f}/{self.loss_bad:.2f})"
        )
