"""A finite-capacity duplex link with queueing, delay and loss treatments.

This is the simulated analogue of the Docker bridge network plus NetEm in
the paper's testbed.  Each direction serialises packets FIFO at a fixed
capacity (transmission time = size / capacity), applies a propagation-delay
model and a loss model per packet, and tail-drops packets once the queueing
backlog exceeds a bound — which is what turns overload into the loss and
latency explosions behind the paper's Figs. 4–7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..simulation.simulator import Simulator
from .latency import ConstantLatency, LatencyModel
from .loss import LossModel, NoLoss
from .packet import Packet

__all__ = ["LinkDirection", "LinkStats", "Link", "SharedCapacity", "FORWARD", "REVERSE"]

#: Producer → cluster direction.
FORWARD = "forward"
#: Cluster → producer direction.
REVERSE = "reverse"

#: Default link capacity: 100 Mbit/s expressed in bytes per second, a
#: typical Docker bridge throughput once NetEm is attached.
DEFAULT_CAPACITY_BPS = 100e6 / 8

#: Default bound on queueing delay before tail drop (seconds).  Roughly a
#: 256 KiB interface buffer at the default capacity.
DEFAULT_MAX_QUEUE_DELAY_S = 0.25


class SharedCapacity:
    """A serialisation resource shared by both directions of a link.

    The paper's testbed runs producer and brokers as containers on one
    Docker bridge: every packet in either direction crosses the same
    virtual switch (and the same NetEm qdisc), so acknowledgement and
    response traffic genuinely *preempts* bandwidth from fresh data — the
    contention mechanism the paper cites to explain Fig. 4.  Directions
    that share one of these objects serialise through a single queue.
    """

    __slots__ = ("busy_until",)

    def __init__(self) -> None:
        self.busy_until = 0.0


@dataclass
class LinkStats:
    """Per-direction packet counters."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    bytes_sent: int = 0

    @property
    def dropped(self) -> int:
        """Total packets dropped for any reason."""
        return self.dropped_loss + self.dropped_queue


class LinkDirection:
    """One direction of a duplex link.

    Parameters
    ----------
    sim:
        Owning simulator.
    rng:
        Random stream used for delay and loss sampling.
    capacity_bps:
        Serialisation capacity in **bytes per second**.
    latency:
        Propagation-delay model applied after transmission.
    loss:
        Per-packet loss model (applied after transmission, i.e. lost packets
        still consume sender bandwidth — as on a real wire).
    max_queue_delay_s:
        Backlog bound; a packet arriving when the queue already implies more
        than this much waiting is tail-dropped without consuming capacity.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        max_queue_delay_s: float = DEFAULT_MAX_QUEUE_DELAY_S,
        shared: Optional[SharedCapacity] = None,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if max_queue_delay_s <= 0:
            raise ValueError("max_queue_delay_s must be positive")
        self._sim = sim
        self._rng = rng
        self.capacity_bps = float(capacity_bps)
        self.latency = latency if latency is not None else ConstantLatency(0.0005)
        self.loss = loss if loss is not None else NoLoss()
        self.max_queue_delay_s = float(max_queue_delay_s)
        self._shared = shared if shared is not None else SharedCapacity()
        self.stats = LinkStats()

    @property
    def backlog_s(self) -> float:
        """Current queueing delay a newly offered packet would see."""
        return max(0.0, self._shared.busy_until - self._sim.now)

    def utilisation_hint(self) -> float:
        """Backlog as a fraction of the tail-drop bound (1.0 = saturated)."""
        return min(1.0, self.backlog_s / self.max_queue_delay_s)

    def send(self, packet: Packet, on_arrival: Callable[[Packet], None]) -> bool:
        """Offer ``packet`` to this direction.

        Returns True if the packet was accepted onto the queue (it may still
        be lost on the wire); False if it was tail-dropped for backlog.
        ``on_arrival`` runs at the receiver when and if the packet arrives.
        """
        now = self._sim.now
        if self._shared.busy_until - now > self.max_queue_delay_s:
            self.stats.dropped_queue += 1
            return False
        tx_time = packet.size_bytes / self.capacity_bps
        depart = max(now, self._shared.busy_until) + tx_time
        self._shared.busy_until = depart
        self.stats.sent += 1
        self.stats.bytes_sent += packet.size_bytes
        if self.loss.is_lost(self._rng):
            self.stats.dropped_loss += 1
            return True
        delay = self.latency.sample(self._rng)
        self.stats.delivered += 1
        self._sim.schedule_at(depart + delay, on_arrival, packet)
        return True


class Link:
    """A link between a producer host and the cluster.

    By default the two directions share one serialisation resource (the
    Docker-bridge model — see :class:`SharedCapacity`); pass
    ``duplex=True`` for two independent full-rate directions.  The two
    directions keep independent treatment (latency/loss) settings either
    way, so a fault injector can apply asymmetric treatments; the default
    applies the same treatment both ways, matching NetEm on the bridge.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        max_queue_delay_s: float = DEFAULT_MAX_QUEUE_DELAY_S,
        duplex: bool = False,
    ) -> None:
        self._sim = sim
        shared = None if duplex else SharedCapacity()
        self.forward = LinkDirection(
            sim, rng, capacity_bps, latency, loss, max_queue_delay_s, shared=shared
        )
        # The reverse direction gets its own loss-model instance when the
        # model is stateful; sharing a Gilbert-Elliott chain across
        # directions would couple their burst phases artificially.  The
        # caller may overwrite ``reverse.loss`` for full control.
        self.reverse = LinkDirection(
            sim, rng, capacity_bps, latency, loss, max_queue_delay_s, shared=shared
        )

    def direction(self, name: str) -> LinkDirection:
        """Return the direction object for ``FORWARD`` or ``REVERSE``."""
        if name == FORWARD:
            return self.forward
        if name == REVERSE:
            return self.reverse
        raise ValueError(f"unknown direction {name!r}")

    def send(
        self, packet: Packet, direction: str, on_arrival: Callable[[Packet], None]
    ) -> bool:
        """Send ``packet`` in ``direction``; see :meth:`LinkDirection.send`."""
        return self.direction(direction).send(packet, on_arrival)
