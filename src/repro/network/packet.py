"""Wire-level packet data types for the simulated network.

Sizes are in bytes and include protocol overhead, mirroring what NetEm and
Wireshark see on a real interface.  ``WIRE_HEADER_BYTES`` approximates the
Ethernet + IP + TCP header stack of the paper's Docker bridge network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["PacketKind", "Packet", "WIRE_HEADER_BYTES", "ACK_PACKET_BYTES", "DEFAULT_MTU"]

#: Ethernet (14) + IPv4 (20) + TCP (32 incl. options) header bytes.
WIRE_HEADER_BYTES = 66

#: A bare TCP acknowledgement segment on the wire.
ACK_PACKET_BYTES = WIRE_HEADER_BYTES

#: Standard Ethernet MTU: maximum payload bytes per packet.
DEFAULT_MTU = 1500

_packet_ids = itertools.count()


class PacketKind(Enum):
    """What a packet carries."""

    DATA = "data"
    ACK = "ack"


@dataclass
class Packet:
    """A single simulated packet.

    Attributes
    ----------
    kind:
        Whether this is a data segment or a transport-level acknowledgement.
    size_bytes:
        Total on-the-wire size, including headers.
    message_id:
        Identifier of the transport-level message this segment belongs to.
    segment_index:
        Index of this segment within its message.
    payload:
        Opaque application object carried by the final segment of a message.
    packet_id:
        Globally unique id (for tracing and deduplication).
    attempt:
        Retransmission attempt number for this segment (0 = first try).
    """

    kind: PacketKind
    size_bytes: int
    message_id: int
    segment_index: int = 0
    payload: Any = None
    attempt: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")

    def is_ack(self) -> bool:
        """True when this packet is a transport acknowledgement."""
        return self.kind is PacketKind.ACK
