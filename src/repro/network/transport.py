"""A TCP-like reliable message transport over a lossy :class:`Link`.

Kafka speaks a binary protocol over TCP, and every reliability phenomenon
the paper reports is mediated by this layer: retransmissions mask moderate
loss, retransmission and acknowledgement traffic compete with fresh data
for bandwidth, and retransmission delay pushes messages past their
delivery timeout.  This module implements the minimum mechanism that
yields those behaviours faithfully:

* segmentation of a message into MTU-sized packets,
* per-segment cumulative-free ACKs (one ACK packet per data segment),
* Jacobson/Karn adaptive RTO with exponential backoff,
* a bounded retransmission budget and an optional per-message deadline,
* receiver-side deduplication and in-order-agnostic reassembly.

It deliberately omits congestion windows: the paper's Docker bridge runs
over loopback where loss is injected by NetEm, not by congestion control,
and NetEm loss does not trigger meaningful cwnd collapse on loopback RTTs.
Contention effects instead emerge from the finite link capacity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set

from ..observability.metrics import DEFAULT_LATENCY_BUCKETS
from ..observability.trace import EventKind
from ..simulation.events import Event
from ..simulation.simulator import Simulator
from .link import FORWARD, Link, REVERSE
from .packet import ACK_PACKET_BYTES, DEFAULT_MTU, Packet, PacketKind, WIRE_HEADER_BYTES

__all__ = [
    "TransportConfig",
    "TransportStats",
    "ReliableChannel",
    "SendFailure",
    "reset_message_counter",
]

_message_ids = itertools.count()


def reset_message_counter() -> None:
    """Restart transport message ids (per-experiment determinism).

    Message ids appear in trace records; restarting them per run makes a
    trace — and hence its digest — a pure function of the scenario seed
    regardless of what ran earlier in the process.
    """
    global _message_ids
    _message_ids = itertools.count()


@dataclass
class TransportConfig:
    """Tunables of the TCP-like transport.

    Attributes
    ----------
    mtu:
        Maximum payload bytes per packet (excluding the wire header).
    initial_rto_s:
        Retransmission timeout before any RTT measurement exists.
    min_rto_s / max_rto_s:
        Clamp on the adaptive RTO.
    rto_backoff:
        Multiplicative RTO backoff per retransmission of a segment.
    max_retransmits:
        Retransmissions per segment before the whole message send fails.
    """

    mtu: int = DEFAULT_MTU
    initial_rto_s: float = 0.3
    min_rto_s: float = 0.2
    max_rto_s: float = 4.0
    rto_backoff: float = 2.0
    max_retransmits: int = 5

    def __post_init__(self) -> None:
        if self.mtu <= WIRE_HEADER_BYTES:
            raise ValueError("mtu must exceed the wire header size")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be non-negative")
        if not (0 < self.min_rto_s <= self.initial_rto_s <= self.max_rto_s):
            raise ValueError("require 0 < min_rto <= initial_rto <= max_rto")


@dataclass
class TransportStats:
    """Counters for one channel direction."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_failed: int = 0
    segments_sent: int = 0
    retransmissions: int = 0
    acks_received: int = 0
    duplicate_segments: int = 0


class SendFailure:
    """Reasons a message send can fail."""

    RETRIES_EXHAUSTED = "retries_exhausted"
    DEADLINE = "deadline"
    ABORTED = "aborted"


class _OutstandingMessage:
    """Sender-side bookkeeping for one in-flight message."""

    __slots__ = (
        "message_id",
        "payload",
        "size_bytes",
        "total_segments",
        "acked",
        "timers",
        "attempts",
        "deadline_event",
        "on_delivered",
        "on_failed",
        "failed",
        "delivered",
        "start_time",
    )

    def __init__(
        self,
        message_id: int,
        payload: Any,
        size_bytes: int,
        total_segments: int,
        on_delivered: Optional[Callable[[Any, float], None]],
        on_failed: Optional[Callable[[Any, str], None]],
        start_time: float,
    ) -> None:
        self.message_id = message_id
        self.payload = payload
        self.size_bytes = size_bytes
        self.total_segments = total_segments
        self.acked: Set[int] = set()
        self.timers: Dict[int, Event] = {}
        self.attempts: Dict[int, int] = {}
        self.deadline_event: Optional[Event] = None
        self.on_delivered = on_delivered
        self.on_failed = on_failed
        self.failed = False
        self.delivered = False
        self.start_time = start_time


class _DirectionEndpoint:
    """Sender state, receiver state and stats for one channel direction."""

    __slots__ = (
        "outstanding",
        "received",
        "completed",
        "receiver",
        "srtt",
        "rttvar",
        "min_rtt",
        "stats",
    )

    def __init__(self) -> None:
        self.outstanding: Dict[int, _OutstandingMessage] = {}
        self.received: Dict[int, Set[int]] = {}
        self.completed: Set[int] = set()
        self.receiver: Optional[Callable[[Any, int], None]] = None
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.min_rtt: Optional[float] = None
        self.stats = TransportStats()


class ReliableChannel:
    """Bidirectional reliable message channel between producer and cluster.

    Messages sent ``FORWARD`` travel producer → cluster; their ACKs travel
    back on the ``REVERSE`` direction of the underlying link (and therefore
    compete with application traffic flowing that way), and vice versa.

    Use :meth:`set_receiver` to register the application-level handler for
    each direction, then :meth:`send`.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        config: Optional[TransportConfig] = None,
        telemetry=None,
    ) -> None:
        self._sim = sim
        self._link = link
        self.config = config if config is not None else TransportConfig()
        self._endpoints: Dict[str, _DirectionEndpoint] = {
            FORWARD: _DirectionEndpoint(),
            REVERSE: _DirectionEndpoint(),
        }
        self._tracer = telemetry.tracer if telemetry is not None else None
        if telemetry is not None:
            self._rtt_hist = telemetry.metrics.histogram(
                "transport.rtt_s", DEFAULT_LATENCY_BUCKETS
            )
        else:
            self._rtt_hist = None

    # ------------------------------------------------------------------ api

    def set_receiver(self, direction: str, callback: Callable[[Any, int], None]) -> None:
        """Register ``callback(payload, size_bytes)`` for completed messages."""
        self._endpoint(direction).receiver = callback

    def stats(self, direction: str) -> TransportStats:
        """Return the sender-side stats of ``direction``."""
        return self._endpoint(direction).stats

    def smoothed_rtt(self, direction: str) -> Optional[float]:
        """The sender's current SRTT estimate for ``direction`` (or None).

        This is exactly what a real client can observe about its network
        path, so the online configuration extension builds on it.
        """
        return self._endpoint(direction).srtt

    def minimum_rtt(self, direction: str) -> Optional[float]:
        """Smallest first-attempt RTT observed (filters queueing delay)."""
        return self._endpoint(direction).min_rtt

    def send(
        self,
        direction: str,
        size_bytes: int,
        payload: Any = None,
        deadline: Optional[float] = None,
        on_delivered: Optional[Callable[[Any, float], None]] = None,
        on_failed: Optional[Callable[[Any, str], None]] = None,
    ) -> int:
        """Send an application message of ``size_bytes`` payload bytes.

        Parameters
        ----------
        direction:
            ``FORWARD`` (producer → cluster) or ``REVERSE``.
        size_bytes:
            Application bytes; wire overhead is added per segment.
        payload:
            Opaque object handed to the receiver callback on completion.
        deadline:
            Absolute simulated time after which the send is abandoned.
        on_delivered:
            Sender-side callback ``(payload, rtt_s)`` once every segment has
            been acknowledged.
        on_failed:
            Sender-side callback ``(payload, reason)`` on failure.

        Returns the transport message id.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        endpoint = self._endpoint(direction)
        message_id = next(_message_ids)
        payload_per_segment = self.config.mtu - WIRE_HEADER_BYTES
        total_segments = max(1, -(-size_bytes // payload_per_segment))
        message = _OutstandingMessage(
            message_id, payload, size_bytes, total_segments, on_delivered, on_failed, self._sim.now
        )
        endpoint.outstanding[message_id] = message
        endpoint.stats.messages_sent += 1
        if deadline is not None:
            if deadline <= self._sim.now:
                # Already expired: fail on the next event tick for causality.
                self._sim.schedule(0.0, self._fail, direction, message, SendFailure.DEADLINE)
                return message_id
            message.deadline_event = self._sim.schedule_at(
                deadline, self._fail, direction, message, SendFailure.DEADLINE
            )
        remaining = size_bytes
        for index in range(total_segments):
            seg_payload = min(payload_per_segment, remaining)
            remaining -= seg_payload
            self._transmit_segment(direction, message, index, seg_payload + WIRE_HEADER_BYTES, attempt=0)
        return message_id

    def abort(self, direction: str, message_id: int) -> None:
        """Abandon an in-flight send (e.g. the producer gave up on it)."""
        endpoint = self._endpoint(direction)
        message = endpoint.outstanding.get(message_id)
        if message is not None:
            self._fail(direction, message, SendFailure.ABORTED)

    # ------------------------------------------------------------ internals

    def _endpoint(self, direction: str) -> _DirectionEndpoint:
        try:
            return self._endpoints[direction]
        except KeyError:
            raise ValueError(f"unknown direction {direction!r}") from None

    def _rto(self, endpoint: _DirectionEndpoint, attempt: int) -> float:
        if endpoint.srtt is None:
            base = self.config.initial_rto_s
        else:
            base = endpoint.srtt + 4.0 * endpoint.rttvar
        base = min(max(base, self.config.min_rto_s), self.config.max_rto_s)
        return min(base * (self.config.rto_backoff**attempt), self.config.max_rto_s * 4)

    def _transmit_segment(
        self,
        direction: str,
        message: _OutstandingMessage,
        index: int,
        wire_bytes: int,
        attempt: int,
    ) -> None:
        if message.failed or message.delivered or index in message.acked:
            return
        endpoint = self._endpoint(direction)
        endpoint.stats.segments_sent += 1
        if attempt > 0:
            endpoint.stats.retransmissions += 1
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.RETRANSMIT,
                    self._sim.now,
                    direction=direction,
                    message_id=message.message_id,
                    segment=index,
                    attempt=attempt,
                )
        message.attempts[index] = attempt
        packet = Packet(
            kind=PacketKind.DATA,
            size_bytes=wire_bytes,
            message_id=message.message_id,
            segment_index=index,
            payload=(message.payload, message.total_segments, message.size_bytes),
            attempt=attempt,
        )
        self._link.send(packet, direction, lambda pkt: self._on_data(direction, pkt))
        rto = self._rto(endpoint, attempt)
        message.timers[index] = self._sim.schedule(
            rto, self._on_rto, direction, message, index, wire_bytes, attempt
        )

    def _on_rto(
        self,
        direction: str,
        message: _OutstandingMessage,
        index: int,
        wire_bytes: int,
        attempt: int,
    ) -> None:
        if message.failed or message.delivered or index in message.acked:
            return
        if attempt + 1 > self.config.max_retransmits:
            self._fail(direction, message, SendFailure.RETRIES_EXHAUSTED)
            return
        self._transmit_segment(direction, message, index, wire_bytes, attempt + 1)

    def _on_data(self, direction: str, packet: Packet) -> None:
        """A data segment arrived at the receiver of ``direction``."""
        endpoint = self._endpoint(direction)
        payload, total_segments, size_bytes = packet.payload
        seen = endpoint.received.setdefault(packet.message_id, set())
        already_complete = packet.message_id in endpoint.completed
        if packet.segment_index in seen or already_complete:
            endpoint.stats.duplicate_segments += 1
        else:
            seen.add(packet.segment_index)
        # Always acknowledge, even duplicates (the earlier ACK may be lost).
        ack = Packet(
            kind=PacketKind.ACK,
            size_bytes=ACK_PACKET_BYTES,
            message_id=packet.message_id,
            segment_index=packet.segment_index,
            attempt=packet.attempt,
        )
        reverse = REVERSE if direction == FORWARD else FORWARD
        self._link.send(ack, reverse, lambda pkt: self._on_ack(direction, pkt))
        if not already_complete and len(seen) == total_segments:
            endpoint.completed.add(packet.message_id)
            del endpoint.received[packet.message_id]
            if endpoint.receiver is not None:
                endpoint.receiver(payload, size_bytes)

    def _on_ack(self, direction: str, packet: Packet) -> None:
        """An ACK for a segment sent in ``direction`` returned to the sender."""
        endpoint = self._endpoint(direction)
        message = endpoint.outstanding.get(packet.message_id)
        if message is None or message.failed or message.delivered:
            return
        endpoint.stats.acks_received += 1
        if packet.segment_index in message.acked:
            return
        message.acked.add(packet.segment_index)
        timer = message.timers.pop(packet.segment_index, None)
        if timer is not None:
            self._sim.cancel(timer)
        # Karn's rule: only sample RTT from first-attempt segments.
        if packet.attempt == 0:
            sample = self._sim.now - message.start_time
            if self._rtt_hist is not None:
                self._rtt_hist.observe(sample)
            if endpoint.min_rtt is None or sample < endpoint.min_rtt:
                endpoint.min_rtt = sample
            if endpoint.srtt is None:
                endpoint.srtt = sample
                endpoint.rttvar = sample / 2.0
            else:
                endpoint.rttvar = 0.75 * endpoint.rttvar + 0.25 * abs(endpoint.srtt - sample)
                endpoint.srtt = 0.875 * endpoint.srtt + 0.125 * sample
        if len(message.acked) == message.total_segments:
            self._complete(direction, message)

    def _complete(self, direction: str, message: _OutstandingMessage) -> None:
        endpoint = self._endpoint(direction)
        message.delivered = True
        self._clear_timers(message)
        endpoint.outstanding.pop(message.message_id, None)
        endpoint.stats.messages_delivered += 1
        if message.on_delivered is not None:
            message.on_delivered(message.payload, self._sim.now - message.start_time)

    def _fail(self, direction: str, message: _OutstandingMessage, reason: str) -> None:
        if message.failed or message.delivered:
            return
        endpoint = self._endpoint(direction)
        message.failed = True
        self._clear_timers(message)
        endpoint.outstanding.pop(message.message_id, None)
        endpoint.stats.messages_failed += 1
        if self._tracer is not None:
            self._tracer.emit(
                EventKind.TRANSPORT_FAIL,
                self._sim.now,
                direction=direction,
                message_id=message.message_id,
                reason=reason,
            )
        if message.on_failed is not None:
            message.on_failed(message.payload, reason)

    def _clear_timers(self, message: _OutstandingMessage) -> None:
        for timer in message.timers.values():
            self._sim.cancel(timer)
        message.timers.clear()
        if message.deadline_event is not None:
            self._sim.cancel(message.deadline_event)
            message.deadline_event = None
