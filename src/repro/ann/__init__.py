"""A from-scratch neural-network framework on numpy.

Re-implements what the paper built in a deep-learning framework: dense
layers, standard activations, MSE/MAE losses, SGD/Momentum/Adam, scalers,
train/test utilities and model persistence.  ``build_mlp`` constructs the
paper's 200/200/200/64 topology.
"""

from .activations import ACTIVATIONS, Activation, Identity, Relu, Sigmoid, Tanh, get_activation
from .data import iterate_minibatches, train_test_split
from .layers import Dense, Layer
from .losses import HuberLoss, LOSSES, Loss, MAELoss, MSELoss, get_loss
from .metrics import mae, max_error, r2_score, rmse
from .network import PAPER_HIDDEN_LAYERS, Sequential, TrainingHistory, build_mlp
from .optimizers import Adam, Momentum, Optimizer, SGD, get_optimizer
from .scaling import MinMaxScaler, StandardScaler
from .serialize import load_model, save_model
from .tensor import INITIALIZERS, Parameter, glorot_uniform, he_normal, zeros_init

__all__ = [
    "Activation", "Relu", "Sigmoid", "Tanh", "Identity", "ACTIVATIONS", "get_activation",
    "train_test_split", "iterate_minibatches",
    "Layer", "Dense",
    "Loss", "MSELoss", "MAELoss", "HuberLoss", "LOSSES", "get_loss",
    "mae", "rmse", "r2_score", "max_error",
    "Sequential", "TrainingHistory", "build_mlp", "PAPER_HIDDEN_LAYERS",
    "Optimizer", "SGD", "Momentum", "Adam", "get_optimizer",
    "StandardScaler", "MinMaxScaler",
    "save_model", "load_model",
    "Parameter", "glorot_uniform", "he_normal", "zeros_init", "INITIALIZERS",
]
