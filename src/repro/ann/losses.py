"""Regression losses with analytic gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss", "get_loss", "LOSSES"]


class Loss:
    """A scalar objective over a prediction batch."""

    name = "base"

    def value_and_grad(
        self, predicted: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(loss, d loss / d predicted)`` averaged over samples."""
        raise NotImplementedError


def _check(predicted: np.ndarray, target: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    return predicted, target


class MSELoss(Loss):
    """Mean squared error — the training objective."""

    name = "mse"

    def value_and_grad(
        self, predicted: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        predicted, target = _check(predicted, target)
        diff = predicted - target
        n = predicted.shape[0]
        return float(np.mean(diff**2)), (2.0 / (n * predicted.shape[1])) * diff


class MAELoss(Loss):
    """Mean absolute error — the paper's reported accuracy metric."""

    name = "mae"

    def value_and_grad(
        self, predicted: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        predicted, target = _check(predicted, target)
        diff = predicted - target
        n = predicted.shape[0]
        return (
            float(np.mean(np.abs(diff))),
            np.sign(diff) / (n * predicted.shape[1]),
        )


class HuberLoss(Loss):
    """Huber loss — quadratic near zero, linear in the tails."""

    name = "huber"

    def __init__(self, delta: float = 0.05) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)

    def value_and_grad(
        self, predicted: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        predicted, target = _check(predicted, target)
        diff = predicted - target
        abs_diff = np.abs(diff)
        quadratic = abs_diff <= self.delta
        values = np.where(
            quadratic,
            0.5 * diff**2,
            self.delta * (abs_diff - 0.5 * self.delta),
        )
        grads = np.where(quadratic, diff, self.delta * np.sign(diff))
        n = predicted.shape[0] * predicted.shape[1]
        return float(np.mean(values)), grads / n


#: Name → loss registry.
LOSSES = {"mse": MSELoss, "mae": MAELoss, "huber": HuberLoss}


def get_loss(name: "str | Loss") -> Loss:
    """Resolve a loss by name or pass an instance through."""
    if isinstance(name, Loss):
        return name
    try:
        return LOSSES[name]()
    except KeyError:
        raise ValueError(
            f"unknown loss {name!r}; expected one of {sorted(LOSSES)}"
        ) from None
