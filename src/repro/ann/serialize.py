"""Model persistence: architecture as JSON, weights as ``.npz``.

A saved model is a directory with ``architecture.json`` and
``weights.npz`` so trained predictors can be reused across experiment
sessions (the model registry builds on this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import numpy as np

from .layers import Dense
from .network import Sequential

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def save_model(model: Sequential, directory: "str | Path") -> Path:
    """Write ``model`` under ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    architecture = []
    weights: Dict[str, np.ndarray] = {}
    for index, layer in enumerate(model.layers):
        if not isinstance(layer, Dense):
            raise TypeError(f"cannot serialise layer type {type(layer).__name__}")
        architecture.append(
            {
                "type": "dense",
                "in_features": layer.in_features,
                "out_features": layer.out_features,
                "activation": layer.activation.name,
                "init": layer.init_name,
            }
        )
        weights[f"layer{index}_weight"] = layer.weight.value
        weights[f"layer{index}_bias"] = layer.bias.value
    spec = {"format_version": _FORMAT_VERSION, "layers": architecture}
    (directory / "architecture.json").write_text(
        json.dumps(spec, indent=2, sort_keys=True)
    )
    np.savez(directory / "weights.npz", **weights)
    return directory


def load_model(directory: "str | Path") -> Sequential:
    """Rebuild a model saved with :func:`save_model`."""
    directory = Path(directory)
    spec = json.loads((directory / "architecture.json").read_text())
    if spec.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format: {spec.get('format_version')}")
    weights = np.load(directory / "weights.npz")
    layers = []
    for index, layer_spec in enumerate(spec["layers"]):
        if layer_spec["type"] != "dense":
            raise ValueError(f"unknown layer type {layer_spec['type']!r}")
        layer = Dense(
            layer_spec["in_features"],
            layer_spec["out_features"],
            layer_spec["activation"],
            init=layer_spec["init"],
        )
        layer.weight.value = weights[f"layer{index}_weight"].copy()
        layer.bias.value = weights[f"layer{index}_bias"].copy()
        layers.append(layer)
    return Sequential(layers)
