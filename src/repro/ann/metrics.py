"""Regression evaluation metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "r2_score", "max_error"]


def _pair(
    predicted: np.ndarray, target: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    predicted = np.asarray(predicted, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    return predicted, target


def mae(predicted: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error — the paper reports MAE < 0.02."""
    predicted, target = _pair(predicted, target)
    return float(np.mean(np.abs(predicted - target)))


def rmse(predicted: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    predicted, target = _pair(predicted, target)
    return float(np.sqrt(np.mean((predicted - target) ** 2)))


def max_error(predicted: np.ndarray, target: np.ndarray) -> float:
    """Worst absolute error over the set."""
    predicted, target = _pair(predicted, target)
    return float(np.max(np.abs(predicted - target)))


def r2_score(predicted: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination (1 = perfect, 0 = mean predictor)."""
    predicted, target = _pair(predicted, target)
    residual = np.sum((target - predicted) ** 2)
    total = np.sum((target - target.mean(axis=0)) ** 2)
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return float(1.0 - residual / total)
