"""Feature scalers.

The paper's features span wildly different ranges (bytes vs probabilities
vs seconds); training a sigmoid-output MLP with learning rate 0.5 only
converges with standardised inputs, so scalers are part of the framework.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Zero-mean, unit-variance scaling per feature column."""

    def __init__(self) -> None:
        self.mean_: "np.ndarray | None" = None
        self.scale_: "np.ndarray | None" = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn column means and standard deviations."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("expected a 2-D array")
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant columns pass through centred
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the scaling."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(x, dtype=np.float64) * self.scale_ + self.mean_

    def to_dict(self) -> Dict:
        """Serialisable state."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return {"mean": self.mean_.tolist(), "scale": self.scale_.tolist()}

    @classmethod
    def from_dict(cls, state: Dict) -> "StandardScaler":
        """Rebuild from :meth:`to_dict` output."""
        scaler = cls()
        scaler.mean_ = np.asarray(state["mean"], dtype=np.float64)
        scaler.scale_ = np.asarray(state["scale"], dtype=np.float64)
        return scaler


class MinMaxScaler:
    """Scale each feature column into [0, 1]."""

    def __init__(self) -> None:
        self.min_: "np.ndarray | None" = None
        self.range_: "np.ndarray | None" = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        """Learn column minima and ranges."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("expected a 2-D array")
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(x, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the scaling."""
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(x, dtype=np.float64) * self.range_ + self.min_

    def to_dict(self) -> Dict:
        """Serialisable state."""
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        return {"min": self.min_.tolist(), "range": self.range_.tolist()}

    @classmethod
    def from_dict(cls, state: Dict) -> "MinMaxScaler":
        """Rebuild from :meth:`to_dict` output."""
        scaler = cls()
        scaler.min_ = np.asarray(state["min"], dtype=np.float64)
        scaler.range_ = np.asarray(state["range"], dtype=np.float64)
        return scaler
