"""Parameters and weight initialisers for the numpy ANN framework.

Only numpy is available offline, so the paper's TensorFlow model is
re-implemented from scratch; a :class:`Parameter` couples a value array
with its gradient accumulator, and the initialisers cover the standard
fan-based schemes used for small fully-connected regression networks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["Parameter", "glorot_uniform", "he_normal", "zeros_init", "INITIALIZERS"]


class Parameter:
    """A trainable array with an accompanying gradient buffer."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.value.shape

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name or 'unnamed'}, shape={self.shape})"


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation — the right default for
    tanh/sigmoid hidden layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation — the right default for ReLU layers."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros((fan_in, fan_out))


#: Name → initialiser registry (used by serialisation).
INITIALIZERS: dict = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros_init,
}
