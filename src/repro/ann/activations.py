"""Activation functions and their derivatives."""

from __future__ import annotations

import numpy as np

__all__ = ["Activation", "Relu", "Sigmoid", "Tanh", "Identity", "ACTIVATIONS", "get_activation"]


class Activation:
    """An elementwise nonlinearity ``f`` with derivative ``f'``.

    ``derivative`` receives the *output* of ``apply`` where that is cheaper
    (sigmoid/tanh), so subclasses document which of input/output they use.
    """

    name = "base"

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute ``f(x)``."""
        raise NotImplementedError

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Compute ``f'`` given input ``x`` and cached output ``y``."""
        raise NotImplementedError


class Relu(Activation):
    """Rectified linear unit."""

    name = "relu"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (x > 0.0).astype(x.dtype)


class Sigmoid(Activation):
    """Logistic sigmoid; keeps regression outputs inside (0, 1)."""

    name = "sigmoid"

    def apply(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        return out

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * (1.0 - y)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 1.0 - y * y


class Identity(Activation):
    """Linear pass-through (regression output layers)."""

    name = "identity"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return x

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.ones_like(x)


#: Name → activation registry (used by serialisation).
ACTIVATIONS = {cls.name: cls for cls in (Relu, Sigmoid, Tanh, Identity)}


def get_activation(name: "str | Activation") -> Activation:
    """Resolve an activation by name or pass an instance through."""
    if isinstance(name, Activation):
        return name
    try:
        return ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        ) from None
