"""Composable layers: fully-connected with a fused activation."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .activations import Activation, get_activation
from .tensor import INITIALIZERS, Parameter, glorot_uniform, he_normal, zeros_init

__all__ = ["Layer", "Dense"]


class Layer:
    """Base layer: forward caches whatever backward needs."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch (rows = samples)."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate: accumulate parameter grads, return input grad."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this layer."""
        return []


class Dense(Layer):
    """Fully-connected layer ``y = act(x @ W + b)``.

    Parameters
    ----------
    in_features / out_features:
        Layer width.
    activation:
        Name or instance; ``"identity"`` gives a linear layer.
    rng:
        Generator used for weight initialisation (reproducibility).
    init:
        Initialiser name from :data:`~repro.ann.tensor.INITIALIZERS`;
        defaults to He for ReLU and Glorot otherwise.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: "str | Activation" = "relu",
        rng: Optional[np.random.Generator] = None,
        init: Optional[str] = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer widths must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = get_activation(activation)
        rng = rng if rng is not None else np.random.default_rng()
        if init is None:
            init = "he_normal" if self.activation.name == "relu" else "glorot_uniform"
        self.init_name = init
        initializer = INITIALIZERS[init]
        self.weight = Parameter(initializer(in_features, out_features, rng), "W")
        self.bias = Parameter(zeros_init(1, out_features, rng), "b")
        self._x: Optional[np.ndarray] = None
        self._pre: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (n, {self.in_features}), got {x.shape}"
            )
        pre = x @ self.weight.value + self.bias.value
        out = self.activation.apply(pre)
        if training:
            self._x, self._pre, self._out = x, pre, out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_pre = grad_output * self.activation.derivative(self._pre, self._out)
        self.weight.grad += self._x.T @ grad_pre
        self.bias.grad += grad_pre.sum(axis=0, keepdims=True)
        return grad_pre @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dense({self.in_features}→{self.out_features}, "
            f"{self.activation.name})"
        )
