"""First-order optimisers.

The paper trains with plain stochastic gradient descent ("SGD fits our
case well and avoids over-fitting or corner cases such that the predicted
probabilities become negative"); Momentum and Adam are provided for the
ablation benchmark that revisits that claim.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "get_optimizer"]


class Optimizer:
    """Updates parameters in place from their accumulated gradients."""

    def step(self, parameters: List[Parameter]) -> None:
        """Apply one update and zero the gradients."""
        raise NotImplementedError

    @staticmethod
    def _finish(parameters: List[Parameter]) -> None:
        for parameter in parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Plain stochastic gradient descent (the paper's optimiser, lr 0.5)."""

    def __init__(self, learning_rate: float = 0.5) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def step(self, parameters: List[Parameter]) -> None:
        for parameter in parameters:
            parameter.value -= self.learning_rate * parameter.grad
        self._finish(parameters)


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self, parameters: List[Parameter]) -> None:
        for parameter in parameters:
            velocity = self._velocity.get(id(parameter))
            if velocity is None:
                velocity = np.zeros_like(parameter.value)
                self._velocity[id(parameter)] = velocity
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.value += velocity
        self._finish(parameters)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, parameters: List[Parameter]) -> None:
        self._t += 1
        for parameter in parameters:
            key = id(parameter)
            if key not in self._m:
                self._m[key] = np.zeros_like(parameter.value)
                self._v[key] = np.zeros_like(parameter.value)
            m, v = self._m[key], self._v[key]
            m *= self.beta1
            m += (1.0 - self.beta1) * parameter.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * parameter.grad**2
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            parameter.value -= (
                self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            )
        self._finish(parameters)


def get_optimizer(name: "str | Optimizer", **kwargs: float) -> Optimizer:
    """Resolve an optimiser by name or pass an instance through."""
    if isinstance(name, Optimizer):
        return name
    registry = {"sgd": SGD, "momentum": Momentum, "adam": Adam}
    try:
        return registry[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; expected one of {sorted(registry)}"
        ) from None
