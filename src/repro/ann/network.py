"""The sequential MLP and its training loop.

:func:`build_mlp` constructs the paper's topology — four hidden layers of
200, 200, 200 and 64 neurons — and :meth:`Sequential.fit` runs minibatch
training with optional validation-based early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .layers import Dense, Layer
from .losses import Loss, get_loss
from .optimizers import Optimizer, get_optimizer
from .tensor import Parameter

__all__ = ["TrainingHistory", "Sequential", "build_mlp", "PAPER_HIDDEN_LAYERS"]

#: The paper's hidden-layer widths (Section III-G).
PAPER_HIDDEN_LAYERS: Tuple[int, ...] = (200, 200, 200, 64)


@dataclass
class TrainingHistory:
    """Per-epoch training record."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)


class Sequential:
    """A stack of layers trained with backpropagation."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = list(layers)

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, input to output."""
        out: List[Parameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network on a batch (rows = samples)."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, training=False)

    def predict_rowwise(self, x: np.ndarray) -> np.ndarray:
        """Batched inference whose rows are bitwise-identical to
        ``predict(x[i:i+1])[0]`` for every row ``i``.

        A plain 2-D matmul is *not* guaranteed to reproduce the single-row
        result bit for bit (BLAS picks different accumulation orders for
        GEMM vs GEMV), which would break callers that memoise batched
        predictions and compare them against the scalar path.  Computing
        each Dense layer as a stacked ``(n, 1, d) @ (d, h)`` matmul keeps
        per-row GEMV semantics while still amortising the Python-level
        layer overhead across the whole batch; bias addition and the
        activations are elementwise and therefore row-independent anyway.
        """
        out = np.asarray(x, dtype=np.float64)
        if out.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {out.shape}")
        for layer in self.layers:
            if isinstance(layer, Dense):
                if out.shape[1] != layer.in_features:
                    raise ValueError(
                        f"expected input of shape (n, {layer.in_features}), "
                        f"got {out.shape}"
                    )
                pre = (out[:, None, :] @ layer.weight.value)[:, 0, :]
                pre = pre + layer.bias.value
                out = layer.activation.apply(pre)
            else:  # pragma: no cover - no non-Dense layers exist today
                out = np.concatenate(
                    [layer.forward(out[i : i + 1], training=False)
                     for i in range(out.shape[0])]
                )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate a loss gradient through every layer."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def evaluate(self, x: np.ndarray, y: np.ndarray, loss: "str | Loss" = "mse") -> float:
        """Loss of the current network on ``(x, y)``."""
        loss_fn = get_loss(loss)
        value, _ = loss_fn.value_and_grad(self.predict(x), np.asarray(y, dtype=np.float64))
        return value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1000,
        batch_size: int = 32,
        optimizer: "str | Optimizer" = "sgd",
        loss: "str | Loss" = "mse",
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        patience: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        verbose_every: Optional[int] = None,
        weight_decay: float = 0.0,
    ) -> TrainingHistory:
        """Minibatch training.

        Parameters
        ----------
        epochs:
            Maximum passes over the data (the paper uses 1000).
        batch_size:
            Minibatch size.
        optimizer / loss:
            Names or instances (paper: SGD, learning rate 0.5, MSE).
        validation:
            Optional ``(x_val, y_val)`` evaluated each epoch.
        patience:
            Early-stop after this many epochs without validation
            improvement (requires ``validation``).
        rng:
            Shuffling source; fixed seed → identical training run.
        verbose_every:
            Print progress every N epochs when set.
        weight_decay:
            L2 penalty coefficient added to every weight gradient (0
            disables regularisation; biases are not decayed).
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if patience is not None and validation is None:
            raise ValueError("patience requires a validation set")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x and y must be 2-D with matching row counts")
        optimizer = get_optimizer(optimizer)
        loss_fn = get_loss(loss)
        rng = rng if rng is not None else np.random.default_rng(0)
        history = TrainingHistory()
        best_val = np.inf
        best_weights: Optional[List[np.ndarray]] = None
        stale = 0
        parameters = self.parameters()
        # Hoisted out of the batch loop: the decayed-weight list never
        # changes, and per-epoch gather-once/slice-views beats per-batch
        # fancy indexing (identical batches, far less numpy overhead).
        decayed = (
            [
                weight
                for weight in (
                    getattr(layer, "weight", None) for layer in self.layers
                )
                if weight is not None
            ]
            if weight_decay > 0.0
            else []
        )
        count = x.shape[0]
        for epoch in range(epochs):
            epoch_loss = 0.0
            batches = 0
            order = rng.permutation(count)
            x_epoch = x[order]
            y_epoch = y[order]
            for start in range(0, count, batch_size):
                xb = x_epoch[start : start + batch_size]
                yb = y_epoch[start : start + batch_size]
                predicted = self.forward(xb, training=True)
                value, grad = loss_fn.value_and_grad(predicted, yb)
                self.backward(grad)
                for weight in decayed:
                    weight.grad += weight_decay * weight.value
                optimizer.step(parameters)
                epoch_loss += value
                batches += 1
            history.train_loss.append(epoch_loss / max(1, batches))
            if validation is not None:
                val = self.evaluate(validation[0], validation[1], loss_fn)
                history.validation_loss.append(val)
                if val < best_val - 1e-9:
                    best_val = val
                    best_weights = [p.value.copy() for p in parameters]
                    stale = 0
                else:
                    stale += 1
                    if patience is not None and stale > patience:
                        history.stopped_early = True
                        break
            if verbose_every is not None and (epoch + 1) % verbose_every == 0:
                val_text = (
                    f" val={history.validation_loss[-1]:.5f}"
                    if history.validation_loss
                    else ""
                )
                print(f"epoch {epoch + 1}: loss={history.train_loss[-1]:.5f}{val_text}")
        if best_weights is not None:
            for parameter, weights in zip(parameters, best_weights):
                parameter.value = weights
        return history


def build_mlp(
    input_dim: int,
    output_dim: int,
    hidden: Sequence[int] = PAPER_HIDDEN_LAYERS,
    hidden_activation: str = "relu",
    output_activation: str = "sigmoid",
    seed: int = 0,
) -> Sequential:
    """Build the paper's fully-connected architecture.

    The sigmoid output keeps predicted probabilities inside (0, 1) — the
    corner case the paper worries about ("P̂_l or P̂_d become negative").
    """
    if input_dim < 1 or output_dim < 1:
        raise ValueError("input_dim and output_dim must be positive")
    rng = np.random.default_rng(seed)
    widths = [input_dim, *hidden]
    layers: List[Layer] = [
        Dense(width_in, width_out, hidden_activation, rng)
        for width_in, width_out in zip(widths[:-1], widths[1:])
    ]
    layers.append(Dense(widths[-1], output_dim, output_activation, rng))
    return Sequential(layers)
