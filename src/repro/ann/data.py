"""Dataset utilities: splitting and minibatching."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["train_test_split", "iterate_minibatches"]


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into ``(x_train, x_test, y_train, y_test)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y row counts differ")
    if x.shape[0] < 2:
        raise ValueError("need at least two samples to split")
    rng = rng if rng is not None else np.random.default_rng(0)
    order = rng.permutation(x.shape[0])
    cut = max(1, int(round(x.shape[0] * (1.0 - test_fraction))))
    cut = min(cut, x.shape[0] - 1)
    train_index, test_index = order[:cut], order[cut:]
    return x[train_index], x[test_index], y[train_index], y[test_index]


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled ``(x_batch, y_batch)`` pairs covering the data once."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    count = x.shape[0]
    order = (
        rng.permutation(count) if rng is not None else np.arange(count)
    )
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield x[index], y[index]
