"""Seeded random-number streams for reproducible experiments.

Every stochastic component (loss model, latency model, workload, ...) draws
from its own named stream so that adding or removing one component never
perturbs the draws seen by another.  Streams are spawned deterministically
from a single master seed with :class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        Seed from which every named stream is derived.  Two registries built
        from the same seed hand out identical streams for identical names,
        regardless of the order the streams are requested in.

    Examples
    --------
    >>> a = RngRegistry(42).stream("loss")
    >>> b = RngRegistry(42).stream("loss")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this registry was built from."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream key is derived from a stable hash of the name so stream
        identity does not depend on request order.
        """
        if name not in self._streams:
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self._master_seed, name_key])
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry, e.g. one per replication."""
        seq = np.random.SeedSequence([self._master_seed, int(salt)])
        return RngRegistry(int(seq.generate_state(1, dtype=np.uint64)[0]))
