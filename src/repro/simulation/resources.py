"""Queueing primitives built on the event kernel.

:class:`FifoStore` is an unbounded (or bounded) FIFO buffer with
signal-based blocking gets — the building block for producer queues and
broker request queues.  :class:`TokenBucket` models bounded in-flight
windows (e.g. ``max.in.flight.requests.per.connection``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .process import Signal
from .simulator import Simulator

__all__ = ["FifoStore", "TokenBucket", "StoreFull"]


class StoreFull(RuntimeError):
    """Raised when putting into a bounded :class:`FifoStore` at capacity."""


class FifoStore:
    """FIFO buffer with blocking ``get`` semantics for processes.

    ``put`` is immediate (raises :class:`StoreFull` when bounded and full);
    ``get`` returns a :class:`Signal` that triggers with the next item.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum number of buffered items; ``None`` means unbounded.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._sim = sim
        self._capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> Optional[int]:
        """Maximum buffered items, or None when unbounded."""
        return self._capacity

    @property
    def is_full(self) -> bool:
        """True when a bounded store holds ``capacity`` items."""
        return self._capacity is not None and len(self._items) >= self._capacity

    def try_put(self, item: Any) -> bool:
        """Put ``item`` if there is room; return whether it was stored."""
        if self.is_full:
            return False
        if self._getters:
            # Hand the item straight to the earliest waiting getter.
            self._getters.popleft().trigger(item)
            return True
        self._items.append(item)
        return True

    def put(self, item: Any) -> None:
        """Put ``item``, raising :class:`StoreFull` when at capacity."""
        if not self.try_put(item):
            raise StoreFull("store is at capacity")

    def get(self) -> Signal:
        """Return a signal that triggers with the next item in FIFO order."""
        signal = Signal(self._sim, name="store.get")
        if self._items:
            signal.trigger(self._items.popleft())
        else:
            self._getters.append(signal)
        return signal

    def drain(self) -> list:
        """Remove and return all buffered items immediately."""
        items = list(self._items)
        self._items.clear()
        return items


class TokenBucket:
    """A counted semaphore for bounding concurrent in-flight operations.

    ``acquire`` returns a signal that triggers once a token is available;
    ``release`` returns a token and resumes the earliest waiter.
    """

    def __init__(self, sim: Simulator, tokens: int) -> None:
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        self._sim = sim
        self._available = tokens
        self._total = tokens
        self._waiters: Deque[Signal] = deque()

    @property
    def available(self) -> int:
        """Tokens currently free."""
        return self._available

    @property
    def in_use(self) -> int:
        """Tokens currently held."""
        return self._total - self._available

    def acquire(self) -> Signal:
        """Return a signal triggered when a token has been granted."""
        signal = Signal(self._sim, name="bucket.acquire")
        if self._available > 0:
            self._available -= 1
            signal.trigger(None)
        else:
            self._waiters.append(signal)
        return signal

    def release(self) -> None:
        """Return a token; resumes the earliest waiter if any."""
        if self._waiters:
            self._waiters.popleft().trigger(None)
            return
        if self._available >= self._total:
            raise RuntimeError("release without matching acquire")
        self._available += 1
