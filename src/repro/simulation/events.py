"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic calendar queue built on :mod:`heapq`.  An
:class:`Event` is an immutable-ish record of *when* a callback should run.
Events are ordered by ``(time, priority, seq)`` so that simultaneous events
run in a deterministic order: first by explicit priority, then by insertion
order.  Determinism matters here because experiments must be exactly
reproducible from a seed.

Performance note: the heap stores plain ``(time, priority, seq, event)``
tuples rather than the :class:`Event` objects themselves.  ``seq`` is
unique, so tuple comparison never reaches the fourth element and every
sift comparison stays in C instead of dispatching to a Python-level
``__lt__``.  Experiments schedule tens of millions of events, which makes
this the hottest comparison site of the whole testbed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "EventQueue", "NORMAL_PRIORITY", "HIGH_PRIORITY", "LOW_PRIORITY"]

HIGH_PRIORITY = 0
NORMAL_PRIORITY = 10
LOW_PRIORITY = 20


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the event fires.
    priority:
        Tie-breaker for events scheduled at the same time; lower runs first.
    seq:
        Monotonic insertion counter, the final tie-breaker.
    callback:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    cancelled:
        Set by :meth:`cancel`; a cancelled event is skipped by the queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (does not check ``cancelled``)."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} p={self.priority} {name} {state}>"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancellation is lazy: cancelled events stay in the heap (as dead
    entries) and are pruned when they surface at the head — the single
    compaction path shared by :meth:`pop` and :meth:`peek_time` — which
    keeps :meth:`cancel` O(1).  When dead entries outnumber the live ones
    (beyond a small floor) the whole heap is compacted in one pass so a
    cancel-heavy workload cannot grow the heap without bound.
    """

    #: Compaction trigger: rebuild once at least this many dead entries
    #: accumulate *and* they outnumber the live entries.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._heap: list = []
        self._next_seq = 0
        self._live = 0
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def _prune_head(self) -> None:
        """Drop dead (cancelled) entries from the heap top.

        The one compaction path: :meth:`pop`, :meth:`pop_entry` and
        :meth:`peek_time` all perform this prune (inlined in the first
        two), so the heap head is always a live entry afterwards and
        ``len(self)`` never drifts from the live count.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:  # inline _prune_head
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        self._live -= 1
        return heapq.heappop(heap)[3]

    def pop_entry(self) -> Optional[Tuple[float, Event]]:
        """Like :meth:`pop` but returns ``(time, event)`` without touching
        the event's attributes (the simulator's hot loop)."""
        heap = self._heap
        while heap and heap[0][3].cancelled:  # inline _prune_head
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        self._live -= 1
        entry = heapq.heappop(heap)
        return entry[0], entry[3]

    def unpop(self, event: Event) -> None:
        """Reinsert an event obtained from :meth:`pop`.

        The original ``seq`` is preserved, so ordering relative to every
        other entry is exactly what it was before the pop.
        """
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._live += 1

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the next live event without popping it."""
        self._prune_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (no-op if already cancelled)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self._dead += 1
            if self._dead >= self.COMPACT_MIN_DEAD and self._dead > self._live:
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its dead entries (one O(n) pass).

        In place (slice assignment) so callers holding a reference to the
        heap list — the simulator's run loop — stay valid.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    def check_integrity(self) -> dict:
        """Audit the live/dead bookkeeping against an O(n) heap scan.

        The run loop and cancel path maintain ``_live``/``_dead``
        incrementally; any drift between those counters and the actual
        heap contents means events were lost or double-counted.  Returns
        a dict with ``ok`` plus the counter and scanned values (the run
        manifest embeds it and the invariant checker asserts ``ok``).
        """
        scanned_live = sum(1 for entry in self._heap if not entry[3].cancelled)
        scanned_dead = len(self._heap) - scanned_live
        return {
            "ok": scanned_live == self._live and scanned_dead == self._dead,
            "live": self._live,
            "dead": self._dead,
            "scanned_live": scanned_live,
            "scanned_dead": scanned_dead,
        }

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
        self._dead = 0
