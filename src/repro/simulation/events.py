"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic calendar queue built on :mod:`heapq`.  An
:class:`Event` is an immutable-ish record of *when* a callback should run.
Events are ordered by ``(time, priority, seq)`` so that simultaneous events
run in a deterministic order: first by explicit priority, then by insertion
order.  Determinism matters here because experiments must be exactly
reproducible from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue", "NORMAL_PRIORITY", "HIGH_PRIORITY", "LOW_PRIORITY"]

HIGH_PRIORITY = 0
NORMAL_PRIORITY = 10
LOW_PRIORITY = 20


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the event fires.
    priority:
        Tie-breaker for events scheduled at the same time; lower runs first.
    seq:
        Monotonic insertion counter, the final tie-breaker.
    callback:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    cancelled:
        Set by :meth:`cancel`; a cancelled event is skipped by the queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (does not check ``cancelled``)."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} p={self.priority} {name} {state}>"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancellation is lazy: cancelled events stay in the heap and are skipped
    on pop, which keeps :meth:`cancel` O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        event = Event(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (no-op if already cancelled)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
