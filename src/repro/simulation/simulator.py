"""The discrete-event simulator clock and run loop.

A :class:`Simulator` owns an :class:`~repro.simulation.events.EventQueue`
and a virtual clock.  Components schedule callbacks relative to *now* with
:meth:`Simulator.schedule` or at absolute times with
:meth:`Simulator.schedule_at`.  Time only advances when :meth:`run` pops
events, so a run is exactly reproducible given the same seed and schedule.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Callable, Optional

from .events import Event, EventQueue, NORMAL_PRIORITY

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, bad run bounds)."""


class Simulator:
    """Discrete-event simulation kernel.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self._queue.push(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        return self._queue.push(time, callback, *args, priority=priority)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self._queue.cancel(event)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Returns a zero-argument function that stops the recurrence.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        state = {"event": None, "stopped": False}

        def tick() -> None:
            if state["stopped"]:
                return
            callback(*args)
            if not state["stopped"]:
                state["event"] = self.schedule(interval, tick)

        state["event"] = self.schedule(
            interval if start_delay is None else start_delay, tick
        )

        def stop() -> None:
            state["stopped"] = True
            if state["event"] is not None:
                self.cancel(state["event"])

        return stop

    def step(self) -> bool:
        """Advance the clock to the next event and fire it.

        Returns False when the queue is empty (nothing fired).
        """
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event in the past")
        self._now = event.time
        # The event is off the heap; flag it so a later cancel() (e.g. a
        # component clearing a timer that already fired) is a no-op instead
        # of corrupting the queue's live/dead accounting.
        event.cancelled = True
        event.fire()
        self.events_processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or stop().

        Parameters
        ----------
        until:
            If given, stop once the next event would fire after this time and
            fast-forward the clock exactly to ``until``.
        max_events:
            Optional safety valve on the number of events processed.

        Returns
        -------
        int
            The number of events processed.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is before now={self._now}")
        self._stopped = False
        self._running = True
        processed = 0
        # Hot loop: operates on the queue's heap directly so each event
        # costs one C-level heappop instead of a peek-then-pop pair of
        # method calls.  EventQueue guarantees the list identity survives
        # cancel/compact/clear (all mutate in place), so the local binding
        # stays valid across callbacks.
        queue = self._queue
        heap = queue._heap
        try:
            while not self._stopped:
                if max_events is not None and processed >= max_events:
                    break
                while heap and heap[0][3].cancelled:
                    heappop(heap)
                    queue._dead -= 1
                if not heap:
                    break
                time = heap[0][0]
                if until is not None and time > until:
                    break
                event = heappop(heap)[3]
                queue._live -= 1
                if time < self._now:
                    raise SimulationError(
                        "event queue returned an event in the past"
                    )
                self._now = time
                # Off the heap: a late cancel() of this event must be a
                # no-op, not a live/dead counter update (see step()).
                event.cancelled = True
                event.callback(*event.args)
                processed += 1
        finally:
            self._running = False
            # Lifetime counter maintained outside the hot loop: one add per
            # run() call, so telemetry costs nothing per event.
            self.events_processed += processed
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return processed

    def stop(self) -> None:
        """Request the current :meth:`run` loop to exit after this event."""
        self._stopped = True

    def heap_integrity(self) -> dict:
        """Audit the event queue's live/dead bookkeeping (O(pending)).

        Run manifests embed the result; the invariant checker asserts its
        ``ok`` flag, catching any drift between the queue's incremental
        counters and the actual heap contents ("heap ``len`` never
        drifts").
        """
        return self._queue.check_integrity()

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        self._queue.clear()
        self._now = float(start_time)
        self._stopped = False
        self.events_processed = 0
