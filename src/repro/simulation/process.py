"""Coroutine-style simulated processes.

A *process* is a Python generator that yields either

* a ``float`` — sleep for that many simulated seconds, or
* a :class:`Signal` — suspend until the signal is triggered; the value the
  signal was triggered with becomes the result of the ``yield``.

This gives sequential-looking code (e.g. a producer's send/ack/retry loop)
without hand-written callback chains, while staying a thin layer over the
event queue.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List

from .simulator import Simulator

__all__ = ["Signal", "Process", "spawn"]


class Signal:
    """A one-shot condition that processes can wait on.

    A signal starts *pending*; :meth:`trigger` fires it exactly once with an
    optional value.  Waiters registered before the trigger are resumed in
    registration order; waiters registered after the trigger resume
    immediately (on the next event).
    """

    __slots__ = ("_sim", "_triggered", "_value", "_waiters", "name")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self._triggered = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        """Whether :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the signal was triggered with (None until triggered)."""
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, resuming all current waiters on the next event.

        Triggering twice raises ``RuntimeError``: signals are one-shot so a
        double trigger is always a logic error in the caller.
        """
        if self._triggered:
            raise RuntimeError(f"signal {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self._sim.schedule(0.0, waiter, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` to run when the signal triggers."""
        if self._triggered:
            self._sim.schedule(0.0, callback, self._value)
        else:
            self._waiters.append(callback)


class Process:
    """Driver that advances a generator through the simulator.

    Not constructed directly; use :func:`spawn`.
    """

    __slots__ = ("_sim", "_gen", "done", "result", "_done_signal", "name")

    def __init__(
        self,
        sim: Simulator,
        gen: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._gen = gen
        self.done = False
        self.result: Any = None
        self._done_signal = Signal(sim, name=f"{name}.done")
        self.name = name
        sim.schedule(0.0, self._advance, None)

    @property
    def completion(self) -> Signal:
        """Signal triggered with the generator's return value on completion."""
        return self._done_signal

    def _advance(self, sent_value: Any) -> None:
        try:
            yielded = self._gen.send(sent_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._done_signal.trigger(stop.value)
            return
        if isinstance(yielded, Signal):
            yielded.add_waiter(self._advance)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise RuntimeError(f"process {self.name!r} slept {yielded}s")
            self._sim.schedule(float(yielded), self._advance, None)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected float delay or Signal"
            )


def spawn(
    sim: Simulator,
    gen: Generator[Any, Any, Any],
    name: str = "process",
) -> Process:
    """Start ``gen`` as a simulated process on ``sim``."""
    return Process(sim, gen, name=name)
