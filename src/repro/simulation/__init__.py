"""Discrete-event simulation kernel.

The kernel provides a deterministic virtual clock (:class:`Simulator`),
coroutine-style processes (:func:`spawn`, :class:`Signal`), queueing
primitives (:class:`FifoStore`, :class:`TokenBucket`) and reproducible named
random streams (:class:`RngRegistry`).  Every other subsystem in this
repository -- the network substrate, the Kafka cluster, the testbed -- is a
set of components scheduled on one shared :class:`Simulator`.
"""

from .events import Event, EventQueue, HIGH_PRIORITY, LOW_PRIORITY, NORMAL_PRIORITY
from .process import Process, Signal, spawn
from .random import RngRegistry
from .resources import FifoStore, StoreFull, TokenBucket
from .simulator import SimulationError, Simulator

__all__ = [
    "Event",
    "EventQueue",
    "HIGH_PRIORITY",
    "NORMAL_PRIORITY",
    "LOW_PRIORITY",
    "Process",
    "Signal",
    "spawn",
    "RngRegistry",
    "FifoStore",
    "StoreFull",
    "TokenBucket",
    "SimulationError",
    "Simulator",
]
