"""Producer performance model — the authors' HPCC'19 queueing model [6].

The weighted KPI (paper Eq. 2) needs two performance metrics that are
*predictable from the configuration alone* under normal network
conditions: the mean service rate μ of the producer and the utilisation φ
of the network bandwidth.  Reference [6] models the producer as a
queueing station whose service time is the sum of a serialisation stage
and a network/acknowledgement stage; we re-derive that structure against
our hardware profile so that predicted and simulated performance come
from the same constants.

All formulas assume the normal-network regime (the paper evaluates φ and
μ "under normal circumstances, i.e. good network connection").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..kafka.config import BrokerConfig, HardwareProfile, ProducerConfig
from ..network.packet import ACK_PACKET_BYTES, DEFAULT_MTU, WIRE_HEADER_BYTES

__all__ = ["PerformanceEstimate", "ProducerPerformanceModel"]


@dataclass(frozen=True)
class PerformanceEstimate:
    """Predicted performance of one producer configuration.

    Attributes
    ----------
    service_rate:
        μ — messages per second the producer can sustain.
    service_rate_norm:
        μ scaled into [0, 1] against the hardware's serialisation ceiling
        (the fastest any configuration could go); this is the μ term used
        in the weighted KPI, which needs commensurable [0, 1] summands.
    bandwidth_utilization:
        φ — fraction of link capacity consumed at the offered arrival
        rate (capped at 1).
    mean_latency_s:
        Expected time from ingest to acknowledgement for a message under
        the M/D/1 approximation (staleness estimates build on this).
    """

    service_rate: float
    service_rate_norm: float
    bandwidth_utilization: float
    mean_latency_s: float


class ProducerPerformanceModel:
    """Queueing-based predictor of (φ, μ) per configuration.

    Parameters
    ----------
    hardware:
        The fixed machine/network resources (same object the testbed uses,
        so predictions and simulations share constants).
    broker:
        Broker timing, part of the request round trip.
    """

    #: Capacity of the per-configuration prediction memo.
    PREDICT_CACHE_CAPACITY = 4096

    def __init__(
        self,
        hardware: HardwareProfile = HardwareProfile(),
        broker: BrokerConfig = BrokerConfig(),
    ) -> None:
        self.hardware = hardware
        self.broker = broker
        # The model is pure: (config, message_bytes, network_delay_s) fully
        # determines the estimate, and ProducerConfig is frozen/hashable,
        # so memoising is safe for the model's lifetime.  Config searches
        # revisit the same candidates every round — this turns those
        # re-evaluations into dict hits.
        self._predict_cache: Dict[
            Tuple[ProducerConfig, int, float], PerformanceEstimate
        ] = {}

    # ------------------------------------------------------------ pieces

    def serialization_time_per_message(self, message_bytes: int, batch_size: int) -> float:
        """CPU stage: per-message share of serialising one batch."""
        batch_bytes = message_bytes * batch_size
        return self.hardware.serialization_time_s(batch_bytes, batch_size) / batch_size

    def request_segments(self, message_bytes: int, batch_size: int) -> int:
        """TCP segments one produce request needs."""
        application_bytes = (
            message_bytes * batch_size + self.hardware.request_overhead_bytes
        )
        per_segment = DEFAULT_MTU - WIRE_HEADER_BYTES
        return max(1, -(-application_bytes // per_segment))

    def request_wire_bytes(self, message_bytes: int, batch_size: int) -> int:
        """Bytes one produce request occupies on the wire (all segments)."""
        segments = self.request_segments(message_bytes, batch_size)
        return (
            message_bytes * batch_size
            + self.hardware.request_overhead_bytes
            + segments * WIRE_HEADER_BYTES
        )

    def round_trip_bytes(self, message_bytes: int, batch_size: int, waits_for_ack: bool) -> int:
        """All bytes a request's round trip puts on the (shared) link.

        Each data segment is acknowledged at the transport level; the
        application response (when acks are required) rides one further
        segment with its own acknowledgement.
        """
        segments = self.request_segments(message_bytes, batch_size)
        total = self.request_wire_bytes(message_bytes, batch_size)
        total += segments * ACK_PACKET_BYTES
        if waits_for_ack:
            total += (
                self.hardware.response_bytes
                + WIRE_HEADER_BYTES
                + ACK_PACKET_BYTES
            )
        return total

    def request_round_trip_s(
        self, message_bytes: int, batch_size: int, waits_for_ack: bool, network_delay_s: float = 0.0
    ) -> float:
        """Latency of one request cycle on an idle link."""
        wire = self.round_trip_bytes(message_bytes, batch_size, waits_for_ack)
        transmission = wire / self.hardware.link_capacity_bps
        propagation = 2.0 * (self.hardware.link_base_delay_s + network_delay_s)
        broker = self.broker.processing_time_s + (
            message_bytes * batch_size / self.broker.append_bytes_per_s
        )
        if waits_for_ack and self.broker.replication_factor > 1:
            broker += self.broker.acks_all_extra_s
        return transmission + propagation + broker

    # ----------------------------------------------------------- headline

    def service_rate(
        self,
        config: ProducerConfig,
        message_bytes: int,
        network_delay_s: float = 0.0,
    ) -> float:
        """μ: sustainable messages/second for this configuration.

        The producer pipeline is limited by the slowest of three stages:
        serialisation (CPU), the in-flight window over the request round
        trip, and the link's byte capacity.
        """
        waits = config.semantics.waits_for_ack
        batch = config.batch_size
        cpu_rate = 1.0 / self.serialization_time_per_message(message_bytes, batch)
        round_trip = self.request_round_trip_s(
            message_bytes, batch, waits, network_delay_s
        )
        window = (
            config.max_in_flight
            if waits
            else self.hardware.socket_window_requests
        )
        window = min(
            window,
            max(
                1,
                int(
                    self.hardware.socket_buffer_bytes
                    // self.request_wire_bytes(message_bytes, batch)
                )
                or 1,
            ),
        )
        if window == 1:
            # A single-request window cannot overlap serialisation with the
            # network round trip: the stages run as one serial cycle.
            cycle = round_trip + self.hardware.serialization_time_s(
                message_bytes * batch, batch
            )
            window_rate = batch / cycle
        else:
            window_rate = window * batch / round_trip
        link_rate = (
            self.hardware.link_capacity_bps
            * batch
            / self.round_trip_bytes(message_bytes, batch, waits)
        )
        return min(cpu_rate, window_rate, link_rate)

    def arrival_rate(self, config: ProducerConfig, message_bytes: int) -> float:
        """λ: the mean offered rate under the paper's source disciplines."""
        if config.polling_interval_s > 0:
            return 1.0 / config.polling_interval_s
        peak = self.hardware.full_load_rate(
            message_bytes, config.semantics.waits_for_ack
        )
        on = self.hardware.source_burst_on_s
        off = self.hardware.source_burst_off_s
        return peak * on / (on + off)

    def predict(
        self,
        config: ProducerConfig,
        message_bytes: int,
        network_delay_s: float = 0.0,
    ) -> PerformanceEstimate:
        """Predict (φ, μ, latency) for one configuration (memoised)."""
        if message_bytes < 1:
            raise ValueError("message_bytes must be >= 1")
        key = (config, message_bytes, network_delay_s)
        cached = self._predict_cache.get(key)
        if cached is not None:
            return cached
        estimate = self._predict_uncached(config, message_bytes, network_delay_s)
        if len(self._predict_cache) >= self.PREDICT_CACHE_CAPACITY:
            self._predict_cache.clear()
        self._predict_cache[key] = estimate
        return estimate

    def predict_many(
        self,
        configs: Sequence[ProducerConfig],
        message_bytes: int,
        network_delay_s: float = 0.0,
    ) -> List[PerformanceEstimate]:
        """Predict a batch of configurations, sharing the memo.

        The model is closed-form per configuration (no cross-candidate
        coupling), so batching here is about the memo: a hill-climb round
        re-scores mostly-seen candidates and pays the arithmetic only for
        the new ones.
        """
        return [
            self.predict(config, message_bytes, network_delay_s)
            for config in configs
        ]

    def _predict_uncached(
        self,
        config: ProducerConfig,
        message_bytes: int,
        network_delay_s: float,
    ) -> PerformanceEstimate:
        mu = self.service_rate(config, message_bytes, network_delay_s)
        lam = self.arrival_rate(config, message_bytes)
        throughput = min(lam, mu)
        wire_per_message = self.round_trip_bytes(
            message_bytes, config.batch_size, config.semantics.waits_for_ack
        ) / config.batch_size
        phi = min(1.0, throughput * wire_per_message / self.hardware.link_capacity_bps)
        # Normalise μ by the serialisation ceiling at B=1 — the fastest the
        # machine could ever serve this message size.
        ceiling = 1.0 / self.serialization_time_per_message(message_bytes, 1)
        mu_norm = min(1.0, mu / ceiling)
        # M/D/1 waiting time approximation for the latency estimate.
        rho = min(0.999, lam / mu) if mu > 0 else 0.999
        service_s = 1.0 / mu
        wait_s = (rho * service_s) / (2.0 * (1.0 - rho))
        latency = service_s + wait_s + self.request_round_trip_s(
            message_bytes, config.batch_size, config.semantics.waits_for_ack, network_delay_s
        )
        return PerformanceEstimate(
            service_rate=mu,
            service_rate_norm=mu_norm,
            bandwidth_utilization=phi,
            mean_latency_s=latency,
        )
