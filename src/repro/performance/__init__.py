"""Producer performance prediction (the authors' HPCC'19 model [6]).

Provides the (φ, μ) estimates the weighted KPI needs, plus measured-side
bandwidth accounting for validation.
"""

from .bandwidth import measured_goodput_bytes_per_s, measured_utilization
from .queueing import PerformanceEstimate, ProducerPerformanceModel

__all__ = [
    "PerformanceEstimate",
    "ProducerPerformanceModel",
    "measured_utilization",
    "measured_goodput_bytes_per_s",
]
