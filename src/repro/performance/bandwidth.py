"""Bandwidth accounting helpers.

Complements :mod:`~repro.performance.queueing` with measured-side
utilisation: given link statistics from a simulation run, compute the
achieved bandwidth utilisation φ so predicted and measured values can be
compared in the validation benchmark.
"""

from __future__ import annotations

from ..network.link import Link

__all__ = ["measured_utilization", "measured_goodput_bytes_per_s"]


def measured_utilization(link: Link, duration_s: float) -> float:
    """φ achieved over a run: bytes offered to the link over capacity.

    Both directions count — they share the bridge capacity (see
    :class:`~repro.network.link.SharedCapacity`).
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    sent = link.forward.stats.bytes_sent + link.reverse.stats.bytes_sent
    return min(1.0, sent / (link.forward.capacity_bps * duration_s))


def measured_goodput_bytes_per_s(link: Link, duration_s: float) -> float:
    """Delivered (non-dropped) bytes per second, both directions.

    Approximates goodput by scaling offered bytes with the delivered
    packet fraction per direction.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    total = 0.0
    for direction in (link.forward, link.reverse):
        if direction.stats.sent:
            delivered_fraction = direction.stats.delivered / direction.stats.sent
            total += direction.stats.bytes_sent * delivered_fraction
    return total / duration_s
