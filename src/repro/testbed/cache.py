"""On-disk cache of measured experiment results.

Every reproduction artefact is a grid of fully deterministic seeded
experiments: the :class:`~repro.testbed.scenario.Scenario` (including its
producer configuration, hardware profile, broker configuration and seed)
is the *complete* input of a run.  That makes results safely cacheable —
re-running a sweep, re-collecting training data or re-building a figure
bench can reuse every row that was already measured.

Keys are a SHA-256 over a canonical JSON encoding of the scenario plus a
*code-version salt*.  The salt defaults to the package version plus a
``CACHE_EPOCH`` counter; bump :data:`CACHE_EPOCH` whenever a change to the
simulator, producer, network or testbed alters measured outputs, and every
previously cached row is invalidated at once (stale entries are simply
never looked up again — ``clear()`` reclaims the disk space).

Usage::

    cache = ResultCache("~/.cache/repro-results")
    results = run_many(scenarios, workers=4, cache=cache)
    print(cache.hits, cache.misses)
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any, Optional

from .results import ExperimentResult
from .scenario import Scenario

__all__ = ["ResultCache", "scenario_fingerprint", "CACHE_EPOCH", "default_salt"]

#: Bump when simulator/producer/network/testbed changes alter measured
#: outputs for the same scenario; this invalidates every cached row.
CACHE_EPOCH = 1


def default_salt() -> str:
    """The default code-version salt: package version + cache epoch."""
    from .. import __version__

    return f"{__version__}+e{CACHE_EPOCH}"


def _canonical(value: Any) -> Any:
    """Recursively convert a value into canonical JSON-encodable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, float):
        # repr round-trips exactly; 1.0 and 1 must not collide.
        return f"f:{value!r}"
    return value


def scenario_fingerprint(scenario: Scenario, salt: str) -> str:
    """Stable hex digest identifying ``(scenario, salt)``.

    Covers every Scenario field — producer configuration, hardware
    profile, broker configuration, seed, message count — so two scenarios
    collide only if they define bit-identical experiments under the same
    code version.
    """
    payload = {"salt": salt, "scenario": _canonical(scenario)}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of measured :class:`ExperimentResult` rows.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    salt:
        Code-version salt mixed into every key; defaults to
        :func:`default_salt`.  Changing the salt makes every existing
        entry a miss without touching the files.

    Attributes
    ----------
    hits / misses:
        Lookup counters for this cache instance (reset with
        :meth:`reset_stats`).
    """

    def __init__(self, root: "str | Path", salt: Optional[str] = None) -> None:
        self.root = Path(root).expanduser()
        self.salt = salt if salt is not None else default_salt()
        self.hits = 0
        self.misses = 0

    def key(self, scenario: Scenario) -> str:
        """The cache key of a scenario under this cache's salt."""
        return scenario_fingerprint(scenario, self.salt)

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big sweeps.
        return self.root / key[:2] / f"{key}.json"

    def get(self, scenario: Scenario) -> Optional[ExperimentResult]:
        """Return the cached result for ``scenario`` or None on a miss.

        Corrupted or unreadable entries count as misses (and will be
        overwritten by the next :meth:`put`).
        """
        path = self._path(self.key(scenario))
        try:
            data = json.loads(path.read_text())
            result = _result_from_payload(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, scenario: Scenario, result: ExperimentResult) -> Path:
        """Store a measured result; returns the entry's path."""
        path = self._path(self.key(scenario))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "salt": self.salt,
            "seed": scenario.seed,
            "result": _result_to_payload(result),
        }
        # Write-then-rename so a crashed run never leaves a torn entry.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every entry under ``root``; returns the count removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0


def _result_to_payload(result: ExperimentResult) -> dict:
    return dataclasses.asdict(result)


def _result_from_payload(payload: dict) -> ExperimentResult:
    fields = {field.name for field in dataclasses.fields(ExperimentResult)}
    if not fields.issuperset(payload):
        raise ValueError("cache entry has unknown result fields")
    return ExperimentResult(**payload)
