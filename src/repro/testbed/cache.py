"""On-disk cache of measured experiment results.

Every reproduction artefact is a grid of fully deterministic seeded
experiments: the :class:`~repro.testbed.scenario.Scenario` (including its
producer configuration, hardware profile, broker configuration and seed)
is the *complete* input of a run.  That makes results safely cacheable —
re-running a sweep, re-collecting training data or re-building a figure
bench can reuse every row that was already measured.

Keys are a SHA-256 over a canonical JSON encoding of the scenario plus a
*code-version salt*.  The salt defaults to the package version plus a
``CACHE_EPOCH`` counter; bump :data:`CACHE_EPOCH` whenever a change to the
simulator, producer, network or testbed alters measured outputs, and every
previously cached row is invalidated at once (stale entries are simply
never looked up again — ``clear()`` reclaims the disk space).

Usage::

    cache = ResultCache("~/.cache/repro-results")
    results = run_many(scenarios, workers=4, cache=cache)
    print(cache.hits, cache.misses)
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any, Optional

from .results import ExperimentResult
from .scenario import Scenario

__all__ = [
    "ResultCache",
    "Quarantine",
    "scenario_fingerprint",
    "CACHE_EPOCH",
    "default_salt",
]

#: Bump when simulator/producer/network/testbed changes alter measured
#: outputs for the same scenario; this invalidates every cached row.
CACHE_EPOCH = 1


def default_salt() -> str:
    """The default code-version salt: package version + cache epoch."""
    from .. import __version__

    return f"{__version__}+e{CACHE_EPOCH}"


def _canonical(value: Any) -> Any:
    """Recursively convert a value into canonical JSON-encodable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, float):
        # repr round-trips exactly; 1.0 and 1 must not collide.
        return f"f:{value!r}"
    return value


def scenario_fingerprint(scenario: Scenario, salt: str) -> str:
    """Stable hex digest identifying ``(scenario, salt)``.

    Covers every Scenario field — producer configuration, hardware
    profile, broker configuration, seed, message count — so two scenarios
    collide only if they define bit-identical experiments under the same
    code version.
    """
    payload = {"salt": salt, "scenario": _canonical(scenario)}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of measured :class:`ExperimentResult` rows.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    salt:
        Code-version salt mixed into every key; defaults to
        :func:`default_salt`.  Changing the salt makes every existing
        entry a miss without touching the files.

    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`;
        when given, lookups maintain ``cache.hits`` / ``cache.misses`` /
        ``cache.corrupt_entries`` counters in it.

    Attributes
    ----------
    hits / misses / corruptions:
        Lookup counters for this cache instance (reset with
        :meth:`reset_stats`).
    """

    #: Subdirectory corrupt entries are moved into for post-mortem.
    CORRUPT_DIR = "corrupt"

    def __init__(
        self,
        root: "str | Path",
        salt: Optional[str] = None,
        metrics=None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.salt = salt if salt is not None else default_salt()
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.corruptions = 0

    def key(self, scenario: Scenario) -> str:
        """The cache key of a scenario under this cache's salt."""
        return scenario_fingerprint(scenario, self.salt)

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big sweeps.
        return self.root / key[:2] / f"{key}.json"

    def get(self, scenario: Scenario) -> Optional[ExperimentResult]:
        """Return the cached result for ``scenario`` or None on a miss.

        A corrupt entry (present on disk but unreadable or undecodable) is
        *quarantined*: the bad file is moved into ``root/corrupt/`` so it
        is never re-parsed on the next sweep, the ``corruptions`` counter
        (and the ``cache.corrupt_entries`` metric, when a registry is
        attached) is incremented, and the lookup counts as a miss — the
        next :meth:`put` writes a fresh entry in its place.
        """
        path = self._path(self.key(scenario))
        try:
            text = path.read_text()
        except OSError:
            self._count_miss()
            return None
        try:
            data = json.loads(text)
            result = _result_from_payload(data["result"])
        except (ValueError, KeyError, TypeError) as error:
            self._quarantine_corrupt(path, error)
            self._count_miss()
            return None
        self.hits += 1
        if self.metrics is not None:
            self.metrics.counter("cache.hits").inc()
        return result

    def _count_miss(self) -> None:
        self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache.misses").inc()

    def _quarantine_corrupt(self, path: Path, error: Exception) -> None:
        """Move a corrupt entry out of the lookup path and count it."""
        self.corruptions += 1
        if self.metrics is not None:
            self.metrics.counter("cache.corrupt_entries").inc()
        target = self.root / self.CORRUPT_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            path.replace(target)
        except OSError:
            # Quarantining is best-effort; deleting still stops re-parsing.
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, scenario: Scenario, result: ExperimentResult) -> Path:
        """Store a measured result; returns the entry's path."""
        path = self._path(self.key(scenario))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "salt": self.salt,
            "seed": scenario.seed,
            "result": _result_to_payload(result),
        }
        # Write-then-rename so a crashed run never leaves a torn entry.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every entry under ``root``; returns the count removed."""
        removed = 0
        if not self.root.exists():
            return removed
        # Deletion is order-invariant: every entry goes regardless.
        for entry in self.root.glob("*/*.json"):  # repro: allow[REPRO106]
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(
            1
            # Counting is order-invariant.
            for entry in self.root.glob("*/*.json")  # repro: allow[REPRO106]
            if entry.parent.name != self.CORRUPT_DIR
        )

    def reset_stats(self) -> None:
        """Zero the hit/miss/corruption counters."""
        self.hits = 0
        self.misses = 0
        self.corruptions = 0


class Quarantine:
    """Persistent record of scenarios whose runs fail repeatedly.

    A scenario that exhausts its retry budget gets a failure recorded
    here, keyed by its cache fingerprint; once a scenario accumulates
    ``budget`` recorded failures it is *quarantined* — subsequent
    :func:`~repro.testbed.runner.run_many` calls with this quarantine skip
    it immediately (its slot becomes a
    :class:`~repro.testbed.runner.RunFailure`) instead of burning its
    retry budget again or failing the whole grid.

    State is one JSON file, written atomically on every change, so a
    killed sweep never loses or tears the record.
    """

    def __init__(self, path: "str | Path", budget: int = 1) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.path = Path(path).expanduser()
        self.budget = budget
        self._entries: dict = {}
        if self.path.exists():
            try:
                self._entries = json.loads(self.path.read_text())
            except (OSError, ValueError):
                # A torn or corrupt quarantine file resets to empty: losing
                # quarantine state only costs re-running the retry budget.
                self._entries = {}

    def record_failure(self, fingerprint: str, error: str, seed: int = 0) -> bool:
        """Record one retry-budget exhaustion; True if now quarantined."""
        entry = self._entries.setdefault(
            fingerprint, {"failures": 0, "last_error": "", "seed": seed}
        )
        entry["failures"] += 1
        entry["last_error"] = error
        entry["seed"] = seed
        self._save()
        return entry["failures"] >= self.budget

    def is_quarantined(self, fingerprint: str) -> bool:
        """Whether a scenario has used up its quarantine budget."""
        entry = self._entries.get(fingerprint)
        return entry is not None and entry["failures"] >= self.budget

    def failures(self, fingerprint: str) -> int:
        """Recorded failure count for a fingerprint (0 if unknown)."""
        entry = self._entries.get(fingerprint)
        return entry["failures"] if entry is not None else 0

    def last_error(self, fingerprint: str) -> str:
        """The most recent recorded error for a fingerprint."""
        entry = self._entries.get(fingerprint)
        return entry["last_error"] if entry is not None else ""

    def entries(self) -> dict:
        """A copy of the full quarantine record."""
        return {key: dict(value) for key, value in self._entries.items()}

    def remove(self, fingerprint: str) -> bool:
        """Forgive one scenario; True if it had a record."""
        removed = self._entries.pop(fingerprint, None) is not None
        if removed:
            self._save()
        return removed

    def clear(self) -> int:
        """Forgive everything; returns the number of records removed."""
        count = len(self._entries)
        self._entries = {}
        self._save()
        return count

    def __len__(self) -> int:
        return sum(
            1
            for entry in self._entries.values()
            if entry["failures"] >= self.budget
        )

    def _save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._entries, sort_keys=True, indent=2))
        tmp.replace(self.path)


def _result_to_payload(result: ExperimentResult) -> dict:
    return dataclasses.asdict(result)


def _result_from_payload(payload: dict) -> ExperimentResult:
    fields = {field.name for field in dataclasses.fields(ExperimentResult)}
    if not fields.issuperset(payload):
        raise ValueError("cache entry has unknown result fields")
    return ExperimentResult(**payload)
