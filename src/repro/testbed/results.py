"""Experiment results: the measured reliability metrics plus diagnostics."""

from __future__ import annotations

import csv
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..kafka.state import DeliveryCase

__all__ = ["ExperimentResult", "wilson_interval", "save_results_csv", "load_results_csv"]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple:
    """Wilson score interval for a binomial proportion.

    Used to report the confidence interval that replaces the paper's
    10^6-message sample when benches run with fewer messages.
    """
    if trials <= 0:
        return (0.0, 1.0)
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass
class ExperimentResult:
    """Outcome of one testbed experiment.

    ``p_loss`` and ``p_duplicate`` are the paper's reliability metrics,
    measured by consumer reconciliation (the ground truth).  The case
    census is the producer-view Fig. 2 classification; the two agree up to
    the documented persisted-but-unacked divergence.
    """

    # Features (paper Eq. 1 inputs)
    message_bytes: int
    timeliness_s: Optional[float]
    network_delay_s: float
    loss_rate: float
    semantics: str
    batch_size: int
    polling_interval_s: float
    message_timeout_s: float
    # Outputs
    produced: int
    p_loss: float
    p_duplicate: float
    p_stale: float = 0.0
    # Diagnostics
    case_fractions: Dict[str, float] = field(default_factory=dict)
    persisted_but_unacked: int = 0
    duplicate_copies: int = 0
    mean_ack_latency_s: Optional[float] = None
    p50_ack_latency_s: Optional[float] = None
    p95_ack_latency_s: Optional[float] = None
    throughput_msgs_per_s: Optional[float] = None
    simulated_duration_s: float = 0.0
    retransmissions: int = 0
    request_retries: int = 0
    seed: int = 0
    # Run manifest (observability): attached when the experiment ran with
    # telemetry.  Excluded from equality — wall time differs between
    # bit-identical reruns — and from repr/CSV noise.
    manifest: Optional[Dict] = field(default=None, compare=False, repr=False)

    @property
    def p_loss_ci(self) -> tuple:
        """95 % Wilson interval on the loss probability."""
        return wilson_interval(round(self.p_loss * self.produced), self.produced)

    @property
    def p_duplicate_ci(self) -> tuple:
        """95 % Wilson interval on the duplicate probability."""
        return wilson_interval(round(self.p_duplicate * self.produced), self.produced)

    def feature_vector(self) -> Dict[str, float]:
        """The Eq. 1 inputs as a flat mapping (model-training format)."""
        return {
            "message_bytes": float(self.message_bytes),
            "timeliness_s": float(self.timeliness_s) if self.timeliness_s else 0.0,
            "network_delay_s": float(self.network_delay_s),
            "loss_rate": float(self.loss_rate),
            "semantics": self.semantics,
            "batch_size": float(self.batch_size),
            "polling_interval_s": float(self.polling_interval_s),
            "message_timeout_s": float(self.message_timeout_s),
        }

    def to_dict(self) -> Dict:
        """Flat JSON-serialisable representation."""
        data = asdict(self)
        data["timeliness_s"] = self.timeliness_s if self.timeliness_s is not None else ""
        return data

    @classmethod
    def case_key(cls, case: DeliveryCase) -> str:
        """Stable string key for a delivery case."""
        return f"case{case.value}"


_CSV_FIELDS = [
    "message_bytes",
    "timeliness_s",
    "network_delay_s",
    "loss_rate",
    "semantics",
    "batch_size",
    "polling_interval_s",
    "message_timeout_s",
    "produced",
    "p_loss",
    "p_duplicate",
    "p_stale",
    "seed",
]


def save_results_csv(results: Iterable[ExperimentResult], path: "str | Path") -> None:
    """Persist results (features + metrics) as CSV for model training."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for result in results:
            row = {name: getattr(result, name) for name in _CSV_FIELDS}
            row["timeliness_s"] = result.timeliness_s if result.timeliness_s is not None else ""
            writer.writerow(row)


def load_results_csv(path: "str | Path") -> List[ExperimentResult]:
    """Load results previously saved with :func:`save_results_csv`."""
    out: List[ExperimentResult] = []
    with Path(path).open() as handle:
        for row in csv.DictReader(handle):
            out.append(
                ExperimentResult(
                    message_bytes=int(row["message_bytes"]),
                    timeliness_s=float(row["timeliness_s"]) if row["timeliness_s"] else None,
                    network_delay_s=float(row["network_delay_s"]),
                    loss_rate=float(row["loss_rate"]),
                    semantics=row["semantics"],
                    batch_size=int(row["batch_size"]),
                    polling_interval_s=float(row["polling_interval_s"]),
                    message_timeout_s=float(row["message_timeout_s"]),
                    produced=int(row["produced"]),
                    p_loss=float(row["p_loss"]),
                    p_duplicate=float(row["p_duplicate"]),
                    p_stale=float(row["p_stale"]),
                    seed=int(row["seed"]),
                )
            )
    return out
