"""Training-data collection, paper Fig. 3.

The feature space of Eq. 1 grows exponentially, so the paper splits it by
the current network environment:

* **Normal cases** (D < 200 ms, L = 0): network features are inert; the
  effective features are the stream type and the overload-related
  configuration parameters (message size, polling interval, message
  timeout, batch size, semantics).
* **Abnormal cases** (faults injected): proper values are fixed for the
  normal-case features so their impact can be neglected, and the grid
  covers the network features (D, L) against the fault-related
  configuration (semantics, batch size, message size).

``collect_training_data`` materialises either grid (or both) into measured
:class:`~repro.testbed.results.ExperimentResult` rows ready for model
training; per-region row budgets keep collection time bounded, mirroring
the paper's "minimise the time spent on collecting training data".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..kafka.semantics import DeliverySemantics
from .cache import ResultCache
from .results import ExperimentResult
from .runner import run_many
from .scenario import Scenario
from .sweep import apply_axis

__all__ = ["CollectionPlan", "normal_case_plan", "abnormal_case_plan", "collect_training_data"]


@dataclass
class CollectionPlan:
    """A named grid of scenarios to measure.

    Attributes
    ----------
    name:
        Region label ("normal" / "abnormal").
    base:
        Scenario supplying unswept features.
    axes:
        Axis name → candidate values (see :func:`~repro.testbed.sweep.apply_axis`).
    max_rows:
        Optional cap; when the full grid is larger, a seeded random subset
        of this size is drawn (Latin-hypercube-flavoured subsampling keeps
        coverage broad).
    """

    name: str
    base: Scenario
    axes: Dict[str, Sequence]
    max_rows: Optional[int] = None

    def scenarios(self, rng: Optional[np.random.Generator] = None) -> List[Scenario]:
        """Materialise the grid (subsampled when ``max_rows`` is set)."""
        names = list(self.axes)
        grid = list(itertools.product(*(self.axes[name] for name in names)))
        if self.max_rows is not None and len(grid) > self.max_rows:
            rng = rng if rng is not None else np.random.default_rng(self.base.seed)
            index = rng.choice(len(grid), size=self.max_rows, replace=False)
            grid = [grid[i] for i in sorted(index)]
        out: List[Scenario] = []
        for row, values in enumerate(grid):
            scenario = self.base
            for name, value in zip(names, values):
                scenario = apply_axis(scenario, name, value)
            out.append(scenario.with_(seed=self.base.seed + 17 * row))
        return out


def normal_case_plan(
    base: Optional[Scenario] = None,
    message_count: int = 3000,
    max_rows: Optional[int] = None,
) -> CollectionPlan:
    """The Fig. 3 normal-case grid (D < 200 ms, L = 0).

    Effective features: message size, delivery semantics, batch size,
    polling interval and message timeout, under the full-load/polled
    source discipline where overload losses live.
    """
    if base is None:
        base = Scenario(message_count=message_count)
    base = base.with_(network_delay_s=0.0, loss_rate=0.0)
    axes: Dict[str, Sequence] = {
        "message_bytes": [100, 200, 400, 800],
        "config.semantics": [
            DeliverySemantics.AT_MOST_ONCE,
            DeliverySemantics.AT_LEAST_ONCE,
        ],
        "config.batch_size": [1, 2, 5],
        "config.polling_interval_s": [0.0, 0.03, 0.06, 0.09],
        "config.message_timeout_s": [0.5, 1.0, 1.5, 3.0],
    }
    return CollectionPlan("normal", base, axes, max_rows)


def abnormal_case_plan(
    base: Optional[Scenario] = None,
    message_count: int = 3000,
    max_rows: Optional[int] = None,
) -> CollectionPlan:
    """The Fig. 3 abnormal-case grid (network faults injected).

    Normal-case features are pinned at proper values (generous timeout,
    stable polling is kept at full load to expose congestion); the grid
    covers delay, loss, semantics, batch size and message size.
    """
    if base is None:
        base = Scenario(message_count=message_count)
    base = base.with_(
        config=base.config.with_(message_timeout_s=1.5, polling_interval_s=0.0)
    )
    axes: Dict[str, Sequence] = {
        "message_bytes": [100, 200, 400, 800],
        "network_delay_s": [0.02, 0.1, 0.2],
        "loss_rate": [0.0, 0.05, 0.1, 0.15, 0.2, 0.3],
        "config.semantics": [
            DeliverySemantics.AT_MOST_ONCE,
            DeliverySemantics.AT_LEAST_ONCE,
        ],
        "config.batch_size": [1, 2, 5, 10],
    }
    return CollectionPlan("abnormal", base, axes, max_rows)


def collect_training_data(
    plans: Sequence[CollectionPlan],
    progress: Optional[Callable[[int, int, Scenario], None]] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[ExperimentResult]:
    """Run every scenario of every plan and return the measured rows.

    ``workers`` fans the collection out over a process pool and ``cache``
    reuses rows measured by earlier collections (see
    :func:`~repro.testbed.runner.run_many`); the rows are identical to a
    serial run either way.  ``progress(index, total, scenario)`` fires as
    each row completes.
    """
    scenarios: List[Scenario] = []
    for plan in plans:
        scenarios.extend(plan.scenarios())
    return run_many(scenarios, workers=workers, cache=cache, progress=progress)
