"""The parallel experiment engine.

Every experiment is a pure function of its :class:`Scenario` (the seed
fixes all random streams and unique keys restart per run), so a grid of
scenarios is embarrassingly parallel: :func:`run_many` fans the work out
over a spawn-based :mod:`multiprocessing` pool and returns results in the
input order, bit-identical to running the same scenarios serially.

Worker count resolution (:func:`resolve_workers`):

1. an explicit ``workers=`` argument wins (``"auto"`` defers to 2–3),
2. else the ``REPRO_WORKERS`` environment variable,
3. else ``os.cpu_count() - 1`` (at least 1).

Engine overhead control: the pool path reuses one persistent
spawn-context pool across :func:`run_many` calls (workers pre-import the
experiment stack at pool creation, so repeated sweeps never re-pay
process start-up), scenarios cross the process boundary as lean
field-diff payloads rehydrated in the worker, and chunks are sized
adaptively (~4 per worker, clamped to 32).  When a pool cannot win —
``workers <= 1``, a single-CPU host, or a grid that fits in one chunk —
:func:`run_many` automatically falls back to the in-process serial loop
and records why (``execution_info`` out-param and an optional
``runner.auto_serial.*`` metrics counter), so the engine never loses to
serial execution on dispatch overhead.  A
:class:`~repro.testbed.cache.ResultCache` can be threaded through so
already-measured rows are reused instead of re-run; fresh measurements
are written back to the cache as they complete.

Failures inside a worker never take the whole grid down silently: each
scenario's exception is captured with its traceback and either re-raised
as :class:`ExperimentFailed` (default) or returned in-slot as a
:class:`RunFailure` (``on_error="collect"``).

Fault tolerance (:class:`RetryPolicy`): transiently failing scenarios are
retried with exponential backoff plus deterministic jitter, each attempt
bounded by an optional wall-clock timeout (enforced by running attempts
in pool workers the parent can abandon).  Because fresh results are
written to the cache as they complete, an interrupted sweep — killed
worker, timeout, Ctrl-C — resumes from the cache on the next call
without recomputing finished scenarios.  A persistent
:class:`~repro.testbed.cache.Quarantine` parks scenarios that keep
exhausting their retry budget so one poisoned grid point cannot sink the
sweep.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, fields as dataclass_fields
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..kafka.config import BrokerConfig, HardwareProfile, ProducerConfig
from ..observability.metrics import MetricsRegistry
from ..observability.telemetry import TelemetryConfig
from .cache import Quarantine, ResultCache, default_salt, scenario_fingerprint
from .experiment import run_experiment
from .results import ExperimentResult
from .scenario import Scenario

__all__ = [
    "WORKERS_ENV_VAR",
    "RetryPolicy",
    "RunFailure",
    "ExperimentFailed",
    "resolve_workers",
    "run_many",
    "shutdown_pool",
]

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Progress callback signature: ``(index, total, scenario)`` where
#: ``index`` is the completed scenario's position in the input sequence.
ProgressFn = Callable[[int, int, Scenario], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total tries per scenario (1 = no retry).
    backoff_base_s:
        Pause before the first retry; attempt ``n`` waits
        ``backoff_base_s * backoff_factor**(n-1)``.
    backoff_factor:
        Exponential growth of the backoff.
    jitter_fraction:
        Symmetric jitter applied to each backoff, derived from a BLAKE2b
        hash of ``(scenario fingerprint, attempt)`` — fully deterministic,
        so a re-run sleeps the exact same schedule.
    timeout_s:
        Optional wall-clock budget per attempt.  Enforced by running
        attempts in pool workers the parent abandons on expiry, so it
        also covers hung (not just slow) runs; requires the pool path and
        therefore forces one even for a single pending scenario.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when given")

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter_fraction == 0.0 or base == 0.0:
            return base
        digest = hashlib.blake2b(
            f"{key}:{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "big") / 2**64
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


@dataclass
class RunFailure:
    """A captured per-scenario failure (``on_error="collect"`` slot)."""

    scenario: Scenario
    error: str
    traceback: str
    attempts: int = 1
    fingerprint: str = ""
    quarantined: bool = False

    def __bool__(self) -> bool:  # failed slots are falsy for easy filtering
        return False


class ExperimentFailed(RuntimeError):
    """One or more scenarios of a :func:`run_many` grid raised.

    The message identifies the first few failing scenarios by cache
    fingerprint and seed and quotes the tail of each traceback, so a
    failed overnight sweep is diagnosable from the exception alone.
    """

    #: How many failures the message details.
    SHOWN = 3
    #: Traceback lines quoted per shown failure.
    TRACEBACK_TAIL = 6

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures = list(failures)
        shown = self.failures[: self.SHOWN]
        lines = [
            f"{len(self.failures)} scenario(s) failed "
            f"(showing first {len(shown)}):"
        ]
        for position, failure in enumerate(shown, start=1):
            fingerprint = failure.fingerprint or scenario_fingerprint(
                failure.scenario, default_salt()
            )
            attempts = (
                f", {failure.attempts} attempt(s)" if failure.attempts > 1 else ""
            )
            lines.append(
                f"  [{position}] {fingerprint[:12]} seed={failure.scenario.seed}"
                f"{attempts}: {failure.error}"
            )
            tail = failure.traceback.strip().splitlines()[-self.TRACEBACK_TAIL :]
            lines.extend(f"      {line}" for line in tail)
        if len(self.failures) > len(shown):
            lines.append(f"  ... and {len(self.failures) - len(shown)} more")
        super().__init__("\n".join(lines))


def resolve_workers(workers: Optional[Union[int, str]] = None) -> int:
    """Resolve the effective worker count (argument > env > cpu_count-1).

    ``"auto"`` — the CLI default — behaves exactly like ``None``: consult
    ``REPRO_WORKERS`` (which may itself say ``auto``), else size to the
    machine (``cpu_count - 1``, at least 1).  Numeric strings are accepted
    so shell-sourced values need no pre-parsing.
    """
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text in ("", "auto"):
            workers = None
        else:
            try:
                workers = int(text)
            except ValueError:
                raise ValueError(
                    f'workers must be an integer or "auto", got {text!r}'
                ) from None
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env and env.lower() != "auto":
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            workers = max(1, (os.cpu_count() or 2) - 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def _cpu_count() -> int:
    """Host CPU count (indirection point so tests can pin the topology)."""
    return os.cpu_count() or 1


#: Upper bound on the adaptive chunk size: past this, tail latency (one
#: worker stuck with a huge final chunk) costs more than the saved IPC.
_MAX_CHUNKSIZE = 32

#: Counter-name slugs for the auto-serial reasons.
_REASON_SLUGS = {
    "workers<=1": "workers_le_1",
    "cpu_count==1": "cpu_count_eq_1",
    "single_chunk": "single_chunk",
}

_WARM_POOL: Optional[Any] = None
_WARM_POOL_WORKERS = 0


def _pool_initializer() -> None:
    """Warm a fresh worker at pool creation.

    Importing the experiment stack (DES core, broker model, numpy) is the
    dominant cost of a cold spawn worker; doing it in the initializer
    moves that bill to pool creation — paid once per process lifetime —
    instead of the first dispatched chunk of every sweep.
    """
    import repro.testbed.experiment  # noqa: F401


def _warm_pool(workers: int):
    """The persistent spawn pool, (re)created when the size changes."""
    global _WARM_POOL, _WARM_POOL_WORKERS
    if _WARM_POOL is not None and _WARM_POOL_WORKERS != workers:
        shutdown_pool()
    if _WARM_POOL is None:
        context = multiprocessing.get_context("spawn")
        _WARM_POOL = context.Pool(
            processes=workers, initializer=_pool_initializer
        )
        _WARM_POOL_WORKERS = workers
    return _WARM_POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent).

    Registered with :mod:`atexit`; call it explicitly to release the
    worker processes early (e.g. between benchmark phases) or after a
    dispatch error left the pool in an unknown state.
    """
    global _WARM_POOL, _WARM_POOL_WORKERS
    if _WARM_POOL is not None:
        _WARM_POOL.terminate()
        _WARM_POOL.join()
        _WARM_POOL = None
        _WARM_POOL_WORKERS = 0


atexit.register(shutdown_pool)


_SCENARIO_DEFAULTS = Scenario()
_NESTED_FIELDS = {
    "config": ProducerConfig,
    "hardware": HardwareProfile,
    "broker_config": BrokerConfig,
}


def _diff_dataclass(value: Any, default: Any) -> Dict[str, Any]:
    """Fields of ``value`` that differ from ``default``, enums as values."""
    diff: Dict[str, Any] = {}
    for field_info in dataclass_fields(value):
        current = getattr(value, field_info.name)
        if current == getattr(default, field_info.name):
            continue
        diff[field_info.name] = (
            current.value if isinstance(current, Enum) else current
        )
    return diff


def _encode_scenario(scenario: Scenario) -> Dict[str, Any]:
    """Lean wire form of a scenario: only the fields that differ.

    Sweeps vary a handful of axes around shared defaults, so the diff is
    typically a few primitives where a full pickle carries every field of
    the scenario plus three nested dataclasses — per-task IPC shrinks by
    roughly an order of magnitude.  :func:`_decode_scenario` is the exact
    inverse (round-trip equality is unit-tested), so workers reconstruct
    the identical frozen :class:`Scenario`.
    """
    payload: Dict[str, Any] = {}
    for field_info in dataclass_fields(Scenario):
        current = getattr(scenario, field_info.name)
        if current == getattr(_SCENARIO_DEFAULTS, field_info.name):
            continue
        nested = _NESTED_FIELDS.get(field_info.name)
        payload[field_info.name] = (
            _diff_dataclass(current, nested()) if nested else current
        )
    return payload


def _decode_scenario(payload: Dict[str, Any]) -> Scenario:
    """Rehydrate a :func:`_encode_scenario` payload into a scenario."""
    changes = dict(payload)
    if "config" in changes:
        # with_() parses the semantics enum back from its wire value.
        changes["config"] = ProducerConfig().with_(**changes["config"])
    for name in ("hardware", "broker_config"):
        if name in changes:
            changes[name] = _NESTED_FIELDS[name](**changes[name])
    return _SCENARIO_DEFAULTS.with_(**changes) if changes else _SCENARIO_DEFAULTS


def _run_one(job: Tuple[Scenario, Optional[TelemetryConfig]]) -> Tuple[bool, object]:
    """Pool worker: run one scenario, capturing any exception.

    Top-level so it is picklable under the spawn start method.  The job is
    ``(scenario, telemetry_config_or_None)`` — :class:`TelemetryConfig` is
    a frozen dataclass, so it pickles into the worker unchanged.  Returns
    ``(True, result)`` or ``(False, (error_repr, traceback_text))``.
    """
    scenario, telemetry = job
    try:
        if telemetry is None:
            # Positional-only call: keeps drop-in run_experiment stand-ins
            # (tests, custom drivers) working without a telemetry kwarg.
            return True, run_experiment(scenario)
        return True, run_experiment(scenario, telemetry=telemetry)
    except Exception as exc:  # noqa: BLE001 - captured per scenario by design
        return False, (repr(exc), traceback.format_exc())


def _run_encoded(
    job: Tuple[Dict[str, Any], Optional[TelemetryConfig]]
) -> Tuple[bool, object]:
    """Pool worker: rehydrate a lean scenario payload, then run it."""
    payload, telemetry = job
    try:
        scenario = _decode_scenario(payload)
    except Exception as exc:  # noqa: BLE001 - bad payload = failed slot
        return False, (repr(exc), traceback.format_exc())
    return _run_one((scenario, telemetry))


def run_many(
    scenarios: Sequence[Scenario],
    workers: Optional[Union[int, str]] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    on_error: str = "raise",
    chunksize: Optional[int] = None,
    telemetry: Optional[TelemetryConfig] = None,
    retry: Optional[RetryPolicy] = None,
    quarantine: Optional[Quarantine] = None,
    sleep: Callable[[float], None] = time.sleep,
    metrics: Optional[MetricsRegistry] = None,
    execution_info: Optional[Dict[str, Any]] = None,
) -> List[Union[ExperimentResult, RunFailure]]:
    """Run many experiments, in parallel, in deterministic input order.

    Parameters
    ----------
    scenarios:
        The grid to measure (any iterable of :class:`Scenario`).
    workers:
        Pool size (``int`` or ``"auto"``); see :func:`resolve_workers`
        for defaulting.  The pool is capped at the number of scenarios
        actually needing a run, and the call falls back to the serial
        in-process loop outright whenever a pool cannot win — resolved
        ``workers <= 1``, a single-CPU host, or a grid that fits inside
        one dispatch chunk.
    cache:
        Optional result cache; hits skip the run, fresh results are
        written back *as each scenario completes*, so an interrupted
        sweep resumes from the cache without recomputing finished rows.
    progress:
        ``progress(index, total, scenario)`` invoked as each scenario
        completes (cache hits report immediately).
    on_error:
        ``"raise"`` (default) raises :class:`ExperimentFailed` after the
        grid drains; ``"collect"`` leaves a :class:`RunFailure` in the
        failed slot instead.
    chunksize:
        Scenarios handed to a worker per dispatch; defaults to an
        adaptive value giving each worker ~4 chunks for even load with
        low IPC, clamped to ``32`` so huge grids keep a bounded tail.
        Only used on the no-retry pool path (retries dispatch singly).
    telemetry:
        Optional :class:`~repro.observability.telemetry.TelemetryConfig`
        applied to every fresh run (cache hits keep whatever manifest they
        were stored with).  A ``trace_path`` is specialised per grid slot
        via :meth:`TelemetryConfig.for_scenario` so parallel workers never
        interleave writes into one file.
    retry:
        Optional :class:`RetryPolicy`: failed attempts are retried with
        exponential backoff and deterministic jitter; a ``timeout_s``
        bounds each attempt's wall clock (timeout enforcement needs pool
        workers, so it forces the pool path even for one scenario).
    quarantine:
        Optional :class:`~repro.testbed.cache.Quarantine`.  Scenarios
        already quarantined are skipped up front (their slot is a
        :class:`RunFailure` with ``quarantined=True``); scenarios that
        exhaust their retry budget are recorded into it.  Providing a
        quarantine implies collect semantics for failures — the grid
        never raises :class:`ExperimentFailed`, because parking the
        persistent failers and completing the rest is the point.
    sleep:
        Backoff sleep hook (tests inject a recorder; production uses
        :func:`time.sleep`).
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`;
        an automatic serial fallback increments
        ``runner.auto_serial.<reason>`` so sweeps can report *why* the
        pool was skipped.
    execution_info:
        Optional dict filled in place with how the grid actually ran:
        ``mode`` (``"serial"`` / ``"pool"`` / ``"cache"``), ``workers``,
        ``reason`` (the auto-serial trigger, else ``None``),
        ``chunksize``, ``pending`` and ``total``.  Callers print it into
        run manifests.

    Returns
    -------
    list
        One entry per scenario, same order as the input.  Entries are
        :class:`ExperimentResult`, or :class:`RunFailure` under
        ``on_error="collect"`` or a quarantine.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError('on_error must be "raise" or "collect"')
    scenarios = list(scenarios)
    total = len(scenarios)
    results: List[Union[ExperimentResult, RunFailure, None]] = [None] * total
    pending: List[int] = []
    salt = cache.salt if cache is not None else default_salt()
    fingerprints: Dict[int, str] = {}

    def fingerprint(index: int) -> str:
        key = fingerprints.get(index)
        if key is None:
            key = scenario_fingerprint(scenarios[index], salt)
            fingerprints[index] = key
        return key

    raising_failures: List[RunFailure] = []
    for index, scenario in enumerate(scenarios):
        hit = cache.get(scenario) if cache is not None else None
        if hit is not None:
            results[index] = hit
            if progress is not None:
                progress(index, total, scenario)
            continue
        if quarantine is not None and quarantine.is_quarantined(fingerprint(index)):
            results[index] = RunFailure(
                scenario=scenario,
                error=(
                    f"quarantined after "
                    f"{quarantine.failures(fingerprint(index))} recorded "
                    f"failure(s); last: {quarantine.last_error(fingerprint(index))}"
                ),
                traceback="",
                attempts=0,
                fingerprint=fingerprint(index),
                quarantined=True,
            )
            if progress is not None:
                progress(index, total, scenario)
            continue
        pending.append(index)

    def record_success(index: int, result: ExperimentResult) -> None:
        scenario = scenarios[index]
        results[index] = result
        if cache is not None:
            cache.put(scenario, result)
        if progress is not None:
            progress(index, total, scenario)

    def record_failure(index: int, error: str, trace: str, attempts: int) -> None:
        scenario = scenarios[index]
        quarantined = False
        if quarantine is not None:
            quarantine.record_failure(fingerprint(index), error, seed=scenario.seed)
            quarantined = quarantine.is_quarantined(fingerprint(index))
        failure = RunFailure(
            scenario=scenario,
            error=error,
            traceback=trace,
            attempts=attempts,
            fingerprint=fingerprint(index),
            quarantined=quarantined,
        )
        results[index] = failure
        if quarantine is None:
            raising_failures.append(failure)
        if progress is not None:
            progress(index, total, scenario)

    def telemetry_for(index: int) -> Optional[TelemetryConfig]:
        if telemetry is None:
            return None
        return telemetry.for_scenario(index, scenarios[index].seed)

    def job_for(index: int) -> Tuple[Scenario, Optional[TelemetryConfig]]:
        return scenarios[index], telemetry_for(index)

    def encoded_job_for(
        index: int,
    ) -> Tuple[Dict[str, Any], Optional[TelemetryConfig]]:
        return _encode_scenario(scenarios[index]), telemetry_for(index)

    info: Dict[str, Any] = {
        "mode": "cache",
        "workers": 0,
        "reason": None,
        "chunksize": None,
        "pending": len(pending),
        "total": total,
    }
    if pending:
        requested = resolve_workers(workers)
        effective = min(requested, len(pending))
        chunk = (
            chunksize
            if chunksize is not None
            else min(
                _MAX_CHUNKSIZE,
                max(1, -(-len(pending) // (effective * 4))),
            )
        )
        # A pool cannot beat the serial loop when there is no parallelism
        # to buy (one worker, one CPU) or nothing to spread (the whole
        # grid fits in a single dispatch chunk); fall back automatically
        # and record why.  A per-attempt timeout still forces the pool:
        # abandoning a hung attempt needs a worker process to abandon.
        force_pool = retry is not None and retry.timeout_s is not None
        serial_reason: Optional[str] = None
        if requested <= 1:
            serial_reason = "workers<=1"
        elif _cpu_count() <= 1:
            serial_reason = "cpu_count==1"
        elif len(pending) <= chunk:
            serial_reason = "single_chunk"
        if serial_reason is not None and not force_pool:
            info.update(mode="serial", workers=1, reason=serial_reason)
            if metrics is not None:
                metrics.counter(
                    f"runner.auto_serial.{_REASON_SLUGS[serial_reason]}"
                ).inc()
            max_attempts = retry.max_attempts if retry is not None else 1
            for index in pending:
                for attempt in range(1, max_attempts + 1):
                    ok, payload = _run_one(job_for(index))
                    if ok:
                        record_success(index, payload)
                        break
                    if attempt < max_attempts:
                        sleep(retry.delay_s(fingerprint(index), attempt))
                    else:
                        error, trace = payload
                        record_failure(index, error, trace, attempts=attempt)
        elif retry is None:
            info.update(mode="pool", workers=effective, chunksize=chunk)
            pool = _warm_pool(effective)
            try:
                outcomes = pool.imap(
                    _run_encoded,
                    [encoded_job_for(index) for index in pending],
                    chunksize=chunk,
                )
                for index, (ok, payload) in zip(pending, outcomes):
                    if ok:
                        record_success(index, payload)
                    else:
                        error, trace = payload
                        record_failure(index, error, trace, attempts=1)
            except Exception:
                # The pool may hold half-dispatched state; don't let the
                # next sweep inherit it.
                shutdown_pool()
                raise
        else:
            info.update(mode="pool", workers=effective)
            _drain_pool_with_retry(
                pending,
                job_for,
                fingerprint,
                retry,
                effective,
                record_success,
                record_failure,
                sleep,
            )

    if execution_info is not None:
        execution_info.update(info)
    if raising_failures and on_error == "raise":
        raise ExperimentFailed(raising_failures)
    return results  # type: ignore[return-value]  # every slot is filled


def _drain_pool_with_retry(
    pending: Sequence[int],
    job_for: Callable[[int], Tuple[Scenario, Optional[TelemetryConfig]]],
    fingerprint: Callable[[int], str],
    retry: RetryPolicy,
    workers: int,
    record_success: Callable[[int, ExperimentResult], None],
    record_failure: Callable[[int, str, str, int], None],
    sleep: Callable[[float], None],
) -> None:
    """Pool execution with per-attempt timeouts and bounded retry.

    Jobs are dispatched singly via ``apply_async`` so each attempt has its
    own result handle and wall-clock deadline; a timed-out attempt is
    abandoned (its worker is reaped when the pool exits) and the scenario
    is resubmitted until its budget runs out.  Settlement follows input
    order, so slots, failure order and the backoff schedule are all
    deterministic regardless of which worker finishes first.
    """
    # Deliberately ephemeral (not the warm pool): a timed-out attempt
    # leaves its worker wedged mid-experiment, and the only safe cleanup
    # is tearing the whole pool down on exit.
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=workers, initializer=_pool_initializer) as pool:
        active: Dict[int, Tuple[object, int]] = {
            index: (pool.apply_async(_run_one, (job_for(index),)), 1)
            for index in pending
        }
        order = deque(pending)
        while order:
            index = order.popleft()
            task, attempt = active.pop(index)
            try:
                ok, payload = task.get(timeout=retry.timeout_s)
            except multiprocessing.TimeoutError:
                ok = False
                payload = (
                    f"TimeoutError('attempt {attempt} exceeded "
                    f"{retry.timeout_s} s wall clock')",
                    "(attempt abandoned after wall-clock timeout)",
                )
            except Exception as exc:  # noqa: BLE001 - pool/IPC layer failure
                ok = False
                payload = (repr(exc), traceback.format_exc())
            if ok:
                record_success(index, payload)
                continue
            if attempt < retry.max_attempts:
                sleep(retry.delay_s(fingerprint(index), attempt))
                active[index] = (
                    pool.apply_async(_run_one, (job_for(index),)),
                    attempt + 1,
                )
                order.append(index)
            else:
                error, trace = payload
                record_failure(index, error, trace, attempt)
