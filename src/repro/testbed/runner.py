"""The parallel experiment engine.

Every experiment is a pure function of its :class:`Scenario` (the seed
fixes all random streams and unique keys restart per run), so a grid of
scenarios is embarrassingly parallel: :func:`run_many` fans the work out
over a spawn-based :mod:`multiprocessing` pool and returns results in the
input order, bit-identical to running the same scenarios serially.

Worker count resolution (:func:`resolve_workers`):

1. an explicit ``workers=`` argument wins,
2. else the ``REPRO_WORKERS`` environment variable,
3. else ``os.cpu_count() - 1`` (at least 1).

``workers=1`` (or a single scenario) short-circuits to an in-process loop
with no pool overhead.  A :class:`~repro.testbed.cache.ResultCache` can be
threaded through so already-measured rows are reused instead of re-run;
fresh measurements are written back to the cache as they complete.

Failures inside a worker never take the whole grid down silently: each
scenario's exception is captured with its traceback and either re-raised
as :class:`ExperimentFailed` (default) or returned in-slot as a
:class:`RunFailure` (``on_error="collect"``).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..observability.telemetry import TelemetryConfig
from .cache import ResultCache
from .experiment import run_experiment
from .results import ExperimentResult
from .scenario import Scenario

__all__ = [
    "WORKERS_ENV_VAR",
    "RunFailure",
    "ExperimentFailed",
    "resolve_workers",
    "run_many",
]

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Progress callback signature: ``(index, total, scenario)`` where
#: ``index`` is the completed scenario's position in the input sequence.
ProgressFn = Callable[[int, int, Scenario], None]


@dataclass
class RunFailure:
    """A captured per-scenario failure (``on_error="collect"`` slot)."""

    scenario: Scenario
    error: str
    traceback: str

    def __bool__(self) -> bool:  # failed slots are falsy for easy filtering
        return False


class ExperimentFailed(RuntimeError):
    """One or more scenarios of a :func:`run_many` grid raised."""

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures = list(failures)
        first = self.failures[0]
        extra = (
            f" (+{len(self.failures) - 1} more)" if len(self.failures) > 1 else ""
        )
        super().__init__(
            f"{len(self.failures)} scenario(s) failed{extra}; first: "
            f"{first.error}\n{first.traceback}"
        )


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count (argument > env > cpu_count-1)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            workers = max(1, (os.cpu_count() or 2) - 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def _run_one(job: Tuple[Scenario, Optional[TelemetryConfig]]) -> Tuple[bool, object]:
    """Pool worker: run one scenario, capturing any exception.

    Top-level so it is picklable under the spawn start method.  The job is
    ``(scenario, telemetry_config_or_None)`` — :class:`TelemetryConfig` is
    a frozen dataclass, so it pickles into the worker unchanged.  Returns
    ``(True, result)`` or ``(False, (error_repr, traceback_text))``.
    """
    scenario, telemetry = job
    try:
        if telemetry is None:
            # Positional-only call: keeps drop-in run_experiment stand-ins
            # (tests, custom drivers) working without a telemetry kwarg.
            return True, run_experiment(scenario)
        return True, run_experiment(scenario, telemetry=telemetry)
    except Exception as exc:  # noqa: BLE001 - captured per scenario by design
        return False, (repr(exc), traceback.format_exc())


def run_many(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    on_error: str = "raise",
    chunksize: Optional[int] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> List[Union[ExperimentResult, RunFailure]]:
    """Run many experiments, in parallel, in deterministic input order.

    Parameters
    ----------
    scenarios:
        The grid to measure (any iterable of :class:`Scenario`).
    workers:
        Pool size; see :func:`resolve_workers` for defaulting.  The pool
        is capped at the number of scenarios actually needing a run.
    cache:
        Optional result cache; hits skip the run, fresh results are
        written back.
    progress:
        ``progress(index, total, scenario)`` invoked as each scenario
        completes (cache hits report immediately).
    on_error:
        ``"raise"`` (default) raises :class:`ExperimentFailed` after the
        grid drains; ``"collect"`` leaves a :class:`RunFailure` in the
        failed slot instead.
    chunksize:
        Scenarios handed to a worker per dispatch; defaults to a value
        that gives each worker ~4 chunks for even load with low IPC.
    telemetry:
        Optional :class:`~repro.observability.telemetry.TelemetryConfig`
        applied to every fresh run (cache hits keep whatever manifest they
        were stored with).  A ``trace_path`` is specialised per grid slot
        via :meth:`TelemetryConfig.for_scenario` so parallel workers never
        interleave writes into one file.

    Returns
    -------
    list
        One entry per scenario, same order as the input.  Entries are
        :class:`ExperimentResult`, or :class:`RunFailure` under
        ``on_error="collect"``.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError('on_error must be "raise" or "collect"')
    scenarios = list(scenarios)
    total = len(scenarios)
    results: List[Union[ExperimentResult, RunFailure, None]] = [None] * total
    pending: List[int] = []
    for index, scenario in enumerate(scenarios):
        hit = cache.get(scenario) if cache is not None else None
        if hit is not None:
            results[index] = hit
            if progress is not None:
                progress(index, total, scenario)
        else:
            pending.append(index)

    failures: List[RunFailure] = []

    def record(index: int, ok: bool, payload: object) -> None:
        scenario = scenarios[index]
        if ok:
            results[index] = payload
            if cache is not None:
                cache.put(scenario, payload)
        else:
            error, trace = payload
            failure = RunFailure(scenario=scenario, error=error, traceback=trace)
            results[index] = failure
            failures.append(failure)
        if progress is not None:
            progress(index, total, scenario)

    def job_for(index: int) -> Tuple[Scenario, Optional[TelemetryConfig]]:
        scenario = scenarios[index]
        if telemetry is None:
            return scenario, None
        return scenario, telemetry.for_scenario(index, scenario.seed)

    if pending:
        workers = min(resolve_workers(workers), len(pending))
        if workers <= 1:
            for index in pending:
                ok, payload = _run_one(job_for(index))
                record(index, ok, payload)
        else:
            if chunksize is None:
                chunksize = max(1, len(pending) // (workers * 4))
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=workers) as pool:
                outcomes = pool.imap(
                    _run_one,
                    [job_for(index) for index in pending],
                    chunksize=chunksize,
                )
                for index, (ok, payload) in zip(pending, outcomes):
                    record(index, ok, payload)

    if failures and on_error == "raise":
        raise ExperimentFailed(failures)
    return results  # type: ignore[return-value]  # every slot is filled
