"""The parallel experiment engine.

Every experiment is a pure function of its :class:`Scenario` (the seed
fixes all random streams and unique keys restart per run), so a grid of
scenarios is embarrassingly parallel: :func:`run_many` fans the work out
over a spawn-based :mod:`multiprocessing` pool and returns results in the
input order, bit-identical to running the same scenarios serially.

Worker count resolution (:func:`resolve_workers`):

1. an explicit ``workers=`` argument wins,
2. else the ``REPRO_WORKERS`` environment variable,
3. else ``os.cpu_count() - 1`` (at least 1).

``workers=1`` (or a single scenario) short-circuits to an in-process loop
with no pool overhead.  A :class:`~repro.testbed.cache.ResultCache` can be
threaded through so already-measured rows are reused instead of re-run;
fresh measurements are written back to the cache as they complete.

Failures inside a worker never take the whole grid down silently: each
scenario's exception is captured with its traceback and either re-raised
as :class:`ExperimentFailed` (default) or returned in-slot as a
:class:`RunFailure` (``on_error="collect"``).

Fault tolerance (:class:`RetryPolicy`): transiently failing scenarios are
retried with exponential backoff plus deterministic jitter, each attempt
bounded by an optional wall-clock timeout (enforced by running attempts
in pool workers the parent can abandon).  Because fresh results are
written to the cache as they complete, an interrupted sweep — killed
worker, timeout, Ctrl-C — resumes from the cache on the next call
without recomputing finished scenarios.  A persistent
:class:`~repro.testbed.cache.Quarantine` parks scenarios that keep
exhausting their retry budget so one poisoned grid point cannot sink the
sweep.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..observability.telemetry import TelemetryConfig
from .cache import Quarantine, ResultCache, default_salt, scenario_fingerprint
from .experiment import run_experiment
from .results import ExperimentResult
from .scenario import Scenario

__all__ = [
    "WORKERS_ENV_VAR",
    "RetryPolicy",
    "RunFailure",
    "ExperimentFailed",
    "resolve_workers",
    "run_many",
]

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Progress callback signature: ``(index, total, scenario)`` where
#: ``index`` is the completed scenario's position in the input sequence.
ProgressFn = Callable[[int, int, Scenario], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total tries per scenario (1 = no retry).
    backoff_base_s:
        Pause before the first retry; attempt ``n`` waits
        ``backoff_base_s * backoff_factor**(n-1)``.
    backoff_factor:
        Exponential growth of the backoff.
    jitter_fraction:
        Symmetric jitter applied to each backoff, derived from a BLAKE2b
        hash of ``(scenario fingerprint, attempt)`` — fully deterministic,
        so a re-run sleeps the exact same schedule.
    timeout_s:
        Optional wall-clock budget per attempt.  Enforced by running
        attempts in pool workers the parent abandons on expiry, so it
        also covers hung (not just slow) runs; requires the pool path and
        therefore forces one even for a single pending scenario.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when given")

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter_fraction == 0.0 or base == 0.0:
            return base
        digest = hashlib.blake2b(
            f"{key}:{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "big") / 2**64
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


@dataclass
class RunFailure:
    """A captured per-scenario failure (``on_error="collect"`` slot)."""

    scenario: Scenario
    error: str
    traceback: str
    attempts: int = 1
    fingerprint: str = ""
    quarantined: bool = False

    def __bool__(self) -> bool:  # failed slots are falsy for easy filtering
        return False


class ExperimentFailed(RuntimeError):
    """One or more scenarios of a :func:`run_many` grid raised.

    The message identifies the first few failing scenarios by cache
    fingerprint and seed and quotes the tail of each traceback, so a
    failed overnight sweep is diagnosable from the exception alone.
    """

    #: How many failures the message details.
    SHOWN = 3
    #: Traceback lines quoted per shown failure.
    TRACEBACK_TAIL = 6

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures = list(failures)
        shown = self.failures[: self.SHOWN]
        lines = [
            f"{len(self.failures)} scenario(s) failed "
            f"(showing first {len(shown)}):"
        ]
        for position, failure in enumerate(shown, start=1):
            fingerprint = failure.fingerprint or scenario_fingerprint(
                failure.scenario, default_salt()
            )
            attempts = (
                f", {failure.attempts} attempt(s)" if failure.attempts > 1 else ""
            )
            lines.append(
                f"  [{position}] {fingerprint[:12]} seed={failure.scenario.seed}"
                f"{attempts}: {failure.error}"
            )
            tail = failure.traceback.strip().splitlines()[-self.TRACEBACK_TAIL :]
            lines.extend(f"      {line}" for line in tail)
        if len(self.failures) > len(shown):
            lines.append(f"  ... and {len(self.failures) - len(shown)} more")
        super().__init__("\n".join(lines))


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count (argument > env > cpu_count-1)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            workers = max(1, (os.cpu_count() or 2) - 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def _run_one(job: Tuple[Scenario, Optional[TelemetryConfig]]) -> Tuple[bool, object]:
    """Pool worker: run one scenario, capturing any exception.

    Top-level so it is picklable under the spawn start method.  The job is
    ``(scenario, telemetry_config_or_None)`` — :class:`TelemetryConfig` is
    a frozen dataclass, so it pickles into the worker unchanged.  Returns
    ``(True, result)`` or ``(False, (error_repr, traceback_text))``.
    """
    scenario, telemetry = job
    try:
        if telemetry is None:
            # Positional-only call: keeps drop-in run_experiment stand-ins
            # (tests, custom drivers) working without a telemetry kwarg.
            return True, run_experiment(scenario)
        return True, run_experiment(scenario, telemetry=telemetry)
    except Exception as exc:  # noqa: BLE001 - captured per scenario by design
        return False, (repr(exc), traceback.format_exc())


def run_many(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    on_error: str = "raise",
    chunksize: Optional[int] = None,
    telemetry: Optional[TelemetryConfig] = None,
    retry: Optional[RetryPolicy] = None,
    quarantine: Optional[Quarantine] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> List[Union[ExperimentResult, RunFailure]]:
    """Run many experiments, in parallel, in deterministic input order.

    Parameters
    ----------
    scenarios:
        The grid to measure (any iterable of :class:`Scenario`).
    workers:
        Pool size; see :func:`resolve_workers` for defaulting.  The pool
        is capped at the number of scenarios actually needing a run.
    cache:
        Optional result cache; hits skip the run, fresh results are
        written back *as each scenario completes*, so an interrupted
        sweep resumes from the cache without recomputing finished rows.
    progress:
        ``progress(index, total, scenario)`` invoked as each scenario
        completes (cache hits report immediately).
    on_error:
        ``"raise"`` (default) raises :class:`ExperimentFailed` after the
        grid drains; ``"collect"`` leaves a :class:`RunFailure` in the
        failed slot instead.
    chunksize:
        Scenarios handed to a worker per dispatch; defaults to a value
        that gives each worker ~4 chunks for even load with low IPC.
        Only used on the no-retry pool path (retries dispatch singly).
    telemetry:
        Optional :class:`~repro.observability.telemetry.TelemetryConfig`
        applied to every fresh run (cache hits keep whatever manifest they
        were stored with).  A ``trace_path`` is specialised per grid slot
        via :meth:`TelemetryConfig.for_scenario` so parallel workers never
        interleave writes into one file.
    retry:
        Optional :class:`RetryPolicy`: failed attempts are retried with
        exponential backoff and deterministic jitter; a ``timeout_s``
        bounds each attempt's wall clock (timeout enforcement needs pool
        workers, so it forces the pool path even for one scenario).
    quarantine:
        Optional :class:`~repro.testbed.cache.Quarantine`.  Scenarios
        already quarantined are skipped up front (their slot is a
        :class:`RunFailure` with ``quarantined=True``); scenarios that
        exhaust their retry budget are recorded into it.  Providing a
        quarantine implies collect semantics for failures — the grid
        never raises :class:`ExperimentFailed`, because parking the
        persistent failers and completing the rest is the point.
    sleep:
        Backoff sleep hook (tests inject a recorder; production uses
        :func:`time.sleep`).

    Returns
    -------
    list
        One entry per scenario, same order as the input.  Entries are
        :class:`ExperimentResult`, or :class:`RunFailure` under
        ``on_error="collect"`` or a quarantine.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError('on_error must be "raise" or "collect"')
    scenarios = list(scenarios)
    total = len(scenarios)
    results: List[Union[ExperimentResult, RunFailure, None]] = [None] * total
    pending: List[int] = []
    salt = cache.salt if cache is not None else default_salt()
    fingerprints: Dict[int, str] = {}

    def fingerprint(index: int) -> str:
        key = fingerprints.get(index)
        if key is None:
            key = scenario_fingerprint(scenarios[index], salt)
            fingerprints[index] = key
        return key

    raising_failures: List[RunFailure] = []
    for index, scenario in enumerate(scenarios):
        hit = cache.get(scenario) if cache is not None else None
        if hit is not None:
            results[index] = hit
            if progress is not None:
                progress(index, total, scenario)
            continue
        if quarantine is not None and quarantine.is_quarantined(fingerprint(index)):
            results[index] = RunFailure(
                scenario=scenario,
                error=(
                    f"quarantined after "
                    f"{quarantine.failures(fingerprint(index))} recorded "
                    f"failure(s); last: {quarantine.last_error(fingerprint(index))}"
                ),
                traceback="",
                attempts=0,
                fingerprint=fingerprint(index),
                quarantined=True,
            )
            if progress is not None:
                progress(index, total, scenario)
            continue
        pending.append(index)

    def record_success(index: int, result: ExperimentResult) -> None:
        scenario = scenarios[index]
        results[index] = result
        if cache is not None:
            cache.put(scenario, result)
        if progress is not None:
            progress(index, total, scenario)

    def record_failure(index: int, error: str, trace: str, attempts: int) -> None:
        scenario = scenarios[index]
        quarantined = False
        if quarantine is not None:
            quarantine.record_failure(fingerprint(index), error, seed=scenario.seed)
            quarantined = quarantine.is_quarantined(fingerprint(index))
        failure = RunFailure(
            scenario=scenario,
            error=error,
            traceback=trace,
            attempts=attempts,
            fingerprint=fingerprint(index),
            quarantined=quarantined,
        )
        results[index] = failure
        if quarantine is None:
            raising_failures.append(failure)
        if progress is not None:
            progress(index, total, scenario)

    def job_for(index: int) -> Tuple[Scenario, Optional[TelemetryConfig]]:
        scenario = scenarios[index]
        if telemetry is None:
            return scenario, None
        return scenario, telemetry.for_scenario(index, scenario.seed)

    if pending:
        workers = min(resolve_workers(workers), len(pending))
        needs_pool = workers > 1 or (retry is not None and retry.timeout_s is not None)
        if not needs_pool:
            max_attempts = retry.max_attempts if retry is not None else 1
            for index in pending:
                for attempt in range(1, max_attempts + 1):
                    ok, payload = _run_one(job_for(index))
                    if ok:
                        record_success(index, payload)
                        break
                    if attempt < max_attempts:
                        sleep(retry.delay_s(fingerprint(index), attempt))
                    else:
                        error, trace = payload
                        record_failure(index, error, trace, attempts=attempt)
        elif retry is None:
            if chunksize is None:
                chunksize = max(1, len(pending) // (workers * 4))
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=workers) as pool:
                outcomes = pool.imap(
                    _run_one,
                    [job_for(index) for index in pending],
                    chunksize=chunksize,
                )
                for index, (ok, payload) in zip(pending, outcomes):
                    if ok:
                        record_success(index, payload)
                    else:
                        error, trace = payload
                        record_failure(index, error, trace, attempts=1)
        else:
            _drain_pool_with_retry(
                pending,
                job_for,
                fingerprint,
                retry,
                workers,
                record_success,
                record_failure,
                sleep,
            )

    if raising_failures and on_error == "raise":
        raise ExperimentFailed(raising_failures)
    return results  # type: ignore[return-value]  # every slot is filled


def _drain_pool_with_retry(
    pending: Sequence[int],
    job_for: Callable[[int], Tuple[Scenario, Optional[TelemetryConfig]]],
    fingerprint: Callable[[int], str],
    retry: RetryPolicy,
    workers: int,
    record_success: Callable[[int, ExperimentResult], None],
    record_failure: Callable[[int, str, str, int], None],
    sleep: Callable[[float], None],
) -> None:
    """Pool execution with per-attempt timeouts and bounded retry.

    Jobs are dispatched singly via ``apply_async`` so each attempt has its
    own result handle and wall-clock deadline; a timed-out attempt is
    abandoned (its worker is reaped when the pool exits) and the scenario
    is resubmitted until its budget runs out.  Settlement follows input
    order, so slots, failure order and the backoff schedule are all
    deterministic regardless of which worker finishes first.
    """
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=workers) as pool:
        active: Dict[int, Tuple[object, int]] = {
            index: (pool.apply_async(_run_one, (job_for(index),)), 1)
            for index in pending
        }
        order = deque(pending)
        while order:
            index = order.popleft()
            task, attempt = active.pop(index)
            try:
                ok, payload = task.get(timeout=retry.timeout_s)
            except multiprocessing.TimeoutError:
                ok = False
                payload = (
                    f"TimeoutError('attempt {attempt} exceeded "
                    f"{retry.timeout_s} s wall clock')",
                    "(attempt abandoned after wall-clock timeout)",
                )
            except Exception as exc:  # noqa: BLE001 - pool/IPC layer failure
                ok = False
                payload = (repr(exc), traceback.format_exc())
            if ok:
                record_success(index, payload)
                continue
            if attempt < retry.max_attempts:
                sleep(retry.delay_s(fingerprint(index), attempt))
                active[index] = (
                    pool.apply_async(_run_one, (job_for(index),)),
                    attempt + 1,
                )
                order.append(index)
            else:
                error, trace = payload
                record_failure(index, error, trace, attempt)
