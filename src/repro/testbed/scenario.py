"""Scenario descriptions: one experiment = one feature vector + run options.

A :class:`Scenario` fixes the paper's Eq. 1 inputs — message size ``M``,
timeliness ``S``, network delay ``D``, packet loss rate ``L`` and the
producer configuration ``Confs`` — plus the bookkeeping the testbed needs
(message count, seed, cluster shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..kafka.config import BrokerConfig, HardwareProfile, ProducerConfig

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """Inputs of one testbed experiment.

    Attributes
    ----------
    message_bytes:
        ``M``, the payload size of each message.
    timeliness_s:
        ``S``, the validity period of a message (staleness bookkeeping
        only; it does not change producer behaviour).
    network_delay_s:
        ``D``, the injected one-way network delay.
    loss_rate:
        ``L``, the injected packet loss rate.
    jitter_s:
        Uniform jitter added to the injected delay (NetEm ``delay D J``).
    config:
        The producer configuration under test.
    message_count:
        Source messages per experiment (the paper uses 10^6; benches use
        less — the metrics are frequencies, so the sample size only sets
        the confidence interval).
    seed:
        Master seed for all random streams of the run.
    bursty_loss:
        Realise ``loss_rate`` through a Gilbert–Elliott chain instead of
        independent drops.
    arrival_rate:
        Optional explicit source rate (messages/s).  ``None`` selects the
        paper's discipline: full load when δ=0, polled at 1/δ otherwise.
    broker_count / partition_count:
        Cluster shape (paper: three brokers).
    hardware / broker_config:
        Fixed resources; defaults are the calibrated "paper profile".
    """

    message_bytes: int = 200
    timeliness_s: Optional[float] = None
    network_delay_s: float = 0.0
    loss_rate: float = 0.0
    jitter_s: float = 0.0
    config: ProducerConfig = field(default_factory=ProducerConfig)
    message_count: int = 5000
    seed: int = 1
    bursty_loss: bool = False
    arrival_rate: Optional[float] = None
    broker_count: int = 3
    partition_count: int = 3
    hardware: HardwareProfile = field(default_factory=HardwareProfile)
    broker_config: BrokerConfig = field(default_factory=BrokerConfig)
    topic_name: str = "events"

    def __post_init__(self) -> None:
        if self.message_bytes < 1:
            raise ValueError("message_bytes must be >= 1")
        if self.network_delay_s < 0:
            raise ValueError("network_delay_s must be >= 0")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.message_count < 1:
            raise ValueError("message_count must be >= 1")
        if self.broker_count < 1 or self.partition_count < 1:
            raise ValueError("cluster shape must be positive")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive when given")

    @property
    def is_normal_network(self) -> bool:
        """The paper's Fig. 3 normal-case predicate: D < 200 ms and L = 0."""
        return self.network_delay_s < 0.200 and self.loss_rate == 0.0

    def with_(self, **changes) -> "Scenario":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
