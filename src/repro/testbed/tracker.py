"""Omniscient per-message delivery tracking.

The testbed watches both ends of the pipe — the producer's view (send
attempts, acknowledgements, give-ups) and the cluster's ground truth
(appends) — and drives one :class:`MessageStateMachine` per message
through the Fig. 2 transitions.  The resulting Table I case census is
cross-checked against consumer reconciliation by the experiment runner.

When a :class:`~repro.observability.telemetry.RunTelemetry` is attached,
every applied transition is emitted as a ``transition`` trace record
(key, edge, source and target states, simulated time) and counted in the
metrics registry — the raw material the invariant checker replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..kafka.message import ProducerRecord
from ..kafka.partition import Partition
from ..kafka.producer import ProducerListener
from ..kafka.state import DeliveryCase, MessageState, MessageStateMachine, Transition
from ..observability.trace import EventKind

__all__ = ["DeliveryTracker", "CaseCensus"]


@dataclass
class CaseCensus:
    """Counts of Table I delivery cases over one experiment."""

    case_counts: Dict[DeliveryCase, int] = field(default_factory=dict)
    unresolved: int = 0

    def total(self) -> int:
        """Messages classified."""
        return sum(self.case_counts.values())

    def fraction(self, case: DeliveryCase) -> float:
        """Share of messages that ended in ``case``."""
        total = self.total()
        return self.case_counts.get(case, 0) / total if total else 0.0

    def as_flat_counts(self) -> Dict[str, int]:
        """``{"case1": n, ...}`` with every Table I case present."""
        return {
            f"case{case.value}": self.case_counts.get(case, 0)
            for case in DeliveryCase
        }


class DeliveryTracker(ProducerListener):
    """Applies Fig. 2 transitions as producer/broker events occur.

    Parameters
    ----------
    retries_allowed:
        Whether the producer's semantics can retry (at-least-once /
        exactly-once).  Under at-most-once the V edge (persisted but
        unacknowledged) does not exist: the producer neither waits for
        acknowledgements nor retries, so a transport-level hiccup after
        the broker persisted the message leaves it simply *Delivered*.
    telemetry:
        Optional run telemetry; when attached, transitions are traced and
        counted.
    """

    def __init__(self, retries_allowed: bool = True, telemetry=None) -> None:
        self.retries_allowed = retries_allowed
        self.machines: Dict[int, MessageStateMachine] = {}
        self.ingest_times: Dict[int, float] = {}
        self.ack_latencies: Dict[int, float] = {}
        self._clock: Optional[object] = None
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._metrics = telemetry.metrics if telemetry is not None else None

    def attach_clock(self, simulator) -> None:
        """Give the tracker access to simulated time (for ingest stamps)."""
        self._clock = simulator

    def _machine(self, record: ProducerRecord) -> MessageStateMachine:
        machine = self.machines.get(record.key)
        if machine is None:
            machine = MessageStateMachine()
            self.machines[record.key] = machine
        return machine

    def _apply(self, key: int, machine: MessageStateMachine, transition: Transition) -> None:
        """Apply one Fig. 2 edge and record it in the telemetry stream."""
        source = machine.state
        machine.apply(transition)
        if self._metrics is not None:
            self._metrics.counter(f"transitions.{transition.value}").inc()
        if self._tracer is not None:
            now = self._clock.now if self._clock is not None else 0.0
            self._tracer.emit(
                EventKind.TRANSITION,
                now,
                key=key,
                edge=transition.value,
                **{"from": source.value, "to": machine.state.value},
            )

    # ------------------------------------------------- producer-side view

    def on_ingest(self, record: ProducerRecord) -> None:
        self._machine(record)
        if record.ingest_time is not None:
            self.ingest_times[record.key] = record.ingest_time

    def on_queue_drop(self, record: ProducerRecord) -> None:
        machine = self._machine(record)
        if machine.state is MessageState.READY:
            self._apply(record.key, machine, Transition.II)

    def on_expired(self, record: ProducerRecord, after_send: bool) -> None:
        machine = self._machine(record)
        if machine.state is MessageState.READY:
            self._apply(record.key, machine, Transition.II)
        elif machine.state is MessageState.DELIVERED and self.retries_allowed:
            # Persisted, but the producer gives up for lack of an ack.
            self._apply(record.key, machine, Transition.V)

    def on_attempt_failed(self, record: ProducerRecord, attempt: int) -> None:
        machine = self._machine(record)
        if machine.state is MessageState.READY:
            self._apply(record.key, machine, Transition.II)
        elif machine.state is MessageState.LOST:
            self._apply(record.key, machine, Transition.III)
        elif machine.state is MessageState.DELIVERED and self.retries_allowed:
            self._apply(record.key, machine, Transition.V)
        # DUPLICATED is terminal; later failures change nothing.

    def on_acknowledged(self, record: ProducerRecord, rtt_s: float) -> None:
        self.ack_latencies[record.key] = rtt_s

    def on_perceived_lost(self, record: ProducerRecord) -> None:
        machine = self._machine(record)
        if machine.state is MessageState.READY:
            self._apply(record.key, machine, Transition.II)

    # --------------------------------------------------- cluster's truth

    def on_append(self, record: ProducerRecord, partition: Partition, offset: int) -> None:
        """Cluster append listener: a copy of ``record`` was persisted."""
        machine = self._machine(record)
        if machine.state is MessageState.READY:
            self._apply(record.key, machine, Transition.I)
        elif machine.state is MessageState.LOST:
            if machine.persisted:
                self._apply(record.key, machine, Transition.VI)
            else:
                self._apply(record.key, machine, Transition.IV)
        elif machine.state is MessageState.DELIVERED:
            # A retransmitted request persisted again before the producer
            # noticed anything wrong: ack-loss race, Fig. 2's V then VI.
            self._apply(record.key, machine, Transition.V)
            self._apply(record.key, machine, Transition.VI)
        elif machine.state is MessageState.DUPLICATED:
            self._apply(record.key, machine, Transition.VI)

    # ------------------------------------------------------------ census

    def census(self) -> CaseCensus:
        """Classify every tracked message into its Table I case."""
        census = CaseCensus()
        for machine in self.machines.values():
            if machine.state is MessageState.READY:
                census.unresolved += 1
                continue
            case = machine.classify_case()
            census.case_counts[case] = census.case_counts.get(case, 0) + 1
        return census

    def persisted_but_unacked(self) -> int:
        """Messages the producer believes lost that the cluster holds once.

        These diverge from the paper's producer-view Case 3: consumer
        reconciliation counts them as delivered.
        """
        return sum(
            1
            for machine in self.machines.values()
            if machine.state is MessageState.LOST and machine.persisted
        )
