"""Feature-grid sweeps over the testbed.

A sweep runs one experiment per point of a cartesian feature grid, with
optional seed replication, mirroring how the paper harvests the figures'
curves ("we observe the changes in P_l with M ranging from 50 to 1000
bytes").  Axis names address either :class:`Scenario` fields directly
(``"message_bytes"``) or producer-configuration fields with a ``config.``
prefix (``"config.batch_size"``).

Sweeps run through the parallel engine (:mod:`repro.testbed.runner`):
pass ``workers=`` to fan the grid out over a process pool and ``cache=``
to reuse rows measured by earlier sweeps — results are identical to the
serial path either way.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from .cache import ResultCache
from .results import ExperimentResult
from .runner import run_many
from .scenario import Scenario

__all__ = ["apply_axis", "derive_seed", "sweep", "replicate", "mean_metric"]


def apply_axis(scenario: Scenario, axis: str, value) -> Scenario:
    """Return ``scenario`` with one axis set.

    ``axis`` is a Scenario field name or ``config.<field>`` for producer
    configuration fields.
    """
    if axis.startswith("config."):
        field = axis[len("config."):]
        return scenario.with_(config=scenario.config.with_(**{field: value}))
    return scenario.with_(**{axis: value})


def derive_seed(base_seed: int, point: int, replication: int) -> int:
    """Derive the seed of one ``(grid point, replication)`` cell.

    The scheme hashes ``"base/point/replication"`` with BLAKE2b and takes
    the first four bytes as an unsigned integer.  This guarantees that

    * every (point, replication) cell of a sweep gets its own random
      streams — the old additive scheme ``base + 1000 * replication``
      reused the identical seed set at every grid point, unintentionally
      coupling all points through common random numbers;
    * replications of the same point differ, so replicate-averaging
      actually averages independent noise;
    * the mapping is deterministic and platform-independent, so sweeps
      stay exactly reproducible (and cacheable) from ``base_seed``.
    """
    digest = hashlib.blake2b(
        f"{base_seed}/{point}/{replication}".encode("ascii"), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big")


def grid_scenarios(
    base: Scenario,
    axes: Dict[str, Sequence],
    replications: int = 1,
) -> List[Scenario]:
    """Materialise the sweep grid as a scenario list (grid order,
    replications adjacent), with per-cell seeds from :func:`derive_seed`."""
    if replications < 1:
        raise ValueError("replications must be >= 1")
    names = list(axes)
    scenarios: List[Scenario] = []
    for point, values in enumerate(
        itertools.product(*(axes[name] for name in names))
    ):
        scenario = base
        for name, value in zip(names, values):
            scenario = apply_axis(scenario, name, value)
        for replication in range(replications):
            scenarios.append(
                scenario.with_(seed=derive_seed(base.seed, point, replication))
            )
    return scenarios


def sweep(
    base: Scenario,
    axes: Dict[str, Sequence],
    replications: int = 1,
    progress: Optional[Callable[[Scenario], None]] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[ExperimentResult]:
    """Run the cartesian product of ``axes`` starting from ``base``.

    Parameters
    ----------
    base:
        Scenario providing every unswept feature.
    axes:
        Mapping of axis name → values, e.g.
        ``{"message_bytes": [50, 100], "config.batch_size": [1, 2]}``.
    replications:
        Experiments per grid point; cell ``(point, k)`` derives its seed
        with :func:`derive_seed` so no two cells share random streams.
    progress:
        Optional callback invoked with each scenario as it completes.
    workers:
        Process-pool size; ``None`` resolves via the ``REPRO_WORKERS``
        environment variable, defaulting to ``os.cpu_count() - 1`` (see
        :func:`~repro.testbed.runner.resolve_workers`).
    cache:
        Optional :class:`~repro.testbed.cache.ResultCache` for reusing
        previously measured rows.

    Returns results in grid order (replications adjacent), identical for
    any worker count.
    """
    scenarios = grid_scenarios(base, axes, replications)
    wrapped = None
    if progress is not None:
        wrapped = lambda index, total, scenario: progress(scenario)  # noqa: E731
    return run_many(scenarios, workers=workers, cache=cache, progress=wrapped)


def replicate(
    scenario: Scenario,
    replications: int,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[ExperimentResult]:
    """Run one scenario under ``replications`` different seeds."""
    return sweep(
        scenario, {}, replications=replications, workers=workers, cache=cache
    )


def mean_metric(
    results: Iterable[ExperimentResult], metric: str = "p_loss"
) -> float:
    """Average a metric over results (CI-friendly aggregation)."""
    values = [getattr(result, metric) for result in results]
    if not values:
        raise ValueError("no results to aggregate")
    return float(np.mean(values))
