"""Feature-grid sweeps over the testbed.

A sweep runs one experiment per point of a cartesian feature grid, with
optional seed replication, mirroring how the paper harvests the figures'
curves ("we observe the changes in P_l with M ranging from 50 to 1000
bytes").  Axis names address either :class:`Scenario` fields directly
(``"message_bytes"``) or producer-configuration fields with a ``config.``
prefix (``"config.batch_size"``).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from .experiment import run_experiment
from .results import ExperimentResult
from .scenario import Scenario

__all__ = ["apply_axis", "sweep", "replicate", "mean_metric"]


def apply_axis(scenario: Scenario, axis: str, value) -> Scenario:
    """Return ``scenario`` with one axis set.

    ``axis`` is a Scenario field name or ``config.<field>`` for producer
    configuration fields.
    """
    if axis.startswith("config."):
        field = axis[len("config."):]
        return scenario.with_(config=scenario.config.with_(**{field: value}))
    return scenario.with_(**{axis: value})


def sweep(
    base: Scenario,
    axes: Dict[str, Sequence],
    replications: int = 1,
    progress: Optional[Callable[[Scenario], None]] = None,
) -> List[ExperimentResult]:
    """Run the cartesian product of ``axes`` starting from ``base``.

    Parameters
    ----------
    base:
        Scenario providing every unswept feature.
    axes:
        Mapping of axis name → values, e.g.
        ``{"message_bytes": [50, 100], "config.batch_size": [1, 2]}``.
    replications:
        Experiments per grid point; replication ``k`` derives its seed as
        ``base.seed + 1000 * k`` so grids and replications never collide.
    progress:
        Optional callback invoked with each scenario before it runs.

    Returns results in grid order (replications adjacent).
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    names = list(axes)
    results: List[ExperimentResult] = []
    for values in itertools.product(*(axes[name] for name in names)):
        scenario = base
        for name, value in zip(names, values):
            scenario = apply_axis(scenario, name, value)
        for replication in range(replications):
            run_scenario = scenario.with_(seed=base.seed + 1000 * replication)
            if progress is not None:
                progress(run_scenario)
            results.append(run_experiment(run_scenario))
    return results


def replicate(scenario: Scenario, replications: int) -> List[ExperimentResult]:
    """Run one scenario under ``replications`` different seeds."""
    return sweep(scenario, {}, replications=replications)


def mean_metric(
    results: Iterable[ExperimentResult], metric: str = "p_loss"
) -> float:
    """Average a metric over results (CI-friendly aggregation)."""
    values = [getattr(result, metric) for result in results]
    if not values:
        raise ValueError("no results to aggregate")
    return float(np.mean(values))
