"""The experiment harness (Docker-testbed analogue).

One :class:`Scenario` fixes the paper's Eq. 1 features; ``run_experiment``
executes it against a freshly wired simulated Kafka system and returns the
measured reliability metrics.  ``sweep`` runs feature grids and
``collection`` implements the paper's Fig. 3 training-data design.
``run_many`` is the parallel engine underneath both (process-pool fan-out
with deterministic ordering) and ``ResultCache`` persists measured rows
across runs.
"""

from ..observability.telemetry import RunTelemetry, TelemetryConfig
from .cache import Quarantine, ResultCache, scenario_fingerprint
from .collection import (
    CollectionPlan,
    abnormal_case_plan,
    collect_training_data,
    normal_case_plan,
)
from .experiment import Experiment, run_experiment
from .runner import (
    ExperimentFailed,
    RetryPolicy,
    RunFailure,
    resolve_workers,
    run_many,
    shutdown_pool,
)
from .scaled import ScaledExperiment, run_scaled_experiment
from .sensitivity import (
    DEFAULT_CANDIDATES,
    ParameterSensitivity,
    SensitivityReport,
    analyze_sensitivity,
)
from .results import ExperimentResult, load_results_csv, save_results_csv, wilson_interval
from .scenario import Scenario
from .sweep import apply_axis, derive_seed, mean_metric, replicate, sweep
from .tracker import CaseCensus, DeliveryTracker

__all__ = [
    "ResultCache",
    "Quarantine",
    "RetryPolicy",
    "scenario_fingerprint",
    "TelemetryConfig",
    "RunTelemetry",
    "run_many",
    "resolve_workers",
    "shutdown_pool",
    "RunFailure",
    "ExperimentFailed",
    "derive_seed",
    "CollectionPlan",
    "normal_case_plan",
    "abnormal_case_plan",
    "collect_training_data",
    "Experiment",
    "run_experiment",
    "ExperimentResult",
    "save_results_csv",
    "load_results_csv",
    "wilson_interval",
    "Scenario",
    "apply_axis",
    "sweep",
    "replicate",
    "mean_metric",
    "CaseCensus",
    "DeliveryTracker",
    "ScaledExperiment",
    "run_scaled_experiment",
    "ParameterSensitivity",
    "SensitivityReport",
    "analyze_sensitivity",
    "DEFAULT_CANDIDATES",
]
