"""Scaled producer deployments: N producers sharing one cluster.

Section IV-C's remedy for overload is to slow each producer down (larger
polling interval δ) and scale the fleet so the aggregate arrival rate is
preserved: ``N_p/δ = N_p'/(δ+Δδ)``.  This module runs that deployment *in
one simulation*: every producer gets its own uplink (its own container's
veth, so its own bandwidth and fault treatments) to the shared broker
cluster, the workload is split across the fleet, and reconciliation runs
over the union of all source keys against the shared topic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..kafka.cluster import KafkaCluster
from ..kafka.consumer import reconcile
from ..kafka.producer import KafkaProducer
from ..network.faults import FaultInjector, NetworkFault
from ..network.latency import ConstantLatency
from ..network.link import Link
from ..network.transport import ReliableChannel
from ..simulation.random import RngRegistry
from ..simulation.simulator import Simulator
from ..workloads.arrival import ConstantRateSource, FullLoadSource, PolledSource
from .results import ExperimentResult
from .scenario import Scenario
from .tracker import DeliveryTracker

__all__ = ["ScaledExperiment", "run_scaled_experiment"]


@dataclass
class _ProducerSlot:
    """One fleet member's wiring."""

    link: Link
    channel: ReliableChannel
    producer: KafkaProducer
    injector: FaultInjector
    source: object


class ScaledExperiment:
    """A fleet of ``producers`` identical producers over one cluster.

    The scenario's workload describes the *aggregate* stream; each fleet
    member receives ``message_count / producers`` messages at
    ``arrival_rate / producers`` (for rate-driven sources).  Full-load and
    polled sources run per member unchanged — each member is its own
    machine with its own I/O.

    Fault treatments apply to every member's uplink, mirroring NetEm on
    the shared bridge.
    """

    MAX_EVENTS = 40_000_000

    def __init__(self, scenario: Scenario, producers: int) -> None:
        if producers < 1:
            raise ValueError("producers must be >= 1")
        from ..kafka.message import reset_key_counter

        reset_key_counter()
        self.scenario = scenario
        self.producers = producers
        self.sim = Simulator()
        self.rng = RngRegistry(scenario.seed)
        self.cluster = KafkaCluster(
            self.sim, scenario.broker_count, scenario.broker_config
        )
        self.topic = self.cluster.create_topic(
            scenario.topic_name, partitions=scenario.partition_count
        )
        self.tracker = DeliveryTracker(
            retries_allowed=scenario.config.semantics.retries_allowed
        )
        self.cluster.add_append_listener(self.tracker.on_append)
        self.slots: List[_ProducerSlot] = [
            self._build_slot(index) for index in range(producers)
        ]

    def _build_slot(self, index: int) -> _ProducerSlot:
        scenario = self.scenario
        hardware = scenario.hardware
        link = Link(
            self.sim,
            self.rng.stream(f"link-{index}"),
            capacity_bps=hardware.link_capacity_bps,
            latency=ConstantLatency(hardware.link_base_delay_s),
        )
        channel = ReliableChannel(self.sim, link)
        producer = KafkaProducer(
            self.sim,
            self.cluster,
            channel,
            self.topic,
            config=scenario.config,
            hardware=hardware,
            listener=self.tracker,
        )
        injector = FaultInjector(self.sim, link)
        source = self._build_source(index, producer)
        return _ProducerSlot(link, channel, producer, injector, source)

    def _per_producer_count(self, index: int) -> int:
        total = self.scenario.message_count
        base = total // self.producers
        extra = 1 if index < total % self.producers else 0
        return max(1, base + extra)

    def _build_source(self, index: int, producer: KafkaProducer):
        scenario = self.scenario
        config = scenario.config
        rng = self.rng.stream(f"source-{index}")
        common = dict(
            sim=self.sim,
            producer=producer,
            count=self._per_producer_count(index),
            payload_bytes=scenario.message_bytes,
            rng=rng,
            topic=scenario.topic_name,
            timeliness_s=scenario.timeliness_s,
        )
        if scenario.arrival_rate is not None:
            return ConstantRateSource(
                rate=scenario.arrival_rate / self.producers, **common
            )
        if config.polling_interval_s > 0:
            return PolledSource(
                polling_interval_s=config.polling_interval_s,
                hardware=scenario.hardware,
                **common,
            )
        return FullLoadSource(
            hardware=scenario.hardware,
            waits_for_ack=config.semantics.waits_for_ack,
            **common,
        )

    def run(self) -> ExperimentResult:
        """Run the fleet and return aggregate reliability metrics."""
        scenario = self.scenario
        if scenario.loss_rate > 0 or scenario.network_delay_s > 0:
            fault = NetworkFault(
                delay_s=scenario.network_delay_s,
                loss_rate=scenario.loss_rate,
                bursty=scenario.bursty_loss,
            )
            for slot in self.slots:
                slot.injector.inject(fault)
        for slot in self.slots:
            slot.source.start()
        start = self.sim.now
        processed = self.sim.run(max_events=self.MAX_EVENTS)
        if processed >= self.MAX_EVENTS:
            raise RuntimeError("scaled experiment exceeded the event budget")
        duration = self.sim.now - start
        all_keys = set()
        for slot in self.slots:
            all_keys |= slot.source.keys
        report = reconcile(
            all_keys,
            self.topic,
            ingest_times=self.tracker.ingest_times,
            timeliness_s=scenario.timeliness_s,
        )
        report.check_conservation()
        delivered = report.delivered_unique
        ack_latencies = list(self.tracker.ack_latencies.values())
        return ExperimentResult(
            message_bytes=scenario.message_bytes,
            timeliness_s=scenario.timeliness_s,
            network_delay_s=scenario.network_delay_s,
            loss_rate=scenario.loss_rate,
            semantics=scenario.config.semantics.value,
            batch_size=scenario.config.batch_size,
            polling_interval_s=scenario.config.polling_interval_s,
            message_timeout_s=scenario.config.message_timeout_s,
            produced=report.produced,
            p_loss=report.p_loss,
            p_duplicate=report.p_duplicate,
            p_stale=report.p_stale,
            duplicate_copies=report.duplicate_copies,
            mean_ack_latency_s=(
                float(np.mean(ack_latencies)) if ack_latencies else None
            ),
            throughput_msgs_per_s=delivered / duration if duration > 0 else None,
            simulated_duration_s=duration,
            seed=scenario.seed,
        )


def run_scaled_experiment(scenario: Scenario, producers: int) -> ExperimentResult:
    """Run ``scenario``'s workload over a fleet of ``producers``."""
    return ScaledExperiment(scenario, producers).run()
