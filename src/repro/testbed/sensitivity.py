"""Parameter sensitivity analysis (paper Section III-D).

The paper selects its prediction features by sensitivity: "A change in
the quantitative parameter's default value of 50 % should have observable
impact on reliability metrics, otherwise the parameter is neglected."
This module mechanises that screen: perturb each candidate parameter by a
configurable factor around a baseline scenario, measure the reliability
deltas on the testbed, and rank the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache
from .results import ExperimentResult
from .runner import run_many
from .scenario import Scenario
from .sweep import apply_axis

__all__ = ["ParameterSensitivity", "SensitivityReport", "analyze_sensitivity", "DEFAULT_CANDIDATES"]

#: Quantitative parameters the paper screens (axis syntax of apply_axis).
DEFAULT_CANDIDATES = [
    "message_bytes",
    "config.batch_size",
    "config.message_timeout_s",
    "config.polling_interval_s",
    "config.request_timeout_s",
    "config.retry_backoff_s",
    "config.max_in_flight",
    "config.linger_s",
]


@dataclass
class ParameterSensitivity:
    """Measured impact of perturbing one parameter."""

    parameter: str
    baseline_value: float
    low_value: float
    high_value: float
    baseline_p_loss: float
    low_p_loss: float
    high_p_loss: float
    baseline_p_duplicate: float
    low_p_duplicate: float
    high_p_duplicate: float

    @property
    def max_delta(self) -> float:
        """Largest observed change across metrics and directions."""
        return max(
            abs(self.low_p_loss - self.baseline_p_loss),
            abs(self.high_p_loss - self.baseline_p_loss),
            abs(self.low_p_duplicate - self.baseline_p_duplicate),
            abs(self.high_p_duplicate - self.baseline_p_duplicate),
        )

    def is_sensitive(self, threshold: float = 0.02) -> bool:
        """The paper's screen: observable impact on a reliability metric."""
        return self.max_delta >= threshold


@dataclass
class SensitivityReport:
    """All screened parameters, ranked by impact."""

    baseline: ExperimentResult
    entries: List[ParameterSensitivity] = field(default_factory=list)

    def ranked(self) -> List[ParameterSensitivity]:
        """Entries ordered from most to least sensitive."""
        return sorted(self.entries, key=lambda entry: entry.max_delta, reverse=True)

    def selected_features(self, threshold: float = 0.02) -> List[str]:
        """Parameters that pass the paper's 50 %-perturbation screen."""
        return [
            entry.parameter
            for entry in self.ranked()
            if entry.is_sensitive(threshold)
        ]


def _perturbed(value: float, factor: float, parameter: str) -> float:
    scaled = value * factor
    if parameter in ("config.batch_size", "config.max_in_flight"):
        return max(1, int(round(scaled)))
    return scaled


def _axis_value(scenario: Scenario, parameter: str) -> float:
    if parameter.startswith("config."):
        return float(getattr(scenario.config, parameter[len("config."):]))
    return float(getattr(scenario, parameter))


def analyze_sensitivity(
    baseline: Scenario,
    candidates: Optional[Sequence[str]] = None,
    perturbation: float = 0.5,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[Union[int, str]] = None,
    cache: Optional[ResultCache] = None,
    execution_info: Optional[Dict[str, Any]] = None,
) -> SensitivityReport:
    """Run the Section III-D screen around ``baseline``.

    Parameters
    ----------
    baseline:
        The scenario whose parameter defaults are perturbed.
    candidates:
        Axis names to screen (default: the paper's quantitative set).
    perturbation:
        Fractional change applied in each direction (paper: 0.5).
    progress:
        Optional callback invoked with each parameter name as its probe
        scenarios are scheduled.
    workers / cache / execution_info:
        Process-pool size (``int`` or ``"auto"``), result cache and
        execution-mode out-param, forwarded to
        :func:`~repro.testbed.runner.run_many`; the whole screen (one
        baseline plus up to two probes per candidate) runs as one batch.

    Parameters whose baseline value is 0 are perturbed upward only (a
    -50 % change of zero is zero); the upward probe uses a representative
    small value instead of 1.5 × 0.
    """
    if not 0.0 < perturbation < 1.0:
        raise ValueError("perturbation must be in (0, 1)")
    candidates = list(candidates) if candidates is not None else list(DEFAULT_CANDIDATES)
    zero_probe = {
        "config.polling_interval_s": 0.03,
        "config.linger_s": 0.05,
        "config.retry_backoff_s": 0.05,
    }
    # Schedule the baseline (slot 0) plus every probe as one batch so the
    # pool drains the whole screen at once.
    jobs: List[Scenario] = [baseline]
    specs: List[Tuple[str, float, float, float, int, int]] = []
    for parameter in candidates:
        if progress is not None:
            progress(parameter)
        value = _axis_value(baseline, parameter)
        if value == 0.0:
            high_value = zero_probe.get(parameter, 1.0)
            low_value = 0.0
        else:
            high_value = _perturbed(value, 1.0 + perturbation, parameter)
            low_value = _perturbed(value, 1.0 - perturbation, parameter)
        if low_value == value:
            low_index = 0
        else:
            low_index = len(jobs)
            jobs.append(apply_axis(baseline, parameter, low_value))
        high_index = len(jobs)
        jobs.append(apply_axis(baseline, parameter, high_value))
        specs.append(
            (parameter, value, low_value, high_value, low_index, high_index)
        )
    results = run_many(
        jobs, workers=workers, cache=cache, execution_info=execution_info
    )
    baseline_result = results[0]
    report = SensitivityReport(baseline=baseline_result)
    for parameter, value, low_value, high_value, low_index, high_index in specs:
        low_result = results[low_index]
        high_result = results[high_index]
        report.entries.append(
            ParameterSensitivity(
                parameter=parameter,
                baseline_value=value,
                low_value=low_value,
                high_value=high_value,
                baseline_p_loss=baseline_result.p_loss,
                low_p_loss=low_result.p_loss,
                high_p_loss=high_result.p_loss,
                baseline_p_duplicate=baseline_result.p_duplicate,
                low_p_duplicate=low_result.p_duplicate,
                high_p_duplicate=high_result.p_duplicate,
            )
        )
    return report
