"""The experiment runner: one scenario → one measured result.

Mirrors the paper's procedure (Section III-E):

1. start a fresh Kafka system and create a new topic (no legacy effects),
2. provide uniquely-keyed source data of configurable size,
3. inject the network fault while the producer runs,
4. stop fault injection, run the consumer, and
5. reconcile unique keys to count lost and duplicated messages.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..kafka.cluster import KafkaCluster
from ..kafka.consumer import reconcile
from ..kafka.message import reset_key_counter
from ..kafka.producer import KafkaProducer
from ..kafka.state import DeliveryCase
from ..network.faults import FaultInjector, NetworkFault
from ..network.latency import ConstantLatency
from ..network.link import Link
from ..network.transport import ReliableChannel, reset_message_counter
from ..observability.invariants import verify_manifest, verify_trace
from ..observability.telemetry import RunTelemetry, TelemetryConfig
from ..observability.trace import RingBufferSink
from ..simulation.random import RngRegistry
from ..simulation.simulator import Simulator
from ..workloads.arrival import ConstantRateSource, FullLoadSource, PolledSource
from .cache import default_salt, scenario_fingerprint
from .results import ExperimentResult
from .scenario import Scenario
from .tracker import DeliveryTracker

__all__ = ["Experiment", "run_experiment"]


class Experiment:
    """A fully wired testbed instance for one scenario.

    Building the experiment constructs the simulator, cluster, link,
    channel, producer, tracker and source; :meth:`run` executes it and
    returns the :class:`ExperimentResult`.  The pieces stay accessible as
    attributes for tests and custom drivers.
    """

    #: Safety valve: no experiment may process more events than this.
    MAX_EVENTS = 20_000_000

    def __init__(
        self, scenario: Scenario, telemetry: Optional[TelemetryConfig] = None
    ) -> None:
        self.scenario = scenario
        # Unique keys and transport message ids restart per experiment so
        # partition routing — and the run's trace digest — is a pure
        # function of the scenario seed.
        reset_key_counter()
        reset_message_counter()
        self.sim = Simulator()
        self.rng = RngRegistry(scenario.seed)
        # Telemetry is fully optional: with telemetry=None every component
        # below stores a None tracer and the run is byte-identical to an
        # uninstrumented one.  Emission never schedules events or consumes
        # RNG, so enabling it cannot perturb measured outputs either.
        self.telemetry = RunTelemetry(telemetry) if telemetry is not None else None
        self.cluster = KafkaCluster(
            self.sim, scenario.broker_count, scenario.broker_config
        )
        if self.telemetry is not None:
            for broker in self.cluster.brokers.values():
                broker.attach_telemetry(self.telemetry)
        self.topic = self.cluster.create_topic(
            scenario.topic_name, partitions=scenario.partition_count
        )
        hardware = scenario.hardware
        self.link = Link(
            self.sim,
            self.rng.stream("link"),
            capacity_bps=hardware.link_capacity_bps,
            latency=ConstantLatency(hardware.link_base_delay_s),
        )
        self.channel = ReliableChannel(self.sim, self.link, telemetry=self.telemetry)
        self.tracker = DeliveryTracker(
            retries_allowed=scenario.config.semantics.retries_allowed,
            telemetry=self.telemetry,
        )
        self.tracker.attach_clock(self.sim)
        self.producer = KafkaProducer(
            self.sim,
            self.cluster,
            self.channel,
            self.topic,
            config=scenario.config,
            hardware=hardware,
            listener=self.tracker,
            telemetry=self.telemetry,
        )
        self.cluster.add_append_listener(self.tracker.on_append)
        self.injector = FaultInjector(self.sim, self.link, telemetry=self.telemetry)
        self.injector.on_broker_availability(self.cluster.set_broker_availability)
        self.source = self._build_source()

    def _build_source(self):
        scenario = self.scenario
        config = scenario.config
        rng = self.rng.stream("source")
        common = dict(
            sim=self.sim,
            producer=self.producer,
            count=scenario.message_count,
            payload_bytes=scenario.message_bytes,
            rng=rng,
            topic=scenario.topic_name,
            timeliness_s=scenario.timeliness_s,
        )
        if scenario.arrival_rate is not None:
            return ConstantRateSource(rate=scenario.arrival_rate, **common)
        if config.polling_interval_s > 0:
            return PolledSource(
                polling_interval_s=config.polling_interval_s,
                hardware=scenario.hardware,
                **common,
            )
        return FullLoadSource(
            hardware=scenario.hardware,
            waits_for_ack=config.semantics.waits_for_ack,
            **common,
        )

    def run(self) -> ExperimentResult:
        """Execute the experiment and return its measured result."""
        scenario = self.scenario
        wall_start = time.perf_counter()
        if scenario.loss_rate > 0 or scenario.network_delay_s > 0:
            self.injector.inject(
                NetworkFault(
                    delay_s=scenario.network_delay_s,
                    loss_rate=scenario.loss_rate,
                    jitter_s=scenario.jitter_s,
                    bursty=scenario.bursty_loss,
                )
            )
        self.source.start()
        start = self.sim.now
        processed = self.sim.run(max_events=self.MAX_EVENTS)
        if processed >= self.MAX_EVENTS:
            raise RuntimeError(
                "experiment exceeded the event budget; check for overload "
                "configurations that never converge"
            )
        duration = self.sim.now - start
        # Fault injection "stops" before consumption: reconciliation reads
        # the committed logs directly, after all network events settled.
        self.injector.clear()
        report = reconcile(
            self.source.keys,
            self.topic,
            ingest_times=self.tracker.ingest_times,
            timeliness_s=scenario.timeliness_s,
        )
        report.check_conservation()
        census = self.tracker.census()
        case_fractions = {
            ExperimentResult.case_key(case): census.fraction(case)
            for case in DeliveryCase
            if census.case_counts.get(case)
        }
        ack_latencies = list(self.tracker.ack_latencies.values())
        stats = self.producer.stats
        delivered = report.delivered_unique
        manifest = None
        if self.telemetry is not None:
            manifest = self._finish_telemetry(report, census, duration, wall_start)
        result = ExperimentResult(
            message_bytes=scenario.message_bytes,
            timeliness_s=scenario.timeliness_s,
            network_delay_s=scenario.network_delay_s,
            loss_rate=scenario.loss_rate,
            semantics=scenario.config.semantics.value,
            batch_size=scenario.config.batch_size,
            polling_interval_s=scenario.config.polling_interval_s,
            message_timeout_s=scenario.config.message_timeout_s,
            produced=report.produced,
            p_loss=report.p_loss,
            p_duplicate=report.p_duplicate,
            p_stale=report.p_stale,
            case_fractions=case_fractions,
            persisted_but_unacked=self.tracker.persisted_but_unacked(),
            duplicate_copies=report.duplicate_copies,
            mean_ack_latency_s=(
                float(np.mean(ack_latencies)) if ack_latencies else None
            ),
            p50_ack_latency_s=(
                float(np.percentile(ack_latencies, 50)) if ack_latencies else None
            ),
            p95_ack_latency_s=(
                float(np.percentile(ack_latencies, 95)) if ack_latencies else None
            ),
            throughput_msgs_per_s=(
                delivered / duration if duration > 0 else None
            ),
            simulated_duration_s=duration,
            retransmissions=self.channel.stats("forward").retransmissions,
            request_retries=stats.request_retries,
            seed=scenario.seed,
        )
        result.manifest = manifest
        return result

    def _finish_telemetry(self, report, census, duration, wall_start) -> dict:
        """Snapshot stats into metrics, build the manifest, check invariants."""
        telemetry = self.telemetry
        metrics = telemetry.metrics
        scenario = self.scenario
        stats = self.producer.stats
        for name in (
            "ingested",
            "queue_dropped",
            "expired_in_queue",
            "expired_after_send",
            "requests_sent",
            "request_retries",
            "acknowledged",
            "perceived_lost",
            "fire_and_forget",
            "bytes_sent",
        ):
            metrics.counter(f"producer.{name}").inc(getattr(stats, name))
        for direction in ("forward", "reverse"):
            transport = self.channel.stats(direction)
            for name in (
                "messages_sent",
                "messages_delivered",
                "messages_failed",
                "segments_sent",
                "retransmissions",
                "acks_received",
                "duplicate_segments",
            ):
                metrics.counter(f"transport.{direction}.{name}").inc(
                    getattr(transport, name)
                )
        for broker_id, broker in sorted(self.cluster.brokers.items()):
            metrics.gauge(f"broker.{broker_id}.requests_handled").set(
                broker.requests_handled
            )
        case_counts = census.as_flat_counts()
        for name, count in case_counts.items():
            metrics.counter(f"census.{name}").inc(count)
        metrics.counter("census.unresolved").inc(census.unresolved)
        metrics.counter("reconciliation.produced").inc(report.produced)
        metrics.counter("reconciliation.delivered_unique").inc(report.delivered_unique)
        metrics.counter("reconciliation.lost").inc(report.lost)
        metrics.counter("reconciliation.duplicated").inc(report.duplicated)
        metrics.gauge("sim.events_processed").set(self.sim.events_processed)
        metrics.gauge("sim.duration_s").set(duration)
        manifest = telemetry.build_manifest(
            scenario_fingerprint=scenario_fingerprint(scenario, default_salt()),
            seed=scenario.seed,
            salt=default_salt(),
            produced=report.produced,
            delivered_unique=report.delivered_unique,
            lost=report.lost,
            duplicated=report.duplicated,
            duplicate_copies=report.duplicate_copies,
            persisted_but_unacked=self.tracker.persisted_but_unacked(),
            case_counts=case_counts,
            unresolved=census.unresolved,
            events_processed=self.sim.events_processed,
            sim_duration_s=duration,
            heap=self.sim.heap_integrity(),
            wall_time_s=time.perf_counter() - wall_start,
        )
        if telemetry.config.check_invariants:
            tracer = telemetry.tracer
            if tracer is not None and isinstance(tracer.sink, RingBufferSink):
                verify_trace(tracer.records(), manifest)
            else:
                # File sinks are verified offline via ``repro inspect``:
                # the handle is still open for writing here.
                verify_manifest(manifest)
        telemetry.finalize()
        return manifest


def run_experiment(
    scenario: Scenario, telemetry: Optional[TelemetryConfig] = None
) -> ExperimentResult:
    """Build and run one experiment (the testbed's main entry point)."""
    return Experiment(scenario, telemetry=telemetry).run()
