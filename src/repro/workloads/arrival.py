"""Arrival processes driving records into the producer.

The paper's experiments use two source disciplines:

* **Full load** (δ = 0): the producer acquires source data "in the highest
  speed that I/O devices can handle".  Real fully-loaded readers are
  bursty (page-cache misses, upstream batching, GC pauses), which is what
  makes the delivery-timeout knee of Fig. 5 possible — we model an on/off
  source whose *on* phases read at the peak I/O rate.
* **Polled** (δ > 0): one record is acquired every δ seconds, so the
  arrival rate is λ = 1/δ (Section IV-C).

Both stop after emitting a fixed number of records and then call the
producer's ``finish_input``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..kafka.config import HardwareProfile
from ..kafka.message import ProducerRecord
from ..kafka.producer import KafkaProducer
from ..simulation.simulator import Simulator

__all__ = ["SourceDriver", "FullLoadSource", "PolledSource", "ConstantRateSource", "PoissonSource"]


class SourceDriver:
    """Base class: emits ``count`` records into a producer, then finishes."""

    def __init__(
        self,
        sim: Simulator,
        producer: KafkaProducer,
        count: int,
        payload_bytes: int,
        rng: np.random.Generator,
        topic: str = "events",
        timeliness_s: Optional[float] = None,
        payload_sampler: Optional[Callable[[np.random.Generator], int]] = None,
    ) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        if payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        self._sim = sim
        self._producer = producer
        self._count = count
        self._payload_bytes = payload_bytes
        self._rng = rng
        self._topic = topic
        self._timeliness_s = timeliness_s
        self._payload_sampler = payload_sampler
        self._emitted = 0
        self.keys: set = set()

    def start(self) -> None:
        """Begin emitting records at simulated time now."""
        self._sim.schedule(0.0, self._emit)

    def _next_interval(self) -> float:
        """Time until the next record; subclasses define the process."""
        raise NotImplementedError

    def _emit(self) -> None:
        if self._emitted >= self._count:
            self._producer.finish_input()
            return
        size = (
            self._payload_sampler(self._rng)
            if self._payload_sampler is not None
            else self._payload_bytes
        )
        record = ProducerRecord(
            payload_bytes=max(1, int(size)),
            topic=self._topic,
            source_time=self._sim.now,
            timeliness_s=self._timeliness_s,
        )
        self.keys.add(record.key)
        self._producer.offer(record)
        self._emitted += 1
        if self._emitted >= self._count:
            self._producer.finish_input()
            return
        self._sim.schedule(self._next_interval(), self._emit)


class FullLoadSource(SourceDriver):
    """On/off bursty source reading at peak I/O rate during bursts.

    Parameters beyond :class:`SourceDriver`:

    waits_for_ack:
        Whether the producer's semantics processes broker responses; an
        acks-handling producer ingests slower at full load (the
        ``ack_overhead_factor`` of the hardware profile).
    """

    def __init__(
        self,
        sim: Simulator,
        producer: KafkaProducer,
        count: int,
        payload_bytes: int,
        rng: np.random.Generator,
        hardware: HardwareProfile,
        waits_for_ack: bool,
        **kwargs,
    ) -> None:
        super().__init__(sim, producer, count, payload_bytes, rng, **kwargs)
        self._hardware = hardware
        self._peak_rate = hardware.full_load_rate(payload_bytes, waits_for_ack)
        self._burst_remaining = self._burst_length()

    def _burst_length(self) -> int:
        mean_messages = self._hardware.source_burst_on_s * self._peak_rate
        length = int(round(self._rng.uniform(0.8, 1.2) * max(1.0, mean_messages)))
        return max(1, length)

    def _next_interval(self) -> float:
        base = 1.0 / self._peak_rate
        self._burst_remaining -= 1
        if self._burst_remaining <= 0:
            self._burst_remaining = self._burst_length()
            off = self._hardware.source_burst_off_s * self._rng.uniform(0.7, 1.3)
            return base + off
        # Small jitter keeps packet-level effects from phase-locking.
        return base * self._rng.uniform(0.85, 1.15)


class PolledSource(SourceDriver):
    """Polling throttle: at most one record per interval δ (λ ≤ 1/δ).

    The upstream data is still produced by the bursty source process; a
    poll that lands while no data is pending returns empty (the producer
    sleeps another δ).  Data pending but not yet polled accumulates
    upstream, so polling *smooths* bursts at the price of added latency —
    precisely the trade the paper's Section IV-C describes.

    Parameters beyond :class:`SourceDriver`:

    polling_interval_s:
        δ; must be positive (δ = 0 is :class:`FullLoadSource`).
    hardware:
        Used for the upstream burst pattern and peak rate.
    """

    def __init__(
        self,
        sim: Simulator,
        producer: KafkaProducer,
        count: int,
        payload_bytes: int,
        rng: np.random.Generator,
        polling_interval_s: float,
        hardware: Optional[HardwareProfile] = None,
        **kwargs,
    ) -> None:
        super().__init__(sim, producer, count, payload_bytes, rng, **kwargs)
        if polling_interval_s <= 0:
            raise ValueError(
                "polling_interval_s must be positive; use FullLoadSource for δ=0"
            )
        self._delta = polling_interval_s
        self._hardware = hardware if hardware is not None else HardwareProfile()
        # Polling producers spend their idle time sleeping, not handling
        # acks, so the upstream peak rate is the raw I/O rate.
        self._peak_rate = self._hardware.full_load_rate(payload_bytes, False)
        self._pending = 0
        self._generated = 0
        self._burst_remaining = self._upstream_burst_length()

    def _upstream_burst_length(self) -> int:
        mean_messages = self._hardware.source_burst_on_s * self._peak_rate
        return max(1, int(round(self._rng.uniform(0.8, 1.2) * max(1.0, mean_messages))))

    def start(self) -> None:
        self._sim.schedule(0.0, self._generate)
        self._sim.schedule(self._delta, self._poll)

    def _generate(self) -> None:
        """Upstream burst process filling the pending-data buffer."""
        if self._generated >= self._count:
            return
        self._generated += 1
        self._pending += 1
        base = 1.0 / self._peak_rate
        self._burst_remaining -= 1
        if self._burst_remaining <= 0:
            self._burst_remaining = self._upstream_burst_length()
            base += self._hardware.source_burst_off_s * self._rng.uniform(0.7, 1.3)
        else:
            base *= self._rng.uniform(0.85, 1.15)
        self._sim.schedule(base, self._generate)

    def _poll(self) -> None:
        """The producer's δ-periodic acquisition call."""
        if self._emitted >= self._count:
            return
        if self._pending > 0:
            self._pending -= 1
            size = (
                self._payload_sampler(self._rng)
                if self._payload_sampler is not None
                else self._payload_bytes
            )
            record = ProducerRecord(
                payload_bytes=max(1, int(size)),
                topic=self._topic,
                source_time=self._sim.now,
                timeliness_s=self._timeliness_s,
            )
            self.keys.add(record.key)
            self._producer.offer(record)
            self._emitted += 1
            if self._emitted >= self._count:
                self._producer.finish_input()
                return
        self._sim.schedule(self._delta, self._poll)

    def _next_interval(self) -> float:  # pragma: no cover - unused override
        return self._delta


class ConstantRateSource(SourceDriver):
    """Deterministic arrivals at a fixed rate (messages/second)."""

    def __init__(
        self,
        sim: Simulator,
        producer: KafkaProducer,
        count: int,
        payload_bytes: int,
        rng: np.random.Generator,
        rate: float,
        **kwargs,
    ) -> None:
        super().__init__(sim, producer, count, payload_bytes, rng, **kwargs)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._interval = 1.0 / rate

    def _next_interval(self) -> float:
        return self._interval


class PoissonSource(SourceDriver):
    """Memoryless arrivals at a mean rate (messages/second)."""

    def __init__(
        self,
        sim: Simulator,
        producer: KafkaProducer,
        count: int,
        payload_bytes: int,
        rng: np.random.Generator,
        rate: float,
        **kwargs,
    ) -> None:
        super().__init__(sim, producer, count, payload_bytes, rng, **kwargs)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._rate = rate

    def _next_interval(self) -> float:
        return float(self._rng.exponential(1.0 / self._rate))
