"""Source-data workloads.

Arrival processes (:mod:`~repro.workloads.arrival`) drive records into the
producer under the paper's two disciplines (full load and polled), and
:mod:`~repro.workloads.streams` defines the three Table II application
streams.
"""

from .arrival import (
    ConstantRateSource,
    FullLoadSource,
    PoissonSource,
    PolledSource,
    SourceDriver,
)
from .streams import (
    GAME_TRAFFIC,
    PAPER_STREAMS,
    SOCIAL_MEDIA,
    StreamProfile,
    WEB_ACCESS_LOGS,
)

__all__ = [
    "SourceDriver",
    "FullLoadSource",
    "PolledSource",
    "ConstantRateSource",
    "PoissonSource",
    "StreamProfile",
    "SOCIAL_MEDIA",
    "WEB_ACCESS_LOGS",
    "GAME_TRAFFIC",
    "PAPER_STREAMS",
]
