"""The three application streams of the paper's Table II.

Section V designs three data streams with distinct size, timeliness and
KPI-weight characteristics:

* **social media messages** — short text, must arrive quickly and with the
  lowest loss; weights (0.4, 0.3, 0.2, 0.1);
* **web server access records** — timeliness not strict, completeness
  required, duplicates tolerable (idempotent processing); weights
  (0.1, 0.1, 0.7, 0.1);
* **game traffic messages** — tiny (< 100 B) mouse/keyboard signals that
  must be delivered accurately in real time; weights (0.2, 0.4, 0.2, 0.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

__all__ = ["StreamProfile", "SOCIAL_MEDIA", "WEB_ACCESS_LOGS", "GAME_TRAFFIC", "PAPER_STREAMS"]


@dataclass(frozen=True)
class StreamProfile:
    """A stream type: message sizing, timeliness and KPI weights.

    Attributes
    ----------
    name:
        Human-readable stream name (the Table II column).
    mean_payload_bytes:
        Mean message size ``M``.
    payload_jitter:
        Fractional size spread around the mean (uniform).
    timeliness_s:
        The validity period ``S`` of a message.
    kpi_weights:
        The paper's suggested (ω1, ω2, ω3, ω4) for this stream.
    arrival_rate:
        Mean source arrival rate in messages/second used in the dynamic
        configuration experiment (λ(t) baseline).  Expressed in the
        repository's scaled unit system (see ``HardwareProfile``): the
        rates keep the paper's ordering (game > web logs > social) and
        sit near the scaled link's capacity so that configuration quality
        decides how much of each stream survives.
    """

    name: str
    mean_payload_bytes: int
    payload_jitter: float
    timeliness_s: float
    kpi_weights: Tuple[float, float, float, float]
    arrival_rate: float

    def __post_init__(self) -> None:
        if self.mean_payload_bytes < 1:
            raise ValueError("mean_payload_bytes must be >= 1")
        if not 0 <= self.payload_jitter < 1:
            raise ValueError("payload_jitter must be in [0, 1)")
        if self.timeliness_s <= 0:
            raise ValueError("timeliness_s must be positive")
        if abs(sum(self.kpi_weights) - 1.0) > 1e-9:
            raise ValueError("KPI weights must sum to 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")

    def payload_sampler(self) -> Callable[[np.random.Generator], int]:
        """Sampler of per-message payload sizes."""
        mean = self.mean_payload_bytes
        jitter = self.payload_jitter

        def sample(rng: np.random.Generator) -> int:
            low = mean * (1.0 - jitter)
            high = mean * (1.0 + jitter)
            return max(1, int(round(rng.uniform(low, high))))

        return sample


#: Short text posts; loss is the cardinal sin, latency matters.
SOCIAL_MEDIA = StreamProfile(
    name="social media messages",
    mean_payload_bytes=300,
    payload_jitter=0.4,
    timeliness_s=5.0,
    kpi_weights=(0.4, 0.3, 0.2, 0.1),
    arrival_rate=12.0,
)

#: ~200-byte access records; completeness over timeliness, duplicates OK.
WEB_ACCESS_LOGS = StreamProfile(
    name="web server access records",
    mean_payload_bytes=200,
    payload_jitter=0.2,
    timeliness_s=60.0,
    kpi_weights=(0.1, 0.1, 0.7, 0.1),
    arrival_rate=15.0,
)

#: Tiny control signals; strict real-time and accuracy requirements.
GAME_TRAFFIC = StreamProfile(
    name="game traffic messages",
    mean_payload_bytes=80,
    payload_jitter=0.2,
    timeliness_s=0.5,
    kpi_weights=(0.2, 0.4, 0.2, 0.2),
    arrival_rate=20.0,
)

#: The Table II columns in paper order.
PAPER_STREAMS = (SOCIAL_MEDIA, WEB_ACCESS_LOGS, GAME_TRAFFIC)
