"""Command-line interface for the reproduction toolkit.

Six subcommands cover the paper's workflow:

``repro experiment``
    Run one testbed experiment and print the measured reliability.
    ``--metrics`` emits the run's metrics + manifest as JSON instead of
    the table; ``--trace-file`` writes the structured event trace as
    JSONL for later ``repro inspect``.
``repro train``
    Collect Fig. 3 training data, train the ANN predictor, report MAE and
    optionally persist the model to a registry directory.
``repro dynamic``
    Generate a Fig. 9 trace, build the offline configuration plan with a
    stored (or freshly trained) model, replay default vs dynamic policies
    and print the Table II-style rates.
``repro chaos``
    Replay a seeded chaos campaign (broker flaps, loss bursts, delay
    spikes) under the static and/or degraded-mode control policies and
    print the per-phase degradation; ``--out`` writes the deterministic
    JSON campaign report.
``repro inspect``
    Load a ``--trace-file`` JSONL trace, replay it through the invariant
    checker and print a summary; exits non-zero on any violation.
``repro lint``
    Run the determinism & correctness static-analysis rules over the
    source tree; exits non-zero on any new, unsuppressed finding (see
    DESIGN.md §9 and the lint-baseline workflow in README).

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import render_table
from .chaos import flap_burst_schedule, run_campaign, staged_escalation_schedule
from .observability import (
    TelemetryConfig,
    conservation_violations,
    load_trace_file,
    trace_violations,
)
from .kafka import DEFAULT_PRODUCER_CONFIG, DeliverySemantics, ProducerConfig
from .lint import cli as lint_cli
from .kpi import DynamicConfigurationController, KpiWeights, run_traced_experiment
from .models import ModelRegistry, TrainingSettings, train_reliability_model
from .network import generate_paper_trace
from .performance import ProducerPerformanceModel
from .simulation import RngRegistry
from .testbed import (
    ResultCache,
    Scenario,
    abnormal_case_plan,
    normal_case_plan,
    resolve_workers,
    run_many,
)
from .workloads import PAPER_STREAMS
from .workloads.streams import GAME_TRAFFIC, SOCIAL_MEDIA, WEB_ACCESS_LOGS

__all__ = ["main", "build_parser"]


def _workers_argument(text: str):
    """Parse ``--workers``: a positive integer or the literal ``auto``."""
    value = text.strip().lower()
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f'expected an integer or "auto", got {text!r}'
        ) from None


def _execution_line(info: dict) -> str:
    """One-line human summary of how a grid actually executed."""
    mode = info.get("mode", "?")
    parts = [f"mode={mode}"]
    if info.get("workers"):
        parts.append(f"workers={info['workers']}")
    if info.get("reason"):
        parts.append(f"reason={info['reason']}")
    if info.get("chunksize"):
        parts.append(f"chunksize={info['chunksize']}")
    return " ".join(parts)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSN'20 Kafka-reliability reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers", type=_workers_argument, default="auto",
            metavar="N|auto",
            help="experiment pool size; 'auto' (default) sizes to the "
                 "machine ($REPRO_WORKERS, else cpu_count - 1) and falls "
                 "back to serial when a pool cannot win",
        )
        command.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="reuse measured results from (and write new ones to) "
                 "this cache directory",
        )

    experiment = sub.add_parser(
        "experiment", help="run one testbed experiment and print P_l / P_d"
    )
    add_engine_options(experiment)
    experiment.add_argument("--message-bytes", type=int, default=200, metavar="M")
    experiment.add_argument("--delay-ms", type=float, default=0.0, metavar="D")
    experiment.add_argument("--loss", type=float, default=0.0, metavar="L")
    experiment.add_argument(
        "--semantics",
        choices=[member.value for member in DeliverySemantics],
        default="at_least_once",
    )
    experiment.add_argument("--batch-size", type=int, default=1, metavar="B")
    experiment.add_argument("--polling-ms", type=float, default=0.0, metavar="DELTA")
    experiment.add_argument("--timeout-s", type=float, default=1.5, metavar="T_O")
    experiment.add_argument("--messages", type=int, default=5000, metavar="N")
    experiment.add_argument("--seed", type=int, default=1)
    experiment.add_argument("--bursty-loss", action="store_true")
    experiment.add_argument(
        "--metrics", action="store_true",
        help="print the run's metrics registry and manifest as JSON "
             "(suppresses the table)",
    )
    experiment.add_argument(
        "--trace-file", metavar="PATH", default=None,
        help="write the structured event trace (JSONL) to PATH; "
             "inspect it later with 'repro inspect PATH'",
    )

    train = sub.add_parser("train", help="collect data and train the predictor")
    add_engine_options(train)
    train.add_argument("--messages", type=int, default=2000,
                       help="messages per collection experiment")
    train.add_argument("--normal-rows", type=int, default=60)
    train.add_argument("--abnormal-rows", type=int, default=90)
    train.add_argument("--epochs", type=int, default=300)
    train.add_argument("--paper-topology", action="store_true",
                       help="use the paper's 200/200/200/64 hidden layers")
    train.add_argument("--registry", metavar="DIR",
                       help="persist the trained model under this directory")
    train.add_argument("--name", default="reliability",
                       help="model name inside the registry")

    dynamic = sub.add_parser(
        "dynamic", help="default-vs-dynamic configuration over a trace"
    )
    dynamic.add_argument("--registry", metavar="DIR",
                         help="load the predictor from this registry")
    dynamic.add_argument("--name", default="reliability")
    dynamic.add_argument("--duration", type=float, default=300.0,
                         help="trace duration in seconds")
    dynamic.add_argument("--interval", type=float, default=10.0,
                         help="trace resolution in seconds")
    dynamic.add_argument("--reconfigure-every", type=float, default=60.0)
    dynamic.add_argument("--gamma", type=float, default=0.95,
                         help="KPI requirement for the stepwise search")
    dynamic.add_argument("--cap", type=int, default=300,
                         help="max messages per measured interval")
    dynamic.add_argument("--seed", type=int, default=2020)

    chaos = sub.add_parser(
        "chaos", help="replay a seeded chaos campaign and report degradation"
    )
    chaos.add_argument(
        "--schedule", choices=["flap-burst", "staged-escalation"],
        default="flap-burst",
    )
    chaos.add_argument(
        "--policy", choices=["static", "degraded", "both"], default="both",
        help="control policy to replay (default: both, for comparison)",
    )
    chaos.add_argument(
        "--stream", choices=["social", "web", "game"], default="web",
        help="workload shape and KPI weights (default: web access logs)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--cap", type=int, default=None, metavar="N",
        help="max messages per phase (smoke runs)",
    )
    chaos.add_argument(
        "--registry", metavar="DIR", default=None,
        help="load a trained predictor; without one the degraded "
             "controller runs on its fallback chain (reported per phase)",
    )
    chaos.add_argument("--name", default="reliability")
    chaos.add_argument(
        "--workers", type=_workers_argument, default="auto", metavar="N|auto",
        help="worker budget note for the run manifest; campaign phases "
             "feed controller state forward, so the replay itself is a "
             "sequential control loop",
    )
    chaos.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the deterministic JSON campaign report to PATH",
    )

    inspect = sub.add_parser(
        "inspect", help="verify a trace file against its run manifest"
    )
    inspect.add_argument("trace_file", metavar="TRACE_FILE",
                         help="JSONL trace written by 'repro experiment --trace-file'")

    lint = sub.add_parser(
        "lint", help="run the determinism & correctness lint rules"
    )
    lint_cli.configure_parser(lint)
    return parser


def _build_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    return ResultCache(args.cache_dir) if args.cache_dir else None


def _cmd_experiment(args: argparse.Namespace) -> int:
    scenario = Scenario(
        message_bytes=args.message_bytes,
        network_delay_s=args.delay_ms / 1000.0,
        loss_rate=args.loss,
        message_count=args.messages,
        seed=args.seed,
        bursty_loss=args.bursty_loss,
        config=ProducerConfig(
            semantics=DeliverySemantics.parse(args.semantics),
            batch_size=args.batch_size,
            polling_interval_s=args.polling_ms / 1000.0,
            message_timeout_s=args.timeout_s,
        ),
    )
    telemetry = None
    if args.metrics or args.trace_file:
        telemetry = TelemetryConfig(trace_path=args.trace_file)
    execution: dict = {}
    [result] = run_many(
        [scenario], workers=args.workers, cache=_build_cache(args),
        telemetry=telemetry, execution_info=execution,
    )
    if args.metrics:
        if result.manifest is None:
            print(
                "error: cached result carries no telemetry; "
                "re-run without --cache-dir or clear the cache",
                file=sys.stderr,
            )
            return 1
        # Machine-readable mode: exactly one JSON document on stdout.
        manifest = dict(result.manifest)
        metrics = manifest.pop("metrics", {})
        document = {
            "manifest": manifest,
            "metrics": metrics,
            "execution": execution,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    low, high = result.p_loss_ci
    rows = [
        ["metric", "value"],
        ["P_l (loss)", f"{result.p_loss:.4f}  (95% CI {low:.4f}-{high:.4f})"],
        ["P_d (duplicate)", f"{result.p_duplicate:.4f}"],
        ["stale fraction", f"{result.p_stale:.4f}"],
        ["throughput", f"{result.throughput_msgs_per_s:.1f} msg/s"],
        ["simulated time", f"{result.simulated_duration_s:.1f} s"],
    ]
    for case, fraction in sorted(result.case_fractions.items()):
        rows.append([f"Table I {case}", f"{fraction:.4f}"])
    rows.append(["execution", _execution_line(execution)])
    print(render_table(rows, title="Experiment result"))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    base = Scenario(message_count=args.messages)
    plans = [
        normal_case_plan(base=base, max_rows=args.normal_rows),
        abnormal_case_plan(base=base, max_rows=args.abnormal_rows),
    ]
    settings = (
        TrainingSettings(epochs=args.epochs)
        if args.paper_topology
        else TrainingSettings(
            hidden=(96, 48), epochs=args.epochs, learning_rate=0.3, patience=80
        )
    )

    def progress(index: int, total: int, scenario) -> None:
        if index % 10 == 0:
            sys.stdout.write(f"\rcollecting {index + 1}/{total}...")
            sys.stdout.flush()

    report = train_reliability_model(
        plans=plans,
        settings=settings,
        progress=progress,
        workers=args.workers,
        cache=_build_cache(args),
    )
    print(f"\rcollected {report.train_rows + report.test_rows} rows")
    rows = [["submodel", "rows"]]
    for key, count in sorted(report.submodel_rows.items()):
        rows.append([f"{key[0]}/{key[1]}", str(count)])
    print(render_table(rows))
    print(f"hold-out MAE: {report.mae_report} (paper target: < 0.02)")
    if args.registry:
        path = ModelRegistry(args.registry).save(args.name, report.predictor)
        print(f"model saved to {path}")
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    if args.registry:
        predictor = ModelRegistry(args.registry).load(args.name)
    else:
        print("no --registry given; training a quick model first...")
        base = Scenario(message_count=1200)
        report = train_reliability_model(
            plans=[
                normal_case_plan(base=base, max_rows=40),
                abnormal_case_plan(base=base, max_rows=70),
            ],
            settings=TrainingSettings(
                hidden=(64, 32), epochs=200, learning_rate=0.3, patience=50
            ),
        )
        predictor = report.predictor
        print(f"quick model MAE: {report.overall_mae:.4f}")
    rng = RngRegistry(args.seed)
    trace = generate_paper_trace(
        rng.stream("trace"), duration_s=args.duration, interval_s=args.interval
    )
    performance_model = ProducerPerformanceModel()
    rows = [["stream", "policy", "R_l", "R_d"]]
    for stream in PAPER_STREAMS:
        controller = DynamicConfigurationController(
            predictor,
            performance_model,
            weights=KpiWeights.of(stream.kpi_weights),
            gamma_requirement=args.gamma,
            reconfig_interval_s=args.reconfigure_every,
        )
        plan = controller.generate_plan(trace, stream)
        for policy, kwargs in [
            ("default", dict(static_config=DEFAULT_PRODUCER_CONFIG)),
            ("dynamic", dict(plan=plan)),
        ]:
            outcome = run_traced_experiment(
                trace, stream, messages_cap_per_interval=args.cap,
                seed=args.seed, **kwargs,
            )
            rows.append([
                stream.name, policy,
                f"{outcome.rates.r_loss:.2%}",
                f"{outcome.rates.r_duplicate:.3%}",
            ])
    print(render_table(rows, title="Table II-style comparison"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    schedules = {
        "flap-burst": flap_burst_schedule,
        "staged-escalation": staged_escalation_schedule,
    }
    streams = {
        "social": SOCIAL_MEDIA,
        "web": WEB_ACCESS_LOGS,
        "game": GAME_TRAFFIC,
    }
    schedule = schedules[args.schedule](seed=args.seed)
    stream = streams[args.stream]
    predictor = None
    if args.registry:
        predictor = ModelRegistry(args.registry).load(args.name)
    policies = ["static", "degraded"] if args.policy == "both" else [args.policy]
    reports = []
    rows = [["policy", "phase", "P_l", "P_d", "γ meas", "γ pred", "tier",
             "breaker", "recover"]]
    for policy in policies:
        report = run_campaign(
            schedule,
            stream=stream,
            policy=policy,
            seed=args.seed,
            predictor=predictor,
            messages_cap_per_phase=args.cap,
        )
        reports.append(report)
        for phase in report.phases:
            rows.append([
                policy,
                phase.name,
                f"{phase.p_loss:.3f}",
                f"{phase.p_duplicate:.3f}",
                f"{phase.gamma_measured:.3f}",
                "-" if phase.gamma_predicted is None
                else f"{phase.gamma_predicted:.3f}",
                phase.prediction_source or "-",
                phase.breaker_state or "-",
                "-" if phase.time_to_recover_s is None
                else f"{phase.time_to_recover_s:.2f}s",
            ])
    print(render_table(rows, title=f"Chaos campaign: {schedule.name} (seed {args.seed})"))
    for report in reports:
        print(
            f"{report.policy}: overall P_l={report.overall_p_loss:.3f} "
            f"P_d={report.overall_p_duplicate:.3f} "
            f"mean γ={report.mean_gamma:.3f} "
            f"parked phases={report.breaker_trips}"
        )
    # Campaign phases feed controller state forward, so the replay is a
    # sequential control loop regardless of the worker budget.
    print(
        "execution: mode=serial reason=sequential_control_loop "
        f"workers_budget={resolve_workers(args.workers)}"
    )
    if args.out:
        if len(reports) == 1:
            document = reports[0].to_dict()
        else:
            document = {
                "kind": "chaos_campaign_comparison",
                "schedule": schedule.name,
                "seed": args.seed,
                "campaigns": [report.to_dict() for report in reports],
            }
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    try:
        events, manifest = load_trace_file(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    violations: List[str] = []
    if manifest is None:
        violations.append("no manifest line in the trace file")
    else:
        violations.extend(conservation_violations(manifest))
        violations.extend(trace_violations(events, manifest))
    kinds: dict = {}
    for record in events:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    summary = {
        "trace_file": args.trace_file,
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "manifest": {
            key: manifest[key]
            for key in (
                "scenario_fingerprint", "seed", "produced", "case_counts",
                "unresolved", "trace_events", "trace_digest", "trace_complete",
            )
            if key in manifest
        }
        if manifest is not None
        else None,
        "violations": violations,
        "ok": not violations,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if not violations else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "train": _cmd_train,
        "dynamic": _cmd_dynamic,
        "chaos": _cmd_chaos,
        "inspect": _cmd_inspect,
        "lint": lint_cli.run,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
