"""Composable, seeded chaos schedules for the simulated testbed.

A schedule is a sequence of *phases*; each phase is an isolated testbed
experiment (fresh cluster, fresh link) with a list of timed fault actions
scheduled into its simulator — NetEm-style treatments through
:class:`~repro.network.faults.FaultInjector` and broker crash/restore
through the same injector's availability callbacks.  Phases compose
freely: the stock builders below produce broker flaps, correlated
Gilbert–Elliott loss bursts, delay spikes and staged escalations, and
:func:`compose` stitches arbitrary phases into new campaigns.

Everything is deterministic: the only randomness is seeded jitter on
action placement, derived by hashing ``(seed, phase, action)`` — the same
seed always yields byte-identical schedules, which is what makes campaign
reports reproducible end to end.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple, Union

from ..network.faults import NetworkFault

__all__ = [
    "ChaosAction",
    "ChaosPhase",
    "ChaosSchedule",
    "baseline_phase",
    "loss_burst_phase",
    "delay_spike_phase",
    "broker_flap_phase",
    "blackout_phase",
    "compose",
    "flap_burst_schedule",
    "staged_escalation_schedule",
]

#: Broker ids of the default three-broker cluster shape.
DEFAULT_BROKERS = ("broker-0", "broker-1", "broker-2")


def _unit(seed: int, *parts: object) -> float:
    """Deterministic jitter in [0, 1) from a seed and a label path."""
    payload = ":".join([str(seed)] + [str(part) for part in parts])
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class ChaosAction:
    """One timed fault action inside a phase.

    Attributes
    ----------
    time_s:
        When to fire, relative to the phase's (experiment's) start.
    kind:
        ``inject_fault`` / ``clear_fault`` (NetEm-style link treatments)
        or ``crash_broker`` / ``restore_broker``.
    fault:
        The treatment to install (required for ``inject_fault``).
    broker_id:
        The broker to crash or restore (required for the broker kinds).
    """

    KINDS = ("inject_fault", "clear_fault", "crash_broker", "restore_broker")

    time_s: float
    kind: str
    fault: Optional[NetworkFault] = None
    broker_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("action time must be non-negative")
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.kind == "inject_fault" and self.fault is None:
            raise ValueError("inject_fault needs a fault")
        if self.kind in ("crash_broker", "restore_broker") and not self.broker_id:
            raise ValueError(f"{self.kind} needs a broker_id")


@dataclass(frozen=True)
class ChaosPhase:
    """One experiment's worth of a campaign: a named, timed action list."""

    name: str
    duration_s: float
    actions: Tuple[ChaosAction, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase needs a name")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        for action in self.actions:
            if action.time_s >= self.duration_s:
                raise ValueError(
                    f"action at {action.time_s}s falls outside the "
                    f"{self.duration_s}s phase {self.name!r}"
                )
        # Chronological order regardless of construction order; stable for
        # equal times so composition stays deterministic.
        object.__setattr__(
            self, "actions", tuple(sorted(self.actions, key=lambda a: a.time_s))
        )

    @property
    def last_recovery_s(self) -> Optional[float]:
        """Time of the last restore/clear action, if the phase recovers."""
        times = [
            action.time_s
            for action in self.actions
            if action.kind in ("restore_broker", "clear_fault")
        ]
        return max(times) if times else None


@dataclass(frozen=True)
class ChaosSchedule:
    """A named campaign: an ordered tuple of phases."""

    name: str
    phases: Tuple[ChaosPhase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("schedule needs a name")
        if not self.phases:
            raise ValueError("schedule needs at least one phase")

    @property
    def duration_s(self) -> float:
        """Total simulated duration across all phases."""
        return sum(phase.duration_s for phase in self.phases)


# ------------------------------------------------------------- builders


def baseline_phase(
    duration_s: float = 4.0, name: str = "baseline", description: str = ""
) -> ChaosPhase:
    """A fault-free phase (warm-up, recovery, control group)."""
    return ChaosPhase(
        name=name,
        duration_s=duration_s,
        description=description or "no faults injected",
    )


def loss_burst_phase(
    duration_s: float = 5.0,
    loss_rate: float = 0.3,
    burst_length: float = 8.0,
    delay_s: float = 0.05,
    seed: int = 0,
    name: str = "loss-burst",
) -> ChaosPhase:
    """Correlated (Gilbert–Elliott) loss with mild extra delay.

    Onset and clearance are jittered by the seed so different seeds stress
    different parts of the workload, while one seed is fully repeatable.
    """
    onset = 0.2 + 0.4 * _unit(seed, name, "onset")
    clear = duration_s - 0.4 - 0.4 * _unit(seed, name, "clear")
    fault = NetworkFault(
        delay_s=delay_s,
        loss_rate=loss_rate,
        bursty=True,
        burst_length=burst_length,
    )
    return ChaosPhase(
        name=name,
        duration_s=duration_s,
        actions=(
            ChaosAction(time_s=onset, kind="inject_fault", fault=fault),
            ChaosAction(time_s=clear, kind="clear_fault"),
        ),
        description=(
            f"Gilbert–Elliott burst loss {loss_rate:.0%}, "
            f"mean burst {burst_length:g} packets"
        ),
    )


def delay_spike_phase(
    duration_s: float = 5.0,
    delay_s: float = 0.35,
    jitter_s: float = 0.05,
    spikes: int = 2,
    seed: int = 0,
    name: str = "delay-spike",
) -> ChaosPhase:
    """Repeated latency spikes (inject/clear pairs) across the phase."""
    if spikes < 1:
        raise ValueError("spikes must be >= 1")
    window = duration_s / spikes
    actions = []
    fault = NetworkFault(delay_s=delay_s, jitter_s=jitter_s)
    for spike in range(spikes):
        start = spike * window + 0.1 * window * (1 + _unit(seed, name, spike, "on"))
        stop = start + 0.45 * window * (1 + 0.5 * _unit(seed, name, spike, "off"))
        actions.append(ChaosAction(time_s=start, kind="inject_fault", fault=fault))
        actions.append(ChaosAction(time_s=min(stop, duration_s - 1e-6), kind="clear_fault"))
    return ChaosPhase(
        name=name,
        duration_s=duration_s,
        actions=tuple(actions),
        description=f"{spikes} delay spike(s) of {delay_s * 1000:.0f} ms",
    )


def broker_flap_phase(
    duration_s: float = 6.0,
    broker_ids: Iterable[str] = DEFAULT_BROKERS,
    downtime_s: float = 2.4,
    seed: int = 0,
    name: str = "broker-flap",
) -> ChaosPhase:
    """Crash the given brokers together, restore them ``downtime_s`` later.

    The crash instant carries seeded jitter; the restore always lands
    inside the phase so the experiment observes the recovery.
    """
    headroom = duration_s - downtime_s - 0.2
    if headroom <= 0:
        raise ValueError("downtime_s must leave room inside the phase")
    crash_at = 0.1 + min(0.5, headroom - 0.1) * _unit(seed, name, "crash")
    restore_at = crash_at + downtime_s
    actions = []
    for broker_id in broker_ids:
        actions.append(
            ChaosAction(time_s=crash_at, kind="crash_broker", broker_id=broker_id)
        )
        actions.append(
            ChaosAction(time_s=restore_at, kind="restore_broker", broker_id=broker_id)
        )
    return ChaosPhase(
        name=name,
        duration_s=duration_s,
        actions=tuple(actions),
        description=(
            f"crash {len(actions) // 2} broker(s) for {downtime_s:g}s, then restore"
        ),
    )


def blackout_phase(
    duration_s: float = 2.5,
    broker_ids: Iterable[str] = DEFAULT_BROKERS,
    crash_at_s: float = 0.2,
    name: str = "blackout",
) -> ChaosPhase:
    """Crash every given broker and never restore it within the phase.

    The dead-air phase: the producer sends into silence, which is the
    signature the degraded-mode circuit breaker trips on.
    """
    actions = tuple(
        ChaosAction(time_s=crash_at_s, kind="crash_broker", broker_id=broker_id)
        for broker_id in broker_ids
    )
    return ChaosPhase(
        name=name,
        duration_s=duration_s,
        actions=actions,
        description="all brokers crash and stay down",
    )


def compose(
    name: str, *parts: Union[ChaosPhase, ChaosSchedule]
) -> ChaosSchedule:
    """Stitch phases and/or whole schedules into one campaign."""
    phases = []
    for part in parts:
        if isinstance(part, ChaosSchedule):
            phases.extend(part.phases)
        else:
            phases.append(part)
    return ChaosSchedule(name=name, phases=tuple(phases))


def flap_burst_schedule(seed: int = 0) -> ChaosSchedule:
    """The stock campaign: broker flap plus a Gilbert–Elliott burst.

    Phase order is deliberate: the blackout phase trips the degraded-mode
    circuit breaker *before* the flap phase, so a controller that parks on
    the safe configuration rides out the flap's downtime while a static
    default expires its messages.
    """
    return compose(
        "flap-burst",
        baseline_phase(duration_s=3.0),
        loss_burst_phase(duration_s=4.0, seed=seed),
        blackout_phase(duration_s=2.5),
        broker_flap_phase(duration_s=6.0, downtime_s=2.4, seed=seed),
        baseline_phase(duration_s=3.0, name="recovery"),
    )


def staged_escalation_schedule(seed: int = 0) -> ChaosSchedule:
    """A campaign that degrades the network in stages, then recovers."""
    return compose(
        "staged-escalation",
        baseline_phase(duration_s=3.0),
        loss_burst_phase(
            duration_s=4.0, loss_rate=0.1, burst_length=4.0, seed=seed, name="mild-loss"
        ),
        loss_burst_phase(
            duration_s=4.0, loss_rate=0.35, burst_length=10.0, seed=seed, name="heavy-loss"
        ),
        delay_spike_phase(duration_s=4.0, seed=seed),
        blackout_phase(duration_s=2.5),
        broker_flap_phase(duration_s=6.0, downtime_s=2.4, seed=seed),
        baseline_phase(duration_s=3.0, name="recovery"),
    )
