"""Chaos campaign runner: replay a schedule, measure the degradation.

A campaign replays every phase of a :class:`~repro.chaos.schedule.ChaosSchedule`
as its own fully-telemetered testbed experiment, under one of two control
policies:

* ``static`` — one fixed producer configuration for every phase (the
  control group);
* ``degraded`` — the :class:`~repro.kpi.dynamic.DegradedModeController`
  closed loop: each phase's producer-observable signals feed the EWMA
  network estimator and the circuit breaker, and the *next* phase runs
  whatever configuration the controller decided.

Each phase report records the measured degradation (``P_l``, ``P_d``,
measured γ against the stream's KPI weights), the controller's predicted
γ and fallback tier, the breaker state, and the time-to-recover extracted
from the trace: the gap between the last restore/clear action and the
first acknowledgement after it.  The campaign report is pure simulation
output — no wall-clock times — so one seed produces byte-identical JSON
on every run, which is the determinism contract the tests pin.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kafka.config import DEFAULT_PRODUCER_CONFIG, ProducerConfig
from ..kpi.dynamic import (
    DegradedModeController,
    IntervalObservation,
    _FallbackPredictorView,
)
from ..kpi.selection import SelectionContext, evaluate_configs
from ..kpi.weighted import KpiWeights, kpi_from_estimates
from ..models.predictor import ReliabilityEstimate, ReliabilityPredictor
from ..observability.telemetry import TelemetryConfig
from ..observability.trace import EventKind
from ..performance.queueing import ProducerPerformanceModel
from ..testbed.experiment import Experiment
from ..testbed.scenario import Scenario
from ..workloads.streams import StreamProfile, WEB_ACCESS_LOGS
from .schedule import ChaosPhase, ChaosSchedule

__all__ = ["PhaseReport", "CampaignReport", "phase_seed", "run_campaign"]


def phase_seed(campaign_seed: int, index: int, phase_name: str) -> int:
    """Derive a phase's experiment seed from the campaign seed.

    Hash-derived rather than additive so reordering or renaming phases
    changes their seeds — two campaigns only share per-phase randomness if
    they share the phase *and* its position.
    """
    payload = f"{campaign_seed}:{index}:{phase_name}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=6).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class PhaseReport:
    """Measured outcome of one campaign phase."""

    name: str
    index: int
    duration_s: float
    seed: int
    semantics: str
    batch_size: int
    polling_interval_s: float
    message_timeout_s: float
    produced: int
    p_loss: float
    p_duplicate: float
    p_stale: float
    gamma_measured: float
    gamma_predicted: Optional[float]
    prediction_source: Optional[str]
    breaker_state: Optional[str]
    decision_reason: Optional[str]
    time_to_recover_s: Optional[float]
    faults_injected: int
    broker_crashes: int
    trace_digest: Optional[str]
    events_processed: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (already free of wall-clock fields)."""
        return {
            "name": self.name,
            "index": self.index,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "config": {
                "semantics": self.semantics,
                "batch_size": self.batch_size,
                "polling_interval_s": self.polling_interval_s,
                "message_timeout_s": self.message_timeout_s,
            },
            "produced": self.produced,
            "p_loss": self.p_loss,
            "p_duplicate": self.p_duplicate,
            "p_stale": self.p_stale,
            "gamma_measured": self.gamma_measured,
            "gamma_predicted": self.gamma_predicted,
            "prediction_source": self.prediction_source,
            "breaker_state": self.breaker_state,
            "decision_reason": self.decision_reason,
            "time_to_recover_s": self.time_to_recover_s,
            "faults_injected": self.faults_injected,
            "broker_crashes": self.broker_crashes,
            "trace_digest": self.trace_digest,
            "events_processed": self.events_processed,
        }


@dataclass
class CampaignReport:
    """The full campaign outcome; serialises to deterministic JSON."""

    schedule_name: str
    policy: str
    seed: int
    stream_name: str
    phases: List[PhaseReport] = field(default_factory=list)

    @property
    def overall_p_loss(self) -> float:
        """Message-weighted loss rate across all phases (Eq. 3 style)."""
        produced = sum(phase.produced for phase in self.phases)
        if produced == 0:
            return 0.0
        lost = sum(phase.p_loss * phase.produced for phase in self.phases)
        return lost / produced

    @property
    def overall_p_duplicate(self) -> float:
        """Message-weighted duplicate rate across all phases."""
        produced = sum(phase.produced for phase in self.phases)
        if produced == 0:
            return 0.0
        dup = sum(phase.p_duplicate * phase.produced for phase in self.phases)
        return dup / produced

    @property
    def mean_gamma(self) -> float:
        """Mean measured γ across phases."""
        if not self.phases:
            return 0.0
        return sum(phase.gamma_measured for phase in self.phases) / len(self.phases)

    @property
    def breaker_trips(self) -> int:
        """Phases whose configuration came from an open breaker."""
        return sum(1 for phase in self.phases if phase.decision_reason == "parked")

    def to_dict(self) -> Dict[str, object]:
        """Deterministic plain-dict form — simulation outputs only.

        Wall-clock durations are deliberately absent: two runs of the same
        seeded campaign must serialise to the same bytes.
        """
        return {
            "kind": "chaos_campaign_report",
            "schedule": self.schedule_name,
            "policy": self.policy,
            "seed": self.seed,
            "stream": self.stream_name,
            "overall_p_loss": self.overall_p_loss,
            "overall_p_duplicate": self.overall_p_duplicate,
            "mean_gamma": self.mean_gamma,
            "breaker_trips": self.breaker_trips,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def _schedule_actions(experiment: Experiment, phase: ChaosPhase) -> None:
    """Install the phase's timed actions into the experiment's simulator."""
    injector = experiment.injector
    for action in phase.actions:
        if action.kind == "inject_fault":
            injector.inject_at(action.time_s, action.fault)
        elif action.kind == "clear_fault":
            injector.clear_at(action.time_s)
        elif action.kind == "crash_broker":
            injector.crash_broker_at(action.time_s, action.broker_id)
        else:
            injector.restore_broker_at(action.time_s, action.broker_id)


def _time_to_recover(
    records: List[dict], recovery_time: Optional[float]
) -> Optional[float]:
    """Gap between the phase's last scheduled recovery and the first ack.

    ``recovery_time`` is the phase's last restore/clear action
    (:attr:`ChaosPhase.last_recovery_s`); the ack comes from the trace.
    The run's *final* fault-clear record cannot anchor this — the testbed
    always clears treatments after the simulator drains, long after any
    real recovery.  ``None`` when the phase never schedules a recovery or
    nothing was acknowledged afterwards (the system never came back).
    """
    if recovery_time is None:
        return None
    for record in records:
        if record.get("kind") == EventKind.ACK and record["t"] >= recovery_time:
            return record["t"] - recovery_time
    return None


def _phase_conditions(phase: ChaosPhase) -> "tuple[float, float]":
    """The nominal (delay, loss) the phase injects, for prediction input."""
    delay = 0.0
    loss = 0.0
    for action in phase.actions:
        if action.kind == "inject_fault":
            delay = max(delay, action.fault.delay_s)
            loss = max(loss, action.fault.loss_rate)
    return delay, loss


def _clip01(value: float) -> float:
    return min(1.0, max(0.0, value))


def run_campaign(
    schedule: ChaosSchedule,
    stream: StreamProfile = WEB_ACCESS_LOGS,
    policy: str = "static",
    seed: int = 0,
    start_config: ProducerConfig = DEFAULT_PRODUCER_CONFIG,
    predictor: Optional[ReliabilityPredictor] = None,
    performance_model: Optional[ProducerPerformanceModel] = None,
    controller: Optional[DegradedModeController] = None,
    messages_cap_per_phase: Optional[int] = None,
) -> CampaignReport:
    """Replay a chaos schedule under one policy and report per phase.

    Parameters
    ----------
    schedule:
        The campaign to replay, one experiment per phase.
    stream:
        Workload shape and KPI weights; the measured γ of each phase uses
        this stream's weights.
    policy:
        ``"static"`` (fixed ``start_config``) or ``"degraded"`` (the
        closed-loop :class:`DegradedModeController`).
    seed:
        Campaign seed; every phase derives its experiment seed from it via
        :func:`phase_seed`, so the whole campaign is one deterministic
        function of ``(schedule, stream, policy, seed, start_config)``.
    predictor:
        Reliability predictor for the degraded controller and for
        predicted-γ reporting.  An untrained predictor is fine — the
        fallback chain answers from memory or the conservative floor,
        and the report records which tier it had to use.
    controller:
        Optional pre-built controller (tests tune breaker/hysteresis);
        built from ``predictor`` when omitted.  ``degraded`` policy only.
    messages_cap_per_phase:
        Optional ceiling on messages per phase for quick smoke runs.
    """
    if policy not in ("static", "degraded"):
        raise ValueError('policy must be "static" or "degraded"')
    model = (
        performance_model
        if performance_model is not None
        else ProducerPerformanceModel()
    )
    if policy == "degraded":
        if controller is None:
            if predictor is None:
                predictor = ReliabilityPredictor()
            controller = DegradedModeController(predictor, performance_model=model)
        predictor = controller.predictor
    weights = KpiWeights.of(stream.kpi_weights)
    report = CampaignReport(
        schedule_name=schedule.name,
        policy=policy,
        seed=seed,
        stream_name=stream.name,
    )
    config = start_config
    breaker_state: Optional[str] = None
    decision_reason: Optional[str] = "start"
    predicted: Optional[float] = None
    source: Optional[str] = None
    for index, phase in enumerate(schedule.phases):
        run_seed = phase_seed(seed, index, phase.name)
        count = max(10, int(round(stream.arrival_rate * phase.duration_s)))
        if messages_cap_per_phase is not None:
            count = min(count, messages_cap_per_phase)
        scenario = Scenario(
            message_bytes=stream.mean_payload_bytes,
            timeliness_s=stream.timeliness_s,
            config=config,
            message_count=count,
            seed=run_seed,
            arrival_rate=stream.arrival_rate,
        )
        experiment = Experiment(
            scenario, telemetry=TelemetryConfig(trace=True, check_invariants=True)
        )
        _schedule_actions(experiment, phase)
        result = experiment.run()
        records = experiment.telemetry.tracer.records()
        delay, loss = _phase_conditions(phase)
        context = SelectionContext(
            message_bytes=stream.mean_payload_bytes,
            timeliness_s=stream.timeliness_s,
            network_delay_s=delay,
            loss_rate=loss,
        )
        if policy == "static" and predictor is not None:
            view = _FallbackPredictorView(predictor)
            # evaluate_configs routes through the view's batched fallback
            # path, so phases repeating the same conditions hit the
            # predictor's quantised-feature memo instead of re-running the
            # forward pass (bit-identical either way).
            predicted = evaluate_configs([config], context, view, model, weights)[0]
            source = view.worst_source
        gamma_measured = kpi_from_estimates(
            model.predict(config, stream.mean_payload_bytes, network_delay_s=delay),
            ReliabilityEstimate(
                p_loss=_clip01(result.p_loss),
                p_duplicate=_clip01(result.p_duplicate),
            ),
            weights,
        )
        report.phases.append(
            PhaseReport(
                name=phase.name,
                index=index,
                duration_s=phase.duration_s,
                seed=run_seed,
                semantics=config.semantics.value,
                batch_size=config.batch_size,
                polling_interval_s=config.polling_interval_s,
                message_timeout_s=config.message_timeout_s,
                produced=result.produced,
                p_loss=result.p_loss,
                p_duplicate=result.p_duplicate,
                p_stale=result.p_stale,
                gamma_measured=gamma_measured,
                gamma_predicted=predicted,
                prediction_source=source,
                breaker_state=breaker_state,
                decision_reason=decision_reason,
                time_to_recover_s=_time_to_recover(records, phase.last_recovery_s),
                faults_injected=sum(
                    1 for action in phase.actions if action.kind == "inject_fault"
                ),
                broker_crashes=sum(
                    1 for action in phase.actions if action.kind == "crash_broker"
                ),
                trace_digest=result.manifest.get("trace_digest")
                if result.manifest
                else None,
                events_processed=result.manifest.get("events_processed", 0)
                if result.manifest
                else 0,
            )
        )
        if policy == "degraded":
            stats = experiment.producer.stats
            forward = experiment.channel.stats("forward")
            controller.observe(
                IntervalObservation(
                    requests_sent=stats.requests_sent,
                    acknowledged=stats.acknowledged,
                    request_retries=stats.request_retries,
                    perceived_lost=stats.perceived_lost,
                    segments_sent=forward.segments_sent,
                    retransmissions=forward.retransmissions,
                    min_rtt_s=experiment.channel.minimum_rtt("forward"),
                    waits_for_ack=config.semantics.waits_for_ack,
                ),
                message_bytes=stream.mean_payload_bytes,
                batch_size=config.batch_size,
            )
            decision = controller.decide(stream, config)
            config = decision.config
            breaker_state = decision.breaker_state
            decision_reason = decision.reason
            predicted = decision.predicted_gamma
            source = decision.prediction_source
    return report
