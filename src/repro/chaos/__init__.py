"""Chaos engineering for the simulated testbed.

``schedule`` builds composable, seeded fault schedules (broker flaps,
correlated loss bursts, delay spikes, staged escalations); ``campaign``
replays them phase by phase under a static or degraded-mode control
policy and emits a deterministic JSON campaign report.
"""

from .campaign import CampaignReport, PhaseReport, phase_seed, run_campaign
from .schedule import (
    ChaosAction,
    ChaosPhase,
    ChaosSchedule,
    baseline_phase,
    blackout_phase,
    broker_flap_phase,
    compose,
    delay_spike_phase,
    flap_burst_schedule,
    loss_burst_phase,
    staged_escalation_schedule,
)

__all__ = [
    "ChaosAction",
    "ChaosPhase",
    "ChaosSchedule",
    "baseline_phase",
    "loss_burst_phase",
    "delay_spike_phase",
    "broker_flap_phase",
    "blackout_phase",
    "compose",
    "flap_burst_schedule",
    "staged_escalation_schedule",
    "PhaseReport",
    "CampaignReport",
    "phase_seed",
    "run_campaign",
]
