"""Reproduction of "Learning to Reliably Deliver Streaming Data with
Apache Kafka" (Wu, Shang & Wolter, DSN 2020).

The package is organised bottom-up:

* :mod:`repro.simulation` — deterministic discrete-event kernel.
* :mod:`repro.network` — link, latency/loss models, TCP-like transport,
  NetEm-style fault injection and Fig. 9 traces.
* :mod:`repro.kafka` — producer/broker/consumer substrate and the Fig. 2
  message state machine.
* :mod:`repro.workloads` — arrival processes and the Table II streams.
* :mod:`repro.testbed` — experiment harness, sweeps and the Fig. 3
  training-data collection.
* :mod:`repro.ann` — from-scratch numpy neural-network framework.
* :mod:`repro.models` — the reliability predictor (Eq. 1), the paper's
  primary contribution.
* :mod:`repro.performance` — the HPCC'19 performance model (φ, μ).
* :mod:`repro.kpi` — weighted KPI (Eq. 2), configuration selection,
  dynamic configuration and Eq. 3 aggregation.
* :mod:`repro.analysis` — figure/table rendering for the benches.

Quick start::

    from repro.testbed import Scenario, run_experiment
    result = run_experiment(Scenario(message_bytes=200, loss_rate=0.13))
    print(result.p_loss, result.p_duplicate)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
