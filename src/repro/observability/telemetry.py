"""Per-run telemetry: configuration, live handles and the run manifest.

:class:`TelemetryConfig` is the *picklable description* of what to
capture — it travels into :func:`~repro.testbed.runner.run_many` worker
processes unchanged.  :class:`RunTelemetry` is the *live* object one
experiment builds from it: a metrics registry, optionally a tracer, and
the manifest assembled when the run finishes.

The manifest is the auditable identity of a run: the scenario fingerprint
and seed that define it, the code-version salt it was measured under, the
wall time it took, digests of its event trace and metrics, and the full
delivery accounting (Table I case census, consumer reconciliation totals,
kernel heap integrity) that the invariant checker replays a trace
against.  It is attached to ``ExperimentResult.manifest`` and excluded
from result equality, so bit-identical reruns still compare equal while
their wall times differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from .metrics import MetricsRegistry
from .trace import JsonlFileSink, RingBufferSink, Tracer, encode_record

__all__ = ["TelemetryConfig", "RunTelemetry", "MANIFEST_VERSION"]

#: Manifest schema version (bump on incompatible manifest changes).
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class TelemetryConfig:
    """What to capture during a run (picklable; safe to ship to workers).

    Attributes
    ----------
    trace:
        Capture the structured event trace (metrics are always captured
        once telemetry is on; the trace is the per-event firehose).
    trace_path:
        Write the trace as JSONL to this path instead of the in-memory
        ring buffer.  May contain ``{index}`` and ``{seed}`` placeholders,
        which :meth:`for_scenario` fills per grid slot under ``run_many``.
    ring_capacity:
        Bound on the in-memory buffer when no file path is given.
    check_invariants:
        Run the conservation-law checks at the end of the experiment and
        raise :class:`~repro.observability.invariants.InvariantViolation`
        on any breach.
    """

    trace: bool = True
    trace_path: Optional[str] = None
    ring_capacity: int = 200_000
    check_invariants: bool = True

    def for_scenario(self, index: int, seed: int) -> "TelemetryConfig":
        """Specialise the trace path for one slot of a scenario grid."""
        if self.trace_path is None:
            return self
        path = self.trace_path.format(index=index, seed=seed)
        if path == self.trace_path and index > 0:
            # No placeholder: suffix the slot index so parallel runs never
            # interleave writes into one file.
            path = f"{self.trace_path}.{index}"
        return replace(self, trace_path=path)


class RunTelemetry:
    """Live telemetry handles for exactly one experiment run."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.metrics = MetricsRegistry()
        self.tracer: Optional[Tracer] = None
        if self.config.trace:
            if self.config.trace_path is not None:
                sink = JsonlFileSink(self.config.trace_path)
            else:
                sink = RingBufferSink(self.config.ring_capacity)
            self.tracer = Tracer(sink)
        self.manifest: Optional[Dict[str, Any]] = None

    def build_manifest(
        self,
        *,
        scenario_fingerprint: str,
        seed: int,
        salt: str,
        produced: int,
        delivered_unique: int,
        lost: int,
        duplicated: int,
        duplicate_copies: int,
        persisted_but_unacked: int,
        case_counts: Dict[str, int],
        unresolved: int,
        events_processed: int,
        sim_duration_s: float,
        heap: Dict[str, Any],
        wall_time_s: float,
    ) -> Dict[str, Any]:
        """Assemble (and remember) the manifest for this run."""
        tracer = self.tracer
        trace_complete = False
        if tracer is not None:
            sink = tracer.sink
            trace_complete = not (isinstance(sink, RingBufferSink) and sink.dropped)
        self.manifest = {
            "kind": "manifest",
            "version": MANIFEST_VERSION,
            "scenario_fingerprint": scenario_fingerprint,
            "seed": seed,
            "salt": salt,
            "produced": produced,
            "delivered_unique": delivered_unique,
            "lost": lost,
            "duplicated": duplicated,
            "duplicate_copies": duplicate_copies,
            "persisted_but_unacked": persisted_but_unacked,
            "case_counts": dict(case_counts),
            "unresolved": unresolved,
            "events_processed": events_processed,
            "sim_duration_s": sim_duration_s,
            "trace_events": tracer.count if tracer is not None else 0,
            "trace_digest": tracer.digest() if tracer is not None else None,
            "trace_complete": trace_complete,
            "metrics": self.metrics.as_dict(),
            "metrics_digest": self.metrics.digest(),
            "heap": dict(heap),
            "wall_time_s": wall_time_s,
        }
        return self.manifest

    def finalize(self) -> None:
        """Write the manifest line (file sinks) and release resources."""
        tracer = self.tracer
        if tracer is None:
            return
        if isinstance(tracer.sink, JsonlFileSink) and self.manifest is not None:
            # The manifest rides in the same file as a trailing non-event
            # line; it is excluded from the digest it embeds.
            tracer.sink._handle.write(encode_record(self.manifest) + "\n")
        tracer.close()
