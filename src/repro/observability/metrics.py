"""A small metrics registry: counters, gauges and histograms.

Modelled on the Prometheus client primitives (and on how Kafka-ML treats
run metrics capture as a first-class subsystem): components increment
named counters, set gauges and observe histogram samples during a run,
and the registry serialises to one flat JSON document afterwards.

The registry is per-run — :class:`~repro.observability.telemetry.RunTelemetry`
owns one — so there is no global state and parallel worker processes each
build their own.  Like the tracer, components hold ``self._metrics =
None`` when telemetry is disabled and guard every touch, which keeps the
disabled-path cost at a pointer comparison.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

#: Default histogram buckets for latency-style observations (seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds (inclusive), cumulative in the exported
    form like Prometheus; an implicit ``+Inf`` bucket catches the rest.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        target = math.ceil(q * self.count)
        running = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            running += bucket_count
            if running >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max
        return self.max

    def as_dict(self) -> Dict[str, Any]:
        cumulative: List[int] = []
        running = 0
        for bucket_count in self.bucket_counts:
            running += bucket_count
            cumulative.append(running)
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{repr(bound): cumulative[i] for i, bound in enumerate(self.buckets)},
                "+Inf": cumulative[-1],
            },
        }


class MetricsRegistry:
    """Named metrics for one run; get-or-create semantics per name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: type, *args: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, default: Any = None) -> Any:
        """Shortcut: the scalar value of a counter/gauge, or ``default``."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        return metric.as_dict()

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Flat JSON-serialisable form, sorted by metric name."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def digest(self) -> str:
        """Stable digest of the registry contents (manifests embed this)."""
        encoded = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()
