"""Structured run traces: typed event records, sinks and digests.

A trace is an ordered stream of flat JSON records, one per observable
event of a run — producer sends and acknowledgements, application and
transport retries, Fig. 2 state-machine transitions, fault-injector
actions, Gilbert–Elliott channel flips and controller decisions.  Every
record carries the simulated time it happened at, so a trace is a
complete, replayable account of *which* transitions fired and *when*.

Two sinks are provided: a bounded in-memory ring buffer (the default, for
tests and interactive inspection) and a JSONL file sink (for ``repro
experiment --trace-file`` and post-hoc ``repro inspect``).  Both share one
canonical encoding; the tracer folds every encoded record into a running
BLAKE2b digest, so two runs emitted the same events in the same order if
and only if their digests match — the determinism regression check — and
any dropped or edited record is detectable after the fact.

Simulated time is the only clock that appears in a record; wall time is
deliberately excluded so digests are stable across hosts and runs.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "EventKind",
    "Tracer",
    "TraceSink",
    "RingBufferSink",
    "JsonlFileSink",
    "encode_record",
    "trace_digest",
    "load_trace_file",
]


class EventKind:
    """The trace-record vocabulary (the ``kind`` field of every record)."""

    SEND = "send"  #: producer included a record in a produce request
    ACK = "ack"  #: producer received a broker response for a record
    RETRY = "retry"  #: producer re-sent a batch (application-level retry)
    EXPIRED = "expired"  #: record abandoned past its delivery timeout T_o
    QUEUE_DROP = "queue_drop"  #: record rejected by a full accumulator
    PERCEIVED_LOST = "perceived_lost"  #: producer gave up on a record
    TRANSITION = "transition"  #: Fig. 2 state-machine edge applied
    APPEND = "append"  #: a copy of a record persisted on a broker log
    BROKER_DROP = "broker_drop"  #: a crashed broker silently dropped a request
    RETRANSMIT = "retransmit"  #: transport-level segment retransmission
    TRANSPORT_FAIL = "transport_fail"  #: a transport send gave up
    FAULT = "fault"  #: fault injector applied or cleared a treatment
    CHANNEL_STATE = "channel_state"  #: Gilbert–Elliott chain changed state
    CONTROLLER = "controller"  #: dynamic-configuration decision


def encode_record(record: Dict[str, Any]) -> str:
    """Canonical one-line JSON encoding of a trace record.

    Sorted keys and minimal separators: the same record always encodes to
    the same bytes, and ``json.loads(encode_record(r))`` round-trips floats
    exactly (Python emits shortest-repr floats).
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _new_digest() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=16)


def trace_digest(records: Iterable[Dict[str, Any]]) -> str:
    """Digest of an event stream, exactly as :class:`Tracer` computes it."""
    digest = _new_digest()
    for record in records:
        digest.update(encode_record(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


class TraceSink:
    """Receives encoded trace records; subclasses choose the storage."""

    def write(self, record: Dict[str, Any], line: str) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` records in memory.

    The bounded buffer means tracing a huge run cannot exhaust memory; the
    tracer's running digest and event count still cover every record ever
    emitted, so invariant checks that need the *full* stream should use a
    :class:`JsonlFileSink` when runs exceed the capacity.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._written = 0

    def write(self, record: Dict[str, Any], line: str) -> None:
        self._records.append(record)
        self._written += 1

    @property
    def records(self) -> List[Dict[str, Any]]:
        """The buffered records, oldest first."""
        return list(self._records)

    @property
    def dropped(self) -> bool:
        """Whether the buffer has wrapped (old records were evicted)."""
        return self._written > self.capacity


class JsonlFileSink(TraceSink):
    """Appends one canonical JSON line per record to a file."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")

    def write(self, record: Dict[str, Any], line: str) -> None:
        self._handle.write(line)
        self._handle.write("\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class Tracer:
    """Emits structured events into a sink while folding a running digest.

    Components never hold a tracer directly on their hot paths when
    telemetry is off — the convention throughout the codebase is a
    ``self._tracer = None`` attribute and a ``if tracer is not None`` guard
    at each emission site, so a disabled run pays one pointer comparison
    per site and nothing else.
    """

    __slots__ = ("_sink", "count", "_digest")

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self._sink = sink if sink is not None else RingBufferSink()
        self.count = 0
        self._digest = _new_digest()

    @property
    def sink(self) -> TraceSink:
        return self._sink

    def emit(self, kind: str, time: float, key: Optional[int] = None, **data: Any) -> None:
        """Record one event at simulated ``time``.

        ``key`` is the message key for per-message events; extra fields go
        into the record verbatim (they must be JSON-encodable).
        """
        record: Dict[str, Any] = {"kind": kind, "t": time}
        if key is not None:
            record["key"] = key
        if data:
            record.update(data)
        line = encode_record(record)
        self._digest.update(line.encode("utf-8"))
        self._digest.update(b"\n")
        self.count += 1
        self._sink.write(record, line)

    def digest(self) -> str:
        """Hex digest over every record emitted so far."""
        return self._digest.copy().hexdigest()

    def records(self) -> List[Dict[str, Any]]:
        """Buffered records when the sink is a ring buffer (else empty)."""
        if isinstance(self._sink, RingBufferSink):
            return self._sink.records
        return []

    def close(self) -> None:
        self._sink.close()


def load_trace_file(path: "str | Path") -> Tuple[List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Read a ``--trace-file`` JSONL file back into (events, manifest).

    The manifest is written by the experiment as a final ``kind:
    "manifest"`` line (it is not part of the event stream and does not
    contribute to the trace digest).  Returns ``(events, manifest_or_None)``.
    """
    events: List[Dict[str, Any]] = []
    manifest: Optional[Dict[str, Any]] = None
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON ({exc})"
                ) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"{path}:{line_number}: not a trace record")
            if record["kind"] == "manifest":
                manifest = record
            else:
                events.append(record)
    return events, manifest
