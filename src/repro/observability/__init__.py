"""Run observability: structured traces, metrics and invariant checks.

The reliability numbers this reproduction reports are counting arguments
over message-state transitions; this subsystem makes each run auditable
instead of a black box that prints one ``(P_l, P_d)`` pair:

* :mod:`repro.observability.trace` — typed, digestable event records with
  ring-buffer and JSONL-file sinks (zero overhead when disabled).
* :mod:`repro.observability.metrics` — per-run counters, gauges and
  histograms with a stable JSON export.
* :mod:`repro.observability.telemetry` — the picklable
  :class:`TelemetryConfig` that travels into worker processes and the
  live :class:`RunTelemetry` an experiment builds from it, including the
  run manifest (scenario fingerprint, seed, code-version salt, wall
  time, trace/metric digests, delivery accounting).
* :mod:`repro.observability.invariants` — conservation laws checked
  against manifests and replayed traces; ``repro inspect`` and the test
  suite build on :func:`verify_trace`.

Quick start::

    from repro.observability import TelemetryConfig
    from repro.testbed import Scenario, run_experiment

    result = run_experiment(Scenario(loss_rate=0.1), telemetry=TelemetryConfig())
    print(result.manifest["case_counts"], result.manifest["trace_digest"])
"""

from .invariants import (
    InvariantViolation,
    conservation_violations,
    replay_census,
    trace_violations,
    validate_metrics_document,
    verify_manifest,
    verify_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import MANIFEST_VERSION, RunTelemetry, TelemetryConfig
from .trace import (
    EventKind,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
    encode_record,
    load_trace_file,
    trace_digest,
)

__all__ = [
    "EventKind",
    "Tracer",
    "RingBufferSink",
    "JsonlFileSink",
    "encode_record",
    "trace_digest",
    "load_trace_file",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryConfig",
    "RunTelemetry",
    "MANIFEST_VERSION",
    "InvariantViolation",
    "conservation_violations",
    "trace_violations",
    "replay_census",
    "verify_manifest",
    "verify_trace",
    "validate_metrics_document",
]
