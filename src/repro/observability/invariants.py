"""Machine-checkable conservation laws over runs and their traces.

The paper's argument is a counting argument: every source message walks
the Fig. 2 state machine and lands in exactly one Table I case, and the
producer-view census must reconcile with the consumer-side ground truth.
This module makes those laws executable:

**Manifest-level conservation** (:func:`conservation_violations`) —
pure arithmetic over the run manifest:

* every message is classified: ``sum(case_counts) + unresolved == produced``
* reconciliation partitions the keys: ``delivered_unique + lost == produced``
* duplicates agree: ``case5 == duplicated`` (a message ends *Duplicated*
  iff its key appears more than once in the topic)
* losses agree up to the documented divergence:
  ``case2 + case3 == lost + persisted_but_unacked - unresolved``
  (producer-view losses that the cluster actually holds are counted
  delivered by reconciliation; never-resolved messages are lost keys)
* delivered agree: ``case1 + case4 + case5 + persisted_but_unacked ==
  delivered_unique``
* the kernel's event heap never drifted: ``heap.ok``

**Trace-level replay** (:func:`trace_violations`) — re-walks the recorded
transition events through fresh state machines and checks that

* every per-key transition sequence is legal (no ``IllegalTransition``),
* each recorded edge's source/target states match the machine,
* the replayed census equals the manifest's ``case_counts``, and
* the recomputed stream digest and event count match the manifest —
  which catches *any* dropped, duplicated or edited record even when the
  mutilated trace happens to stay state-machine-legal.

:func:`verify_trace` / :func:`verify_manifest` raise
:class:`InvariantViolation` carrying the full list of breaches.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..kafka.state import (
    DeliveryCase,
    IllegalTransition,
    MessageState,
    MessageStateMachine,
    Transition,
)
from .trace import EventKind, trace_digest

__all__ = [
    "InvariantViolation",
    "conservation_violations",
    "trace_violations",
    "verify_manifest",
    "verify_trace",
    "replay_census",
    "validate_metrics_document",
]


class InvariantViolation(RuntimeError):
    """One or more run invariants failed; ``violations`` lists them all."""

    def __init__(self, violations: List[str]) -> None:
        self.violations = list(violations)
        summary = "; ".join(self.violations[:3])
        extra = f" (+{len(self.violations) - 3} more)" if len(self.violations) > 3 else ""
        super().__init__(f"{len(self.violations)} invariant(s) violated: {summary}{extra}")


def _case_count(case_counts: Dict[str, int], case: DeliveryCase) -> int:
    return int(case_counts.get(f"case{case.value}", 0))


def conservation_violations(manifest: Dict[str, Any]) -> List[str]:
    """Check the manifest-level conservation laws; returns breach messages."""
    out: List[str] = []
    produced = int(manifest["produced"])
    delivered = int(manifest["delivered_unique"])
    lost = int(manifest["lost"])
    duplicated = int(manifest["duplicated"])
    pbu = int(manifest["persisted_but_unacked"])
    unresolved = int(manifest["unresolved"])
    cases = manifest["case_counts"]
    c1, c2, c3, c4, c5 = (_case_count(cases, case) for case in DeliveryCase)

    total_cases = c1 + c2 + c3 + c4 + c5
    if total_cases + unresolved != produced:
        out.append(
            f"census not exhaustive: {total_cases} classified + "
            f"{unresolved} unresolved != {produced} produced"
        )
    if delivered + lost != produced:
        out.append(
            f"reconciliation not a partition: {delivered} delivered + "
            f"{lost} lost != {produced} produced"
        )
    if c5 != duplicated:
        out.append(
            f"duplicate accounting diverged: case5={c5} != "
            f"{duplicated} duplicated keys"
        )
    if c2 + c3 != lost + pbu - unresolved:
        out.append(
            f"loss accounting diverged: case2+case3={c2 + c3} != "
            f"{lost} lost + {pbu} persisted-but-unacked - {unresolved} unresolved"
        )
    if c1 + c4 + c5 + pbu != delivered:
        out.append(
            f"delivery accounting diverged: case1+case4+case5+pbu="
            f"{c1 + c4 + c5 + pbu} != {delivered} delivered"
        )
    heap = manifest.get("heap") or {}
    if not heap.get("ok", False):
        out.append(f"event-heap bookkeeping drifted: {heap}")
    return out


def replay_census(
    events: List[Dict[str, Any]],
) -> Tuple[Dict[str, int], Dict[int, MessageStateMachine], List[str]]:
    """Re-walk the trace's transition records through fresh machines.

    Returns ``(case_counts, machines, problems)`` where ``problems`` lists
    illegal sequences and from/to mismatches found during the replay.
    """
    machines: Dict[int, MessageStateMachine] = {}
    problems: List[str] = []
    for index, record in enumerate(events):
        if record.get("kind") != EventKind.TRANSITION:
            continue
        key = record.get("key")
        if key is None:
            problems.append(f"event {index}: transition record without a key")
            continue
        machine = machines.get(key)
        if machine is None:
            machine = MessageStateMachine()
            machines[key] = machine
        source = machine.state.value
        recorded_source = record.get("from")
        if recorded_source is not None and recorded_source != source:
            problems.append(
                f"event {index}: key {key} recorded from={recorded_source!r} "
                f"but replay is in {source!r}"
            )
        try:
            transition = Transition(record["edge"])
        except (KeyError, ValueError):
            problems.append(f"event {index}: unknown edge {record.get('edge')!r}")
            continue
        try:
            machine.apply(transition)
        except IllegalTransition as exc:
            problems.append(f"event {index}: key {key} illegal replay: {exc}")
            continue
        recorded_target = record.get("to")
        if recorded_target is not None and recorded_target != machine.state.value:
            problems.append(
                f"event {index}: key {key} recorded to={recorded_target!r} "
                f"but replay reached {machine.state.value!r}"
            )
    case_counts: Dict[str, int] = {}
    for machine in machines.values():
        if machine.state is MessageState.READY:
            continue
        case = machine.classify_case()
        name = f"case{case.value}"
        case_counts[name] = case_counts.get(name, 0) + 1
    return case_counts, machines, problems


def trace_violations(
    events: List[Dict[str, Any]], manifest: Dict[str, Any]
) -> List[str]:
    """Replay ``events`` against ``manifest``; returns breach messages.

    Digest and event-count checks only apply when the manifest says the
    trace is complete (a wrapped ring buffer keeps digest/count over the
    *full* stream while only buffering a suffix).
    """
    out: List[str] = []
    if manifest.get("trace_complete", False):
        expected_events = int(manifest.get("trace_events", 0))
        if len(events) != expected_events:
            out.append(
                f"trace has {len(events)} events, manifest says {expected_events}"
            )
        expected_digest = manifest.get("trace_digest")
        if expected_digest is not None:
            actual = trace_digest(events)
            if actual != expected_digest:
                out.append(
                    f"trace digest mismatch: stream hashes to {actual}, "
                    f"manifest says {expected_digest}"
                )
        replayed, _, problems = replay_census(events)
        out.extend(problems)
        recorded = {
            name: count for name, count in manifest["case_counts"].items() if count
        }
        if replayed != recorded:
            out.append(
                f"replayed census {replayed} != recorded census {recorded}"
            )
    times = [record["t"] for record in events if "t" in record]
    if any(later < earlier for earlier, later in zip(times, times[1:])):
        out.append("trace times are not monotonically non-decreasing")
    return out


def verify_manifest(manifest: Dict[str, Any]) -> None:
    """Raise :class:`InvariantViolation` on any conservation breach."""
    violations = conservation_violations(manifest)
    if violations:
        raise InvariantViolation(violations)


def verify_trace(
    events: List[Dict[str, Any]], manifest: Optional[Dict[str, Any]]
) -> None:
    """Full check: conservation laws plus trace replay.  Raises on breach."""
    if manifest is None:
        raise InvariantViolation(["no manifest attached to the trace"])
    violations = conservation_violations(manifest) + trace_violations(events, manifest)
    if violations:
        raise InvariantViolation(violations)


# --------------------------------------------------------------- schemas

_MANIFEST_REQUIRED = {
    "version": int,
    "scenario_fingerprint": str,
    "seed": int,
    "salt": str,
    "produced": int,
    "delivered_unique": int,
    "lost": int,
    "duplicated": int,
    "duplicate_copies": int,
    "persisted_but_unacked": int,
    "case_counts": dict,
    "unresolved": int,
    "events_processed": int,
    "sim_duration_s": (int, float),
    "trace_events": int,
    "metrics_digest": str,
    "heap": dict,
    "wall_time_s": (int, float),
}

_METRIC_TYPES = {"counter", "gauge", "histogram"}


def validate_metrics_document(doc: Any) -> List[str]:
    """Schema-check a ``repro experiment --metrics`` JSON document.

    The document is ``{"manifest": {...}, "metrics": {...}}``.  Returns a
    list of problems (empty means schema-valid).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("missing 'manifest' object")
    else:
        for name, expected in _MANIFEST_REQUIRED.items():
            if name not in manifest:
                problems.append(f"manifest missing field {name!r}")
            elif not isinstance(manifest[name], expected):
                problems.append(
                    f"manifest field {name!r} has type "
                    f"{type(manifest[name]).__name__}"
                )
        cases = manifest.get("case_counts")
        if isinstance(cases, dict):
            for case_name, count in cases.items():
                if case_name not in {f"case{c.value}" for c in DeliveryCase}:
                    problems.append(f"unknown delivery case {case_name!r}")
                elif not isinstance(count, int) or count < 0:
                    problems.append(f"case count {case_name!r} is not a non-negative int")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing 'metrics' object")
    else:
        for name, body in metrics.items():
            if not isinstance(body, dict) or body.get("type") not in _METRIC_TYPES:
                problems.append(f"metric {name!r} has no valid type")
            elif "value" not in body and body.get("type") != "histogram":
                problems.append(f"metric {name!r} has no value")
    return problems
