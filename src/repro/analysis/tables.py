"""Monospace tables for bench output (paper-vs-measured reporting)."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "comparison_table"]


def render_table(rows: Sequence[Sequence[str]], title: Optional[str] = None) -> str:
    """Render rows (first row = header) as an aligned text table."""
    if not rows:
        raise ValueError("no rows to render")
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(str(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    for index, row in enumerate(rows):
        padded = [str(cell).ljust(widths[col]) for col, cell in enumerate(row)]
        lines.append(" | ".join(padded))
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)


def comparison_table(
    title: str,
    entries: Sequence[tuple],
) -> str:
    """Render (label, paper_claim, measured, verdict) comparison rows.

    The standard bench epilogue: every reproduction target printed beside
    what we measured and whether the shape criterion held.
    """
    rows: List[List[str]] = [["criterion", "paper", "measured", "verdict"]]
    for label, paper, measured, holds in entries:
        rows.append(
            [
                str(label),
                str(paper),
                str(measured),
                "OK" if holds else "DIVERGES",
            ]
        )
    return render_table(rows, title=title)
