"""Result presentation: figure series, text tables and ASCII plots."""

from .export import results_to_json, series_to_csv, series_to_json
from .plots import ascii_plot
from .series import FigureSeries
from .tables import comparison_table, render_table

__all__ = [
    "FigureSeries",
    "ascii_plot",
    "render_table",
    "comparison_table",
    "series_to_csv",
    "series_to_json",
    "results_to_json",
]
