"""ASCII line plots for terminal inspection of figure series.

Keeps the reproduction self-contained: no plotting library is available
offline, and the bench output should still let a reader eyeball the shape
of each reproduced figure.
"""

from __future__ import annotations

from typing import List, Optional

from .series import FigureSeries

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: FigureSeries,
    width: int = 72,
    height: int = 18,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render every curve of ``series`` into one character grid."""
    if width < 16 or height < 6:
        raise ValueError("plot too small to be legible")
    if not series.x or not series.curves:
        raise ValueError("nothing to plot")
    xs = series.x
    all_y = [value for curve in series.curves.values() for value in curve]
    lo = min(all_y) if y_min is None else y_min
    hi = max(all_y) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for curve_index, (label, values) in enumerate(series.curves.items()):
        marker = _MARKERS[curve_index % len(_MARKERS)]
        for x_value, y_value in zip(xs, values):
            column = int(round((x_value - x_lo) / x_span * (width - 1)))
            clipped = min(max(y_value, lo), hi)
            row = int(round((clipped - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][column] = marker
    lines: List[str] = [f"{series.title}"]
    for row_index, row in enumerate(grid):
        y_axis_value = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"{y_axis_value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{x_lo:<12g}{series.x_label:^{max(0, width - 24)}}{x_hi:>12g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(series.curves)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
