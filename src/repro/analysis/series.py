"""Figure-series containers: the x-axis and named curves of one figure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["FigureSeries"]


@dataclass
class FigureSeries:
    """The data behind one paper figure.

    Attributes
    ----------
    title:
        Figure caption ("Fig. 4: P_l vs message size").
    x_label / y_label:
        Axis labels.
    x:
        Shared x values.
    curves:
        Curve label → y values (len must match ``x``).
    """

    title: str
    x_label: str
    y_label: str
    x: List[float] = field(default_factory=list)
    curves: Dict[str, List[float]] = field(default_factory=dict)

    def add_curve(self, label: str, values: Sequence[float]) -> None:
        """Attach a curve; length must match the x axis."""
        values = list(values)
        if len(values) != len(self.x):
            raise ValueError(
                f"curve {label!r} has {len(values)} points for {len(self.x)} x values"
            )
        self.curves[label] = values

    def curve(self, label: str) -> List[float]:
        """Fetch a curve by label."""
        return self.curves[label]

    def crossover(self, label_a: str, label_b: str) -> Optional[float]:
        """x position where curve a crosses curve b (linear interpolation).

        Returns None when the curves never cross.
        """
        a, b = self.curves[label_a], self.curves[label_b]
        for i in range(1, len(self.x)):
            d0 = a[i - 1] - b[i - 1]
            d1 = a[i] - b[i]
            if d0 == 0.0:
                return float(self.x[i - 1])
            if d0 * d1 < 0:
                fraction = abs(d0) / (abs(d0) + abs(d1))
                return float(self.x[i - 1] + fraction * (self.x[i] - self.x[i - 1]))
        return None

    def to_rows(self) -> List[List[str]]:
        """Tabular form: header row then one row per x value."""
        header = [self.x_label, *self.curves.keys()]
        rows = [header]
        for index, x_value in enumerate(self.x):
            row = [f"{x_value:g}"]
            row.extend(f"{self.curves[label][index]:.4f}" for label in self.curves)
            rows.append(row)
        return rows
