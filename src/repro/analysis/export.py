"""Export figure series and results for external plotting tools.

The benches render ASCII, but downstream users typically want the raw
series for matplotlib/gnuplot; these helpers write CSV and JSON forms.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from ..testbed.results import ExperimentResult
from .series import FigureSeries

__all__ = ["series_to_csv", "series_to_json", "results_to_json"]


def series_to_csv(series: FigureSeries, path: "str | Path") -> Path:
    """Write one figure's data as CSV (x column + one column per curve)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for row in series.to_rows():
            writer.writerow(row)
    return path


def series_to_json(series: FigureSeries, path: "str | Path") -> Path:
    """Write one figure's data and axis metadata as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "title": series.title,
        "x_label": series.x_label,
        "y_label": series.y_label,
        "x": list(series.x),
        "curves": {label: list(values) for label, values in series.curves.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def results_to_json(results: Iterable[ExperimentResult], path: "str | Path") -> Path:
    """Write a list of experiment results as a JSON array."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            [result.to_dict() for result in results], indent=2, sort_keys=True
        )
    )
    return path
