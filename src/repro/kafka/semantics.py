"""Delivery semantics offered by the simulated Kafka producer.

The paper evaluates the two semantics Kafka users choose between in
practice (Section III-B): *at-most-once* (``acks=0``, no retries — fire and
forget) and *at-least-once* (``acks≥1`` with retries until the delivery
timeout).  We additionally implement *exactly-once* via an idempotent
producer (broker-side deduplication by producer id and sequence number) —
the paper discusses it as the costly alternative relied on by banking
workloads but does not evaluate it; we include it as the natural extension
and ablate its overhead in a benchmark.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["DeliverySemantics"]


class DeliverySemantics(Enum):
    """How hard the producer tries to deliver each message."""

    #: ``acks=0``: send once, never wait for or react to broker responses.
    AT_MOST_ONCE = "at_most_once"

    #: ``acks=1`` with retries: resend until acknowledged or the delivery
    #: timeout expires; duplicates are possible.
    AT_LEAST_ONCE = "at_least_once"

    #: At-least-once plus an idempotent producer: broker deduplicates
    #: retries, so every message is persisted exactly once (extension).
    EXACTLY_ONCE = "exactly_once"

    @property
    def waits_for_ack(self) -> bool:
        """Whether the producer waits for broker acknowledgements."""
        return self is not DeliverySemantics.AT_MOST_ONCE

    @property
    def retries_allowed(self) -> bool:
        """Whether application-level retries are permitted."""
        return self is not DeliverySemantics.AT_MOST_ONCE

    @property
    def idempotent(self) -> bool:
        """Whether the broker deduplicates producer retries."""
        return self is DeliverySemantics.EXACTLY_ONCE

    @classmethod
    def parse(cls, value: "str | DeliverySemantics") -> "DeliverySemantics":
        """Accept enum instances or their string values."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown delivery semantics {value!r}; expected one of: {names}"
            ) from None
