"""Broker nodes: produce-request handling and log appends.

A broker serialises request processing the way a real Kafka broker's
request handler threads + log appends do: each request costs a fixed
processing time plus size-proportional append time, queued FIFO.  Brokers
can be crashed and restored by the fault injector (the paper's future-work
failure mode); a crashed broker silently drops requests, which the
producer experiences as a request timeout.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..observability.trace import EventKind
from ..simulation.simulator import Simulator
from .config import BrokerConfig
from .message import ProducerRecord
from .partition import Partition

__all__ = ["ProduceRequest", "ProduceResponse", "Broker"]

_request_ids = itertools.count()


@dataclass
class ProduceRequest:
    """A batch of records bound for one partition.

    Attributes
    ----------
    records:
        The batched producer records, in send order.
    partition:
        Destination partition (leader routing happens at the cluster).
    require_acks:
        Whether the broker must send a :class:`ProduceResponse`.
    producer_id / base_sequence:
        Idempotent-producer identity; ``None`` for non-idempotent sends.
    wire_bytes:
        Total request size on the wire (payloads + protocol overhead).
    attempt:
        Application-level retry attempt (0 = first send).
    """

    records: List[ProducerRecord]
    partition: Partition
    require_acks: bool
    wire_bytes: int
    producer_id: Optional[int] = None
    base_sequence: Optional[int] = None
    attempt: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a produce request needs at least one record")
        if self.wire_bytes <= 0:
            raise ValueError("wire_bytes must be positive")

    @property
    def payload_bytes(self) -> int:
        """Application payload bytes across the batch."""
        return sum(record.payload_bytes for record in self.records)


@dataclass
class ProduceResponse:
    """Broker acknowledgement for one produce request."""

    request_id: int
    partition_name: str
    base_offset: Optional[int]
    timestamp: float
    appended: int


class Broker:
    """A single broker node.

    Parameters
    ----------
    sim:
        Shared simulator.
    broker_id:
        Stable identifier, e.g. ``"broker-0"``.
    config:
        Timing and replication parameters.
    """

    def __init__(self, sim: Simulator, broker_id: str, config: Optional[BrokerConfig] = None) -> None:
        self._sim = sim
        self.broker_id = broker_id
        self.config = config if config is not None else BrokerConfig()
        self.available = True
        self._busy_until = 0.0
        self.requests_handled = 0
        self.requests_dropped = 0
        self._append_listeners: List[Callable[[ProducerRecord, Partition, int], None]] = []
        self._tracer = None
        self._metrics = None

    def attach_telemetry(self, telemetry) -> None:
        """Attach run telemetry after construction (the cluster builds us)."""
        self._tracer = telemetry.tracer
        self._metrics = telemetry.metrics

    def add_append_listener(
        self, callback: Callable[[ProducerRecord, Partition, int], None]
    ) -> None:
        """Register ``callback(record, partition, offset)`` per append."""
        self._append_listeners.append(callback)

    def service_time(self, request: ProduceRequest) -> float:
        """Processing + append latency for ``request``."""
        time = self.config.processing_time_s
        time += request.payload_bytes / self.config.append_bytes_per_s
        if request.require_acks and self.config.replication_factor > 1:
            time += self.config.acks_all_extra_s
        return time

    def handle_produce(
        self,
        request: ProduceRequest,
        on_done: Optional[Callable[[ProduceResponse], None]] = None,
    ) -> None:
        """Accept ``request``; when processed, append and invoke ``on_done``.

        A crashed broker drops the request silently (the producer sees a
        timeout, exactly like a dead TCP peer).
        """
        if not self.available:
            self.requests_dropped += 1
            self._record_drop(request, phase="queued")
            return
        now = self._sim.now
        finish = max(now, self._busy_until) + self.service_time(request)
        self._busy_until = finish
        self._sim.schedule_at(finish, self._complete, request, on_done)

    def _complete(
        self,
        request: ProduceRequest,
        on_done: Optional[Callable[[ProduceResponse], None]],
    ) -> None:
        if not self.available:
            # Crashed while the request was being processed.
            self.requests_dropped += 1
            self._record_drop(request, phase="processing")
            return
        self.requests_handled += 1
        base_offset: Optional[int] = None
        appended = 0
        for position, record in enumerate(request.records):
            sequence = (
                request.base_sequence + position
                if request.base_sequence is not None
                else None
            )
            offset = request.partition.append(
                key=record.key,
                payload_bytes=record.payload_bytes,
                timestamp=self._sim.now,
                producer_id=request.producer_id,
                sequence=sequence,
            )
            if offset is None:
                continue  # idempotence fencing discarded a duplicate
            appended += 1
            if base_offset is None:
                base_offset = offset
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.APPEND,
                    self._sim.now,
                    key=record.key,
                    broker=self.broker_id,
                    offset=offset,
                )
            if self._metrics is not None:
                self._metrics.counter("broker.appends").inc()
            for listener in self._append_listeners:
                listener(record, request.partition, offset)
        if on_done is not None:
            on_done(
                ProduceResponse(
                    request_id=request.request_id,
                    partition_name=request.partition.name,
                    base_offset=base_offset,
                    timestamp=self._sim.now,
                    appended=appended,
                )
            )

    def _record_drop(self, request: ProduceRequest, phase: str) -> None:
        """Telemetry for a silent drop by a crashed broker."""
        if self._metrics is not None:
            self._metrics.counter("broker.requests_dropped").inc()
        if self._tracer is not None:
            self._tracer.emit(
                EventKind.BROKER_DROP,
                self._sim.now,
                broker=self.broker_id,
                phase=phase,
                records=len(request.records),
            )

    def crash(self) -> None:
        """Take the broker down; queued and future requests are dropped."""
        self.available = False

    def restore(self) -> None:
        """Bring the broker back up."""
        self.available = True
        self._busy_until = self._sim.now
