"""Consumer groups: partition assignment, offset commits, rebalancing.

The paper's pipeline (Fig. 1) has downstream stream processors reading
via the consumer API; a production-shaped substrate therefore needs the
group protocol: members of a group split a topic's partitions among
themselves (range assignment), track positions, commit offsets to the
cluster, and rebalance when membership changes.  Consumption is
at-least-once: after a rebalance or restart a member resumes from the
last *committed* offset, so records consumed-but-uncommitted are
redelivered — the consumer-side mirror of the producer duplicates the
paper studies.
"""

from __future__ import annotations

from typing import Dict, List

from .cluster import KafkaCluster
from .log import LogEntry
from .topic import Topic

__all__ = ["GroupMember", "ConsumerGroup"]


class GroupMember:
    """One consumer process inside a group."""

    def __init__(self, group: "ConsumerGroup", member_id: str) -> None:
        self._group = group
        self.member_id = member_id
        self.assigned_partitions: List[int] = []
        self._positions: Dict[int, int] = {}
        self.generation = -1

    def _sync(self) -> None:
        """Adopt the group's current assignment (post-rebalance)."""
        if self.generation == self._group.generation:
            return
        self.generation = self._group.generation
        self.assigned_partitions = self._group.assignment.get(self.member_id, [])
        committed = self._group.committed_offsets()
        self._positions = {
            partition: committed.get(partition, 0)
            for partition in self.assigned_partitions
        }

    @property
    def positions(self) -> Dict[int, int]:
        """Current fetch position per assigned partition."""
        self._sync()
        return dict(self._positions)

    def poll(self, max_records: int = 100) -> List[LogEntry]:
        """Fetch the next batch from the member's assigned partitions."""
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self._sync()
        out: List[LogEntry] = []
        budget = max_records
        for index in self.assigned_partitions:
            if budget <= 0:
                break
            partition = self._group.topic.partitions[index]
            entries = partition.read(
                start_offset=self._positions[index], max_entries=budget
            )
            if entries:
                self._positions[index] = entries[-1].offset + 1
                out.extend(entries)
                budget -= len(entries)
        return out

    def commit(self) -> None:
        """Commit current positions to the cluster's offset store."""
        self._sync()
        self._group.commit(self.member_id, dict(self._positions))

    def seek(self, partition_index: int, offset: int) -> None:
        """Move the fetch position of one assigned partition."""
        self._sync()
        if partition_index not in self._positions:
            raise ValueError(
                f"partition {partition_index} is not assigned to {self.member_id}"
            )
        if offset < 0:
            raise ValueError("offset must be >= 0")
        self._positions[partition_index] = offset


class ConsumerGroup:
    """A named consumer group over one topic.

    Uses range assignment (Kafka's default): partitions are split into
    contiguous ranges across members sorted by id.  Every membership
    change bumps the generation and reassigns; members detect the new
    generation on their next operation and resume from committed offsets.
    """

    def __init__(self, cluster: KafkaCluster, topic: "Topic | str", group_id: str) -> None:
        if not group_id:
            raise ValueError("group_id must be non-empty")
        self.cluster = cluster
        self.topic = cluster.topic(topic) if isinstance(topic, str) else topic
        self.group_id = group_id
        self.members: Dict[str, GroupMember] = {}
        self.assignment: Dict[str, List[int]] = {}
        self.generation = 0
        # The cluster-side offset store (the __consumer_offsets analogue).
        self._offsets: Dict[int, int] = {}

    # -------------------------------------------------------- membership

    def join(self, member_id: str) -> GroupMember:
        """Add a member and rebalance; returns the member handle."""
        if member_id in self.members:
            raise ValueError(f"member {member_id!r} already joined")
        member = GroupMember(self, member_id)
        self.members[member_id] = member
        self._rebalance()
        return member

    def leave(self, member_id: str) -> None:
        """Remove a member and rebalance the remainder."""
        if member_id not in self.members:
            raise KeyError(f"no such member: {member_id!r}")
        del self.members[member_id]
        self._rebalance()

    def _rebalance(self) -> None:
        self.generation += 1
        self.assignment = {}
        member_ids = sorted(self.members)
        if not member_ids:
            return
        count = self.topic.partition_count
        per_member = count // len(member_ids)
        remainder = count % len(member_ids)
        cursor = 0
        for rank, member_id in enumerate(member_ids):
            take = per_member + (1 if rank < remainder else 0)
            self.assignment[member_id] = list(range(cursor, cursor + take))
            cursor += take

    # ------------------------------------------------------------ offsets

    def committed_offsets(self) -> Dict[int, int]:
        """Committed offset per partition (0 when never committed)."""
        return dict(self._offsets)

    def commit(self, member_id: str, positions: Dict[int, int]) -> None:
        """Store a member's positions; only assigned partitions commit."""
        assigned = set(self.assignment.get(member_id, []))
        for partition, offset in positions.items():
            if partition in assigned:
                self._offsets[partition] = max(
                    offset, self._offsets.get(partition, 0)
                )

    # ------------------------------------------------------------- lag

    def total_lag(self) -> int:
        """Messages appended but not yet committed, across partitions."""
        lag = 0
        for partition in self.topic.partitions:
            committed = self._offsets.get(partition.index, 0)
            lag += max(0, partition.leader_log.next_offset - committed)
        return lag
