"""Simulated Apache Kafka substrate.

Implements the data path the paper measures: producer (polling, batching,
delivery semantics, retries, expiry), cluster (brokers, topics, partitions,
append-only logs, replication and leader election), consumer-side
reconciliation, and the Fig. 2 / Table I message state machine.
"""

from .broker import Broker, ProduceRequest, ProduceResponse
from .cluster import KafkaCluster
from .config import (
    BrokerConfig,
    DEFAULT_PRODUCER_CONFIG,
    HardwareProfile,
    ProducerConfig,
)
from .consumer import KafkaConsumer, ReconciliationReport, reconcile
from .group import ConsumerGroup, GroupMember
from .log import LogEntry, LogSegment, PartitionLog
from .message import ProducerRecord, RecordMetadata, reset_key_counter
from .partition import Partition
from .producer import KafkaProducer, ProducerListener, ProducerStats
from .semantics import DeliverySemantics
from .state import (
    DeliveryCase,
    IllegalTransition,
    MessageState,
    MessageStateMachine,
    Transition,
)
from .topic import KeyHashPartitioner, Partitioner, RoundRobinPartitioner, Topic

__all__ = [
    "Broker",
    "ProduceRequest",
    "ProduceResponse",
    "KafkaCluster",
    "BrokerConfig",
    "DEFAULT_PRODUCER_CONFIG",
    "HardwareProfile",
    "ProducerConfig",
    "KafkaConsumer",
    "ConsumerGroup",
    "GroupMember",
    "ReconciliationReport",
    "reconcile",
    "LogEntry",
    "LogSegment",
    "PartitionLog",
    "ProducerRecord",
    "RecordMetadata",
    "reset_key_counter",
    "Partition",
    "KafkaProducer",
    "ProducerListener",
    "ProducerStats",
    "DeliverySemantics",
    "DeliveryCase",
    "IllegalTransition",
    "MessageState",
    "MessageStateMachine",
    "Transition",
    "KeyHashPartitioner",
    "Partitioner",
    "RoundRobinPartitioner",
    "Topic",
]
