"""Append-only partition log.

The log stores :class:`LogEntry` records — the unique key, the payload
size and append timestamp — segmented the way Kafka rolls log segments.
Retries of an already-persisted message append again (Kafka brokers do not
deduplicate non-idempotent producers), which is exactly how the paper's
duplicate failures materialise in the topic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = ["LogEntry", "LogSegment", "PartitionLog"]


@dataclass(frozen=True)
class LogEntry:
    """One persisted record."""

    offset: int
    key: int
    payload_bytes: int
    timestamp: float
    producer_id: Optional[int] = None
    sequence: Optional[int] = None


class LogSegment:
    """A contiguous run of offsets, mirroring a Kafka segment file."""

    def __init__(self, base_offset: int) -> None:
        self.base_offset = base_offset
        self.entries: List[LogEntry] = []

    @property
    def next_offset(self) -> int:
        """The offset the next appended entry will take."""
        return self.base_offset + len(self.entries)

    @property
    def size_bytes(self) -> int:
        """Total payload bytes stored in this segment."""
        return sum(entry.payload_bytes for entry in self.entries)

    def append(self, entry: LogEntry) -> None:
        """Append ``entry``; offsets must be contiguous."""
        if entry.offset != self.next_offset:
            raise ValueError(
                f"offset {entry.offset} does not follow {self.next_offset - 1}"
            )
        self.entries.append(entry)


class PartitionLog:
    """The append-only log backing one partition.

    Parameters
    ----------
    segment_max_entries:
        Entries per segment before rolling a new one.
    """

    def __init__(self, segment_max_entries: int = 4096) -> None:
        if segment_max_entries < 1:
            raise ValueError("segment_max_entries must be >= 1")
        self._segment_max_entries = segment_max_entries
        self._segments: List[LogSegment] = [LogSegment(0)]
        # Idempotent-producer state: highest sequence seen per producer id.
        self._producer_sequences: Dict[int, int] = {}

    @property
    def start_offset(self) -> int:
        """Oldest offset still retained (log start offset)."""
        return self._segments[0].base_offset

    @property
    def next_offset(self) -> int:
        """Log end offset."""
        return self._segments[-1].next_offset

    @property
    def segment_count(self) -> int:
        """Number of rolled segments (including the active one)."""
        return len(self._segments)

    def __len__(self) -> int:
        return self.next_offset

    def append(
        self,
        key: int,
        payload_bytes: int,
        timestamp: float,
        producer_id: Optional[int] = None,
        sequence: Optional[int] = None,
    ) -> Optional[int]:
        """Append a record and return its offset.

        When ``producer_id``/``sequence`` are given (idempotent producer),
        a duplicate or out-of-date sequence is silently discarded and
        ``None`` is returned — Kafka's exactly-once fencing.
        """
        if producer_id is not None and sequence is not None:
            last = self._producer_sequences.get(producer_id)
            if last is not None and sequence <= last:
                return None
            self._producer_sequences[producer_id] = sequence
        segment = self._segments[-1]
        if len(segment.entries) >= self._segment_max_entries:
            segment = LogSegment(segment.next_offset)
            self._segments.append(segment)
        offset = segment.next_offset
        segment.append(
            LogEntry(
                offset=offset,
                key=key,
                payload_bytes=payload_bytes,
                timestamp=timestamp,
                producer_id=producer_id,
                sequence=sequence,
            )
        )
        return offset

    def read(self, start_offset: int = 0, max_entries: Optional[int] = None) -> List[LogEntry]:
        """Read entries from ``start_offset`` (inclusive), oldest first."""
        if start_offset < 0:
            raise ValueError("start_offset must be >= 0")
        out: List[LogEntry] = []
        for segment in self._segments:
            if segment.next_offset <= start_offset:
                continue
            for entry in segment.entries:
                if entry.offset < start_offset:
                    continue
                out.append(entry)
                if max_entries is not None and len(out) >= max_entries:
                    return out
        return out

    def __iter__(self) -> Iterator[LogEntry]:
        for segment in self._segments:
            yield from segment.entries

    def retain(
        self,
        max_bytes: Optional[int] = None,
        min_timestamp: Optional[float] = None,
    ) -> int:
        """Kafka-style retention: delete whole closed segments.

        Drops the oldest segments while (a) total payload bytes exceed
        ``max_bytes`` or (b) a segment's newest entry is older than
        ``min_timestamp``.  The active (last) segment is never deleted.
        Returns the number of entries removed.
        """
        removed = 0
        while len(self._segments) > 1:
            head = self._segments[0]
            over_bytes = (
                max_bytes is not None
                and sum(seg.size_bytes for seg in self._segments) > max_bytes
            )
            too_old = (
                min_timestamp is not None
                and head.entries
                and head.entries[-1].timestamp < min_timestamp
            )
            if not (over_bytes or too_old):
                break
            removed += len(head.entries)
            self._segments.pop(0)
        return removed

    def key_counts(self) -> Dict[int, int]:
        """Occurrences of each unique key (the reconciliation primitive)."""
        counts: Dict[int, int] = {}
        for entry in self:
            counts[entry.key] = counts.get(entry.key, 0) + 1
        return counts
