"""The Kafka cluster: brokers, topics and request routing.

The testbed's cluster is three broker containers on one bridge network.
Here a :class:`KafkaCluster` owns the broker objects and topic metadata and
receives produce requests from the producer's network channel, routing each
to the current leader of its destination partition.  Broker crashes
trigger leader election among the replicas, reproducing the
broker-failure scenario the paper marks as future work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..simulation.simulator import Simulator
from .broker import Broker, ProduceRequest, ProduceResponse
from .config import BrokerConfig
from .message import ProducerRecord
from .partition import Partition
from .topic import Partitioner, Topic

__all__ = ["KafkaCluster"]


class KafkaCluster:
    """A set of brokers plus topic metadata.

    Parameters
    ----------
    sim:
        Shared simulator.
    broker_count:
        Number of broker nodes (the paper uses three).
    broker_config:
        Shared broker tuning.
    """

    def __init__(
        self,
        sim: Simulator,
        broker_count: int = 3,
        broker_config: Optional[BrokerConfig] = None,
    ) -> None:
        if broker_count < 1:
            raise ValueError("broker_count must be >= 1")
        self._sim = sim
        self.broker_config = broker_config if broker_config is not None else BrokerConfig()
        self.brokers: Dict[str, Broker] = {
            f"broker-{index}": Broker(sim, f"broker-{index}", self.broker_config)
            for index in range(broker_count)
        }
        self.topics: Dict[str, Topic] = {}
        self._append_listeners: List[Callable[[ProducerRecord, Partition, int], None]] = []

    @property
    def broker_ids(self) -> List[str]:
        """Stable, ordered broker identifiers."""
        return sorted(self.brokers)

    def create_topic(
        self,
        name: str,
        partitions: int = 3,
        partitioner: Optional[Partitioner] = None,
    ) -> Topic:
        """Create a topic with leaders assigned round-robin across brokers."""
        if name in self.topics:
            raise ValueError(f"topic {name!r} already exists")
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        broker_ids = self.broker_ids
        replication = min(self.broker_config.replication_factor, len(broker_ids))
        partition_objects = []
        for index in range(partitions):
            leader = broker_ids[index % len(broker_ids)]
            replicas = [
                broker_ids[(index + shift) % len(broker_ids)]
                for shift in range(replication)
            ]
            partition_objects.append(
                Partition(name, index, leader, replicas)
            )
        topic = Topic(name, partition_objects, partitioner)
        self.topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        """Look up a topic by name."""
        try:
            return self.topics[name]
        except KeyError:
            raise KeyError(f"no such topic: {name!r}") from None

    def add_append_listener(
        self, callback: Callable[[ProducerRecord, Partition, int], None]
    ) -> None:
        """Register an instrumentation callback for every append."""
        self._append_listeners.append(callback)
        for broker in self.brokers.values():
            broker.add_append_listener(callback)

    def leader_for(self, partition: Partition) -> Broker:
        """The broker currently leading ``partition``."""
        return self.brokers[partition.leader_broker_id]

    def handle_produce(
        self,
        request: ProduceRequest,
        on_done: Optional[Callable[[ProduceResponse], None]] = None,
    ) -> None:
        """Route a produce request to its partition leader."""
        self.leader_for(request.partition).handle_produce(request, on_done)

    # ------------------------------------------------------ fault handling

    def set_broker_availability(self, broker_id: str, available: bool) -> None:
        """Fault-injector hook: crash or restore a broker.

        Crashing a leader triggers election of the first available
        follower; partitions with no live replica become unavailable.
        """
        broker = self.brokers.get(broker_id)
        if broker is None:
            raise KeyError(f"no such broker: {broker_id!r}")
        if available:
            broker.restore()
            return
        broker.crash()
        for topic in self.topics.values():
            for partition in topic.partitions:
                if partition.leader_broker_id != broker_id:
                    continue
                candidates = [
                    replica
                    for replica in partition.replica_logs
                    if self.brokers.get(replica, broker).available
                ]
                if candidates:
                    partition.elect_new_leader(candidates[0])
