"""Configuration surfaces of the simulated Kafka deployment.

:class:`ProducerConfig` carries exactly the tunables the paper selects as
prediction features (Section III-D) plus the secondary knobs (retries,
backoff, in-flight window) the paper holds at Kafka-like defaults.
:class:`HardwareProfile` pins the fixed machine resources the paper assumes
("we study how to obtain the best configuration in a scenario with a given
machine of fixed resources"); all reliability phenomena are driven by the
*ratios* between these constants, so they are expressed in a scaled-down
unit system that keeps discrete-event counts tractable (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .semantics import DeliverySemantics

__all__ = ["ProducerConfig", "BrokerConfig", "HardwareProfile", "DEFAULT_PRODUCER_CONFIG"]


@dataclass(frozen=True)
class ProducerConfig:
    """Producer tunables (the ``Confs`` of paper Eq. 1).

    Attributes
    ----------
    semantics:
        Delivery semantics (feature *e*); maps to ``acks``/``retries``.
    batch_size:
        ``B``, messages accumulated per produce request (feature *f*).
    polling_interval_s:
        ``δ``, seconds between polls of the upstream source (feature *g*);
        0 ingests as fast as the source and I/O allow.
    message_timeout_s:
        ``T_o``, the total delivery timeout per message including retries
        (feature *h*; Kafka's ``delivery.timeout.ms``).
    request_timeout_s:
        Time to wait for a broker response before an application-level
        retry (Kafka's ``request.timeout.ms``).
    retry_backoff_s:
        Pause before each application-level retry.
    max_retries:
        τ_r bound; ignored under at-most-once.
    max_in_flight:
        Bound on unacknowledged produce requests (back-pressure window);
        only effective when the semantics waits for acks.
    linger_s:
        Maximum time a partial batch may wait for more messages before
        being sent anyway (Kafka's ``linger.ms``).
    queue_capacity:
        Bound on the producer's accumulator queue; ``None`` = unbounded.
    """

    semantics: DeliverySemantics = DeliverySemantics.AT_LEAST_ONCE
    batch_size: int = 1
    polling_interval_s: float = 0.0
    message_timeout_s: float = 3.0
    request_timeout_s: float = 2.5
    retry_backoff_s: float = 0.05
    max_retries: int = 10
    max_in_flight: int = 5
    linger_s: float = 0.01
    queue_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.polling_interval_s < 0:
            raise ValueError("polling_interval_s must be >= 0")
        if self.message_timeout_s <= 0:
            raise ValueError("message_timeout_s must be positive")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.linger_s < 0:
            raise ValueError("linger_s must be >= 0")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 or None")

    @property
    def effective_retries(self) -> int:
        """Retries actually performed given the semantics."""
        return self.max_retries if self.semantics.retries_allowed else 0

    def with_(self, **changes) -> "ProducerConfig":
        """Return a copy with the given fields replaced."""
        if "semantics" in changes:
            changes["semantics"] = DeliverySemantics.parse(changes["semantics"])
        return replace(self, **changes)


#: Kafka-like out-of-the-box settings used as the "Default" column of the
#: paper's Table II: streaming mode (no batching), at-least-once with a
#: short message timeout and full-speed polling.
DEFAULT_PRODUCER_CONFIG = ProducerConfig(
    semantics=DeliverySemantics.AT_LEAST_ONCE,
    batch_size=1,
    polling_interval_s=0.0,
    message_timeout_s=1.5,
    request_timeout_s=1.0,
)


@dataclass(frozen=True)
class BrokerConfig:
    """Broker-side tunables.

    Attributes
    ----------
    processing_time_s:
        Fixed request handling latency (validation, indexing).
    append_bytes_per_s:
        Log append throughput; adds size-proportional latency.
    replication_factor:
        Copies per partition across the cluster.
    acks_all_extra_s:
        Extra latency per request when the producer requires
        acknowledgement from all in-sync replicas.
    """

    processing_time_s: float = 0.002
    append_bytes_per_s: float = 50e6
    replication_factor: int = 3
    acks_all_extra_s: float = 0.004

    def __post_init__(self) -> None:
        if self.processing_time_s < 0:
            raise ValueError("processing_time_s must be >= 0")
        if self.append_bytes_per_s <= 0:
            raise ValueError("append_bytes_per_s must be positive")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.acks_all_extra_s < 0:
            raise ValueError("acks_all_extra_s must be >= 0")


@dataclass(frozen=True)
class HardwareProfile:
    """Fixed machine resources of the producer host and its network.

    The unit system is scaled so that full-load message rates sit in the
    tens-to-hundreds per second, keeping event counts manageable; every
    figure of the paper depends on ratios (arrival/service, offered
    load/capacity), not on absolute rates.

    Attributes
    ----------
    io_bytes_per_s:
        Peak source read bandwidth; at full load (δ=0) the producer ingests
        messages at ``io_bytes_per_s / M`` during source bursts.
    ack_overhead_factor:
        Full-load ingest slowdown when the producer also processes broker
        responses (at-least-once); the paper's overloaded acks=0 producer
        reads faster than its acks=1 twin because it spends no cycles on
        response handling.
    serialization_base_s:
        Fixed per-message processing cost (key assignment, callbacks).
    serialization_bytes_per_s:
        Byte-proportional serialisation throughput.
    batch_overhead_s:
        Fixed per-request assembly cost, amortised over a batch.
    request_overhead_bytes:
        Protocol framing bytes added to every produce request (topic and
        partition metadata, record-batch headers) — the fixed cost that
        batching amortises.
    response_bytes:
        Size of a produce response message.
    socket_window_requests:
        TCP flow-control analogue for the fire-and-forget producer: how
        many produce requests may sit unacknowledged in the socket before
        further sends wait in the accumulator.
    socket_buffer_bytes:
        Byte-based in-flight cap (the socket send buffer / bandwidth-delay
        window).  Applies to both semantics on top of the request-count
        window; it is what keeps a handful of large requests from flooding
        the link queue.
    link_capacity_bps:
        Link serialisation capacity in bytes/second (per direction).
    link_base_delay_s:
        One-way propagation delay with no fault injected.
    source_burst_on_s / source_burst_off_s:
        The fully-loaded source alternates between reading at peak I/O rate
        and pausing (page cache misses, upstream batching); this burstiness
        is what makes the message-timeout knee of paper Fig. 5 possible.
    """

    io_bytes_per_s: float = 40_000.0
    ack_overhead_factor: float = 0.6
    serialization_base_s: float = 0.012
    serialization_bytes_per_s: float = 120_000.0
    batch_overhead_s: float = 0.004
    request_overhead_bytes: int = 200
    response_bytes: int = 150
    socket_window_requests: int = 12
    socket_buffer_bytes: int = 3_000
    link_capacity_bps: float = 7_500.0
    link_base_delay_s: float = 0.0005
    source_burst_on_s: float = 0.12
    source_burst_off_s: float = 1.88

    def __post_init__(self) -> None:
        positive = [
            ("io_bytes_per_s", self.io_bytes_per_s),
            ("serialization_bytes_per_s", self.serialization_bytes_per_s),
            ("link_capacity_bps", self.link_capacity_bps),
            ("source_burst_on_s", self.source_burst_on_s),
        ]
        for name, value in positive:
            if value <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0 < self.ack_overhead_factor <= 1:
            raise ValueError("ack_overhead_factor must be in (0, 1]")
        if self.source_burst_off_s < 0:
            raise ValueError("source_burst_off_s must be >= 0")

    def serialization_time_s(self, total_bytes: int, messages: int = 1) -> float:
        """CPU time to serialise ``messages`` totalling ``total_bytes``."""
        return (
            self.serialization_base_s * messages
            + total_bytes / self.serialization_bytes_per_s
            + self.batch_overhead_s
        )

    def full_load_rate(self, message_bytes: int, waits_for_ack: bool) -> float:
        """Peak ingest rate (messages/s) at δ=0 during a source burst."""
        rate = self.io_bytes_per_s / message_bytes
        if waits_for_ack:
            rate *= self.ack_overhead_factor
        return rate
