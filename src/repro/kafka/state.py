"""The message state machine of paper Fig. 2 and Table I.

A message moves between four states — *Ready to be sent*, *Delivered*,
*Lost* and *Duplicated* — through six transitions:

====  =============================  ==========================================
 #    Edge                           Meaning
====  =============================  ==========================================
 I    Ready → Delivered              initial send persisted on a broker
 II   Ready → Lost                   initial send failed
 III  Lost → Lost                    a retry failed again
 IV   Lost → Delivered               a retry persisted the message
 V    Delivered → Lost               persisted, but the acknowledgement was
                                     lost, so the producer still sees *Lost*
 VI   Lost → Duplicated              a retry re-persisted an already
                                     persisted message
====  =============================  ==========================================

Table I enumerates the five delivery cases as transition orders; Case 1 and
Case 4 are successes, Cases 2/3 are loss failures (`P_l`) and Case 5 is the
duplicate failure (`P_d`).  The table starts Case 5 with an initial failure
(II); the same ack-loss race can equally follow a clean first delivery
(I → V → VI), which we classify as Case 5 as well — the paper's metric
`P_d = P(Case5)` counts exactly the messages that end *Duplicated*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple

__all__ = ["MessageState", "Transition", "DeliveryCase", "MessageStateMachine", "IllegalTransition"]


class MessageState(Enum):
    """Paper Fig. 2 states."""

    READY = "ready"
    DELIVERED = "delivered"
    LOST = "lost"
    DUPLICATED = "duplicated"


class Transition(Enum):
    """Paper Fig. 2 edges (Roman numerals I–VI)."""

    I = "I"
    II = "II"
    III = "III"
    IV = "IV"
    V = "V"
    VI = "VI"


#: Legal (source state → transition → target state) edges.
_EDGES: Dict[Transition, Tuple[MessageState, MessageState]] = {
    Transition.I: (MessageState.READY, MessageState.DELIVERED),
    Transition.II: (MessageState.READY, MessageState.LOST),
    Transition.III: (MessageState.LOST, MessageState.LOST),
    Transition.IV: (MessageState.LOST, MessageState.DELIVERED),
    Transition.V: (MessageState.DELIVERED, MessageState.LOST),
    Transition.VI: (MessageState.LOST, MessageState.DUPLICATED),
}


class DeliveryCase(Enum):
    """Paper Table I delivery cases."""

    CASE1 = 1  #: success on the initial send
    CASE2 = 2  #: initial send failed, no (successful) retries
    CASE3 = 3  #: all retries failed; message stays Lost
    CASE4 = 4  #: a retry eventually delivered the message
    CASE5 = 5  #: persisted more than once (duplicate failure)

    @property
    def is_success(self) -> bool:
        """Only Case 1 and Case 4 are successful deliveries (Table I)."""
        return self in (DeliveryCase.CASE1, DeliveryCase.CASE4)

    @property
    def is_loss_failure(self) -> bool:
        """Cases contributing to the probability of message loss P_l."""
        return self in (DeliveryCase.CASE2, DeliveryCase.CASE3)

    @property
    def is_duplicate_failure(self) -> bool:
        """The case contributing to the probability of duplication P_d."""
        return self is DeliveryCase.CASE5


class IllegalTransition(RuntimeError):
    """Raised when a transition is applied from the wrong state."""


@dataclass
class MessageStateMachine:
    """Tracks one message's walk through the Fig. 2 state diagram.

    The testbed instruments every message with one of these; the producer
    and broker report transitions as they happen, and
    :meth:`classify_case` reduces the history to a Table I case.
    """

    state: MessageState = MessageState.READY
    history: List[Transition] = field(default_factory=list)

    def apply(self, transition: Transition) -> MessageState:
        """Apply ``transition``; raises :class:`IllegalTransition` if illegal.

        A message that reached ``DUPLICATED`` stays there: further duplicate
        retries (the paper's ``τ_d · VI``) are recorded but do not move the
        state.
        """
        source, target = _EDGES[transition]
        if self.state is MessageState.DUPLICATED:
            if transition is Transition.VI:
                self.history.append(transition)
                return self.state
            raise IllegalTransition(
                f"{transition.value} from terminal state {self.state.value}"
            )
        if self.state is not source:
            raise IllegalTransition(
                f"transition {transition.value} requires state {source.value}, "
                f"message is {self.state.value}"
            )
        self.state = target
        self.history.append(transition)
        return self.state

    @property
    def retry_count(self) -> int:
        """τ_r: number of retry attempts recorded (III and IV edges)."""
        return sum(
            1 for t in self.history if t in (Transition.III, Transition.IV)
        )

    @property
    def duplicate_count(self) -> int:
        """τ_d: number of duplicating retries (VI edges)."""
        return sum(1 for t in self.history if t is Transition.VI)

    def classify_case(self) -> DeliveryCase:
        """Map the recorded history to the paper's Table I case."""
        if self.state is MessageState.DUPLICATED:
            return DeliveryCase.CASE5
        if self.state is MessageState.DELIVERED:
            return DeliveryCase.CASE1 if self.history == [Transition.I] else DeliveryCase.CASE4
        if self.state is MessageState.LOST:
            if self.history == [Transition.II]:
                return DeliveryCase.CASE2
            return DeliveryCase.CASE3
        raise ValueError("message never left the Ready state; no case applies")

    @property
    def persisted(self) -> bool:
        """Whether at least one copy reached the cluster."""
        return self.state in (MessageState.DELIVERED, MessageState.DUPLICATED) or any(
            t in (Transition.I, Transition.IV) for t in self.history
        )
