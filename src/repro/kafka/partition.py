"""Partitions: the unit of storage placement and replication."""

from __future__ import annotations

from typing import Dict, List, Optional

from .log import LogEntry, PartitionLog

__all__ = ["Partition"]


class Partition:
    """One partition of a topic, with a leader replica and followers.

    The leader broker serves produce requests; follower replicas apply the
    leader's appends (our replication is leader-push with a configurable
    lag, applied by the broker layer).  Reconciliation reads the leader log.
    """

    def __init__(
        self,
        topic: str,
        index: int,
        leader_broker_id: str,
        replica_broker_ids: Optional[List[str]] = None,
        segment_max_entries: int = 4096,
    ) -> None:
        if index < 0:
            raise ValueError("partition index must be >= 0")
        self.topic = topic
        self.index = index
        self.leader_broker_id = leader_broker_id
        self.replica_broker_ids = list(replica_broker_ids or [])
        self.leader_log = PartitionLog(segment_max_entries)
        self.replica_logs: Dict[str, PartitionLog] = {
            broker_id: PartitionLog(segment_max_entries)
            for broker_id in self.replica_broker_ids
            if broker_id != leader_broker_id
        }

    @property
    def name(self) -> str:
        """Kafka-style ``topic-partition`` name."""
        return f"{self.topic}-{self.index}"

    @property
    def high_watermark(self) -> int:
        """Highest offset replicated to every follower."""
        if not self.replica_logs:
            return self.leader_log.next_offset
        return min(
            [self.leader_log.next_offset]
            + [log.next_offset for log in self.replica_logs.values()]
        )

    def append(
        self,
        key: int,
        payload_bytes: int,
        timestamp: float,
        producer_id: Optional[int] = None,
        sequence: Optional[int] = None,
    ) -> Optional[int]:
        """Append to the leader log (and replicate); returns the offset."""
        offset = self.leader_log.append(
            key, payload_bytes, timestamp, producer_id, sequence
        )
        if offset is None:
            return None
        # Leader-push replication: followers apply synchronously in the
        # simulation; the broker layer adds the acks=all latency cost.
        for log in self.replica_logs.values():
            log.append(key, payload_bytes, timestamp, producer_id, sequence)
        return offset

    def read(self, start_offset: int = 0, max_entries: Optional[int] = None) -> List[LogEntry]:
        """Read committed entries from the leader log."""
        return self.leader_log.read(start_offset, max_entries)

    def elect_new_leader(self, broker_id: str) -> None:
        """Fail the current leader over to ``broker_id`` (a follower).

        The follower's log becomes the leader log; entries beyond its high
        watermark on the old leader are lost — the broker-failure loss mode
        the paper leaves to future work.
        """
        if broker_id == self.leader_broker_id:
            return
        if broker_id not in self.replica_logs:
            raise ValueError(f"{broker_id} is not a follower of {self.name}")
        old_leader = self.leader_broker_id
        new_leader_log = self.replica_logs.pop(broker_id)
        self.replica_logs[old_leader] = self.leader_log
        self.leader_log = new_leader_log
        self.leader_broker_id = broker_id
