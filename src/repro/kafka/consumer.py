"""The Kafka consumer and the testbed's reconciliation step.

In the paper's methodology the consumer runs *after* the producer finishes
and the fault injection stops: it reads every message in the topic and the
analysis compares the unique keys received against the source data
(Section III-E).  :class:`KafkaConsumer` models the fetch loop (offset
tracking, fetch batching) against the committed logs, and
:func:`reconcile` produces the loss/duplicate accounting that defines the
paper's reliability metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .log import LogEntry
from .topic import Topic

__all__ = ["KafkaConsumer", "ReconciliationReport", "reconcile"]


class KafkaConsumer:
    """A subscriber that reads a topic from the beginning.

    The consumer runs after fault injection ends, so its network is clean;
    we model the fetch loop faithfully (per-partition offsets, bounded
    fetch sizes) but without network events, which keeps reconciliation
    O(messages) regardless of the experiment's network history.
    """

    def __init__(self, topic: Topic, max_poll_records: int = 500) -> None:
        if max_poll_records < 1:
            raise ValueError("max_poll_records must be >= 1")
        self._topic = topic
        self._max_poll_records = max_poll_records
        self._offsets: Dict[int, int] = {p.index: 0 for p in topic.partitions}

    @property
    def positions(self) -> Dict[int, int]:
        """Current fetch offset per partition."""
        return dict(self._offsets)

    def poll(self) -> List[LogEntry]:
        """Fetch the next batch of records across partitions."""
        out: List[LogEntry] = []
        budget = self._max_poll_records
        for partition in self._topic.partitions:
            if budget <= 0:
                break
            start = self._offsets[partition.index]
            entries = partition.read(start_offset=start, max_entries=budget)
            if entries:
                self._offsets[partition.index] = entries[-1].offset + 1
                out.extend(entries)
                budget -= len(entries)
        return out

    def consume_all(self) -> List[LogEntry]:
        """Drain the topic from the current positions to the end."""
        out: List[LogEntry] = []
        while True:
            batch = self.poll()
            if not batch:
                return out
            out.extend(batch)


@dataclass
class ReconciliationReport:
    """Source-vs-topic accounting, the ground truth behind P_l and P_d.

    Attributes
    ----------
    produced:
        Number of unique keys the source generated.
    delivered_unique:
        Keys present in the topic at least once.
    lost:
        Keys missing from the topic entirely (Cases 2 and 3).
    duplicated:
        Keys present more than once (Case 5).
    duplicate_copies:
        Extra copies beyond the first, summed over duplicated keys (τ_d).
    stale:
        Delivered keys whose first copy arrived after the message's
        timeliness window ``S`` (delivered but worthless to the app).
    """

    produced: int
    delivered_unique: int
    lost: int
    duplicated: int
    duplicate_copies: int
    stale: int = 0
    lost_keys: Set[int] = field(default_factory=set)
    duplicated_keys: Set[int] = field(default_factory=set)

    @property
    def p_loss(self) -> float:
        """The paper's P_l = N_l / N."""
        return self.lost / self.produced if self.produced else 0.0

    @property
    def p_duplicate(self) -> float:
        """The paper's P_d = N_d / N."""
        return self.duplicated / self.produced if self.produced else 0.0

    @property
    def p_stale(self) -> float:
        """Fraction of source messages delivered but stale."""
        return self.stale / self.produced if self.produced else 0.0

    def check_conservation(self) -> None:
        """Every key must be delivered or lost; duplicates are delivered."""
        if self.delivered_unique + self.lost != self.produced:
            raise AssertionError(
                f"conservation violated: {self.delivered_unique} delivered + "
                f"{self.lost} lost != {self.produced} produced"
            )


def reconcile(
    source_keys: Set[int],
    topic: Topic,
    ingest_times: Optional[Dict[int, float]] = None,
    timeliness_s: Optional[float] = None,
) -> ReconciliationReport:
    """Compare source keys with topic contents, the paper's analysis step.

    Parameters
    ----------
    source_keys:
        Unique keys of every message the source handed to the producer.
    topic:
        The topic to read back (via a fresh consumer).
    ingest_times:
        Optional ``key → producer-ingest time`` map for staleness checks.
    timeliness_s:
        The message-timeliness feature ``S``; with ``ingest_times`` this
        classifies deliveries as stale when first persisted later than
        ``ingest + S``.
    """
    consumer = KafkaConsumer(topic)
    first_seen: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for entry in consumer.consume_all():
        counts[entry.key] = counts.get(entry.key, 0) + 1
        if entry.key not in first_seen:
            first_seen[entry.key] = entry.timestamp
    lost_keys = {key for key in source_keys if key not in counts}
    duplicated_keys = {
        key for key, count in counts.items() if count > 1 and key in source_keys
    }
    duplicate_copies = sum(
        counts[key] - 1 for key in duplicated_keys
    )
    stale = 0
    if ingest_times is not None and timeliness_s is not None:
        for key, seen_at in first_seen.items():
            ingest = ingest_times.get(key)
            if ingest is not None and (seen_at - ingest) > timeliness_s:
                stale += 1
    delivered_unique = len(source_keys) - len(lost_keys)
    return ReconciliationReport(
        produced=len(source_keys),
        delivered_unique=delivered_unique,
        lost=len(lost_keys),
        duplicated=len(duplicated_keys),
        duplicate_copies=duplicate_copies,
        stale=stale,
        lost_keys=lost_keys,
        duplicated_keys=duplicated_keys,
    )
