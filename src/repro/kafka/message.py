"""Producer records and their testbed instrumentation.

The paper's testbed generates source data as messages with an incremental
unique key and a payload of definable length; the content is irrelevant
(Section III-E).  :class:`ProducerRecord` mirrors that: we carry the sizes
and timestamps the simulation needs, never actual payload bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ProducerRecord", "RecordMetadata", "reset_key_counter"]

_key_counter = itertools.count()


def reset_key_counter() -> None:
    """Restart the global unique-key sequence (used between experiments)."""
    global _key_counter
    _key_counter = itertools.count()


@dataclass
class ProducerRecord:
    """A message handed to the producer by an upstream application.

    Attributes
    ----------
    key:
        Incremental unique key used for loss/duplicate reconciliation.
    payload_bytes:
        Message size ``M`` in bytes (the payload string length).
    topic:
        Destination topic name.
    source_time:
        Simulated time the upstream application emitted the record.
    ingest_time:
        Simulated time the producer polled it in; the delivery-timeout and
        staleness clocks start here (the paper's "arrives to the producer").
    timeliness_s:
        Validity period ``S``: a delivery that completes more than this long
        after ``ingest_time`` is stale.  ``None`` disables staleness.
    """

    payload_bytes: int
    topic: str = "events"
    key: int = field(default_factory=lambda: next(_key_counter))
    source_time: float = 0.0
    ingest_time: Optional[float] = None
    timeliness_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.timeliness_s is not None and self.timeliness_s <= 0:
            raise ValueError("timeliness_s must be positive when given")

    def deadline(self, timeout_s: float) -> float:
        """Absolute expiry time given the message-timeout configuration."""
        if self.ingest_time is None:
            raise ValueError("record has not been ingested by a producer yet")
        return self.ingest_time + timeout_s

    def is_stale(self, delivered_at: float) -> bool:
        """Whether a delivery completed at ``delivered_at`` is stale."""
        if self.timeliness_s is None or self.ingest_time is None:
            return False
        return (delivered_at - self.ingest_time) > self.timeliness_s


@dataclass
class RecordMetadata:
    """Broker-side result of appending one record."""

    topic: str
    partition: int
    offset: int
    timestamp: float
