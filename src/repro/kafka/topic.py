"""Topics and partitioning."""

from __future__ import annotations

from typing import Dict, List, Optional

from .log import LogEntry
from .partition import Partition

__all__ = ["Topic", "Partitioner", "RoundRobinPartitioner", "KeyHashPartitioner"]


class Partitioner:
    """Strategy mapping a record key to a partition index."""

    def select(self, key: int, partition_count: int) -> int:
        """Return the partition index for ``key``."""
        raise NotImplementedError


class RoundRobinPartitioner(Partitioner):
    """Cycle through partitions — Kafka's default for keyless records."""

    def __init__(self) -> None:
        self._next = 0

    def select(self, key: int, partition_count: int) -> int:
        index = self._next % partition_count
        self._next += 1
        return index


class KeyHashPartitioner(Partitioner):
    """Deterministic key-hash placement — Kafka's default for keyed records."""

    def select(self, key: int, partition_count: int) -> int:
        # Knuth multiplicative hash keeps small incremental keys spread out.
        return (key * 2654435761 % (2**32)) % partition_count


class Topic:
    """A named set of partitions distributed across brokers."""

    def __init__(
        self,
        name: str,
        partitions: List[Partition],
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        if not partitions:
            raise ValueError("a topic needs at least one partition")
        self.name = name
        self.partitions = partitions
        self.partitioner = partitioner if partitioner is not None else KeyHashPartitioner()

    @property
    def partition_count(self) -> int:
        """Number of partitions."""
        return len(self.partitions)

    def partition_for(self, key: int) -> Partition:
        """The partition a record with ``key`` is routed to."""
        return self.partitions[self.partitioner.select(key, self.partition_count)]

    def total_messages(self) -> int:
        """Entries across all partitions (duplicates included)."""
        return sum(len(p.leader_log) for p in self.partitions)

    def read_all(self) -> List[LogEntry]:
        """All committed entries across partitions, by partition order."""
        out: List[LogEntry] = []
        for partition in self.partitions:
            out.extend(partition.read())
        return out

    def key_counts(self) -> Dict[int, int]:
        """Merge per-partition key counts (the reconciliation input)."""
        counts: Dict[int, int] = {}
        for partition in self.partitions:
            for key, count in partition.leader_log.key_counts().items():
                counts[key] = counts.get(key, 0) + count
        return counts
