"""The Kafka producer: polling, batching, semantics, retries, expiry.

This is the component whose reliability the paper predicts.  The producer
is modelled as the pipeline of a real Kafka client:

``source → accumulator queue → (batching) → serialisation → network send``

with the semantics-dependent send discipline:

* **at-most-once** (``acks=0``): requests are fired into the transport and
  forgotten; nothing is retried at the application level.
* **at-least-once** (``acks≥1``): at most ``max_in_flight`` requests are
  outstanding; each waits ``request_timeout_s`` for a broker response and
  is retried (with backoff) until the response arrives, retries are
  exhausted, or the per-message delivery timeout ``T_o`` expires.
* **exactly-once**: at-least-once plus producer id / sequence numbers that
  let brokers discard duplicate appends.

Messages expire out of the accumulator once they have waited longer than
``T_o`` — the overload loss mode behind the paper's Figs. 5 and 6.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..network.link import FORWARD, REVERSE
from ..network.transport import ReliableChannel
from ..observability.metrics import DEFAULT_LATENCY_BUCKETS
from ..observability.trace import EventKind
from ..simulation.process import Signal
from ..simulation.resources import TokenBucket
from ..simulation.simulator import Simulator
from .broker import ProduceRequest, ProduceResponse
from .cluster import KafkaCluster
from .config import HardwareProfile, ProducerConfig
from .message import ProducerRecord
from .topic import Topic

__all__ = ["ProducerListener", "ProducerStats", "KafkaProducer"]

_producer_ids = itertools.count(1)


class ProducerListener:
    """Instrumentation hooks; the testbed's delivery tracker subclasses this.

    Every method is a no-op by default so the producer can run without any
    instrumentation attached.
    """

    def on_ingest(self, record: ProducerRecord) -> None:
        """Record entered the accumulator."""

    def on_queue_drop(self, record: ProducerRecord) -> None:
        """Record rejected because the accumulator was full."""

    def on_expired(self, record: ProducerRecord, after_send: bool) -> None:
        """Record abandoned because its delivery timeout ``T_o`` passed."""

    def on_send_attempt(self, record: ProducerRecord, attempt: int) -> None:
        """Record included in a produce request (``attempt`` 0 = first)."""

    def on_attempt_failed(self, record: ProducerRecord, attempt: int) -> None:
        """A produce request carrying the record timed out or failed."""

    def on_acknowledged(self, record: ProducerRecord, rtt_s: float) -> None:
        """Producer received a broker response covering the record."""

    def on_perceived_lost(self, record: ProducerRecord) -> None:
        """Producer gave up on the record (its final producer-side view)."""


@dataclass
class ProducerStats:
    """Producer-side counters (the producer's own view of the world)."""

    ingested: int = 0
    queue_dropped: int = 0
    expired_in_queue: int = 0
    expired_after_send: int = 0
    requests_sent: int = 0
    request_retries: int = 0
    acknowledged: int = 0
    perceived_lost: int = 0
    fire_and_forget: int = 0
    bytes_sent: int = 0

    @property
    def resolved(self) -> int:
        """Records the producer has finished with, one way or another."""
        return (
            self.queue_dropped
            + self.expired_in_queue
            + self.expired_after_send
            + self.acknowledged
            + self.perceived_lost
            + self.fire_and_forget
        )


class _Batch:
    """Sender-side state for one produce request and its retries."""

    __slots__ = ("records", "attempt", "timer", "waiting", "completed", "base_sequence", "byte_charge")

    def __init__(self, records: List[ProducerRecord]) -> None:
        self.records = records
        self.attempt = 0
        self.timer = None
        self.waiting = False
        self.completed = False
        self.base_sequence: Optional[int] = None
        self.byte_charge = 0


class KafkaProducer:
    """A simulated Kafka producer attached to one cluster via one channel.

    Parameters
    ----------
    sim:
        Shared simulator.
    cluster:
        Destination cluster (this constructor wires the channel receivers).
    channel:
        Reliable transport to the cluster; ``FORWARD`` is producer→cluster.
    topic:
        Destination topic object.
    config:
        The paper's configuration features.
    hardware:
        Fixed machine resources (serialisation speed, protocol overheads).
    listener:
        Optional instrumentation hooks.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: KafkaCluster,
        channel: ReliableChannel,
        topic: Topic,
        config: Optional[ProducerConfig] = None,
        hardware: Optional[HardwareProfile] = None,
        listener: Optional[ProducerListener] = None,
        telemetry=None,
    ) -> None:
        self._sim = sim
        self._cluster = cluster
        self._channel = channel
        self._topic = topic
        self.config = config if config is not None else ProducerConfig()
        self.hardware = hardware if hardware is not None else HardwareProfile()
        self.listener = listener if listener is not None else ProducerListener()
        # Telemetry is optional and None by default; every emission site
        # guards on the attribute so a bare producer pays one pointer
        # comparison per event, nothing more.
        self._tracer = telemetry.tracer if telemetry is not None else None
        if telemetry is not None:
            self._ack_rtt = telemetry.metrics.histogram(
                "producer.ack_rtt_s", DEFAULT_LATENCY_BUCKETS
            )
        else:
            self._ack_rtt = None
        self.stats = ProducerStats()
        self.producer_id = next(_producer_ids)
        self._sequence = itertools.count()
        self._queue: Deque[ProducerRecord] = deque()
        self._serializing = False
        self._linger_timer = None
        self._input_finished = False
        self._closed = False
        self._batches: Dict[int, _Batch] = {}
        self._outstanding = 0  # records ingested but not yet resolved
        self._done_signal = Signal(sim, name="producer.done")
        semantics = self.config.semantics
        # At-least-once: the in-flight request window (max.in.flight).
        # At-most-once: TCP flow control — a bounded number of requests may
        # sit unacknowledged in the socket; beyond that the accumulator
        # backs up, exactly like a blocked socket write.
        window = (
            self.config.max_in_flight
            if semantics.waits_for_ack
            else self.hardware.socket_window_requests
        )
        self._tokens = TokenBucket(sim, window)
        self._in_flight_bytes = 0
        channel.set_receiver(FORWARD, self._cluster_receive)
        channel.set_receiver(REVERSE, self._producer_receive)
        # The expiry sweep re-arms itself only while work is pending, so an
        # idle producer never keeps the simulator alive.
        self._sweep_interval = max(0.05, self.config.request_timeout_s / 4)
        self._sweep_event = None

    # ------------------------------------------------------------- intake

    @property
    def done(self) -> Signal:
        """Triggered once input is finished and every record is resolved."""
        return self._done_signal

    @property
    def outstanding(self) -> int:
        """Records ingested whose fate the producer has not yet resolved."""
        return self._outstanding

    @property
    def queue_depth(self) -> int:
        """Records currently waiting in the accumulator."""
        return len(self._queue)

    def offer(self, record: ProducerRecord) -> bool:
        """Ingest one record from the upstream source.

        Returns False when the accumulator is bounded and full (the record
        is dropped and reported through the listener).
        """
        if self._closed:
            raise RuntimeError("producer is closed")
        capacity = self.config.queue_capacity
        if capacity is not None and len(self._queue) >= capacity:
            self.stats.queue_dropped += 1
            self.listener.on_queue_drop(record)
            if self._tracer is not None:
                self._tracer.emit(EventKind.QUEUE_DROP, self._sim.now, key=record.key)
            return False
        record.ingest_time = self._sim.now
        self.stats.ingested += 1
        self._outstanding += 1
        self.listener.on_ingest(record)
        self._queue.append(record)
        self._arm_sweep()
        self._maybe_form_batch()
        return True

    def finish_input(self) -> None:
        """Signal that no further records will be offered."""
        self._input_finished = True
        self._maybe_form_batch()
        self._check_done()

    # --------------------------------------------------------- batch flow

    def _record_deadline(self, record: ProducerRecord) -> float:
        return record.deadline(self.config.message_timeout_s)

    def _expire_from_queue_head(self, lookahead_s: float = 0.0) -> None:
        """Drop queue-head records at (or within ``lookahead_s`` of) expiry.

        The lookahead mirrors Kafka's accumulator behaviour of expiring a
        batch *before* spending cycles on it: a record that will cross its
        delivery timeout while the batch is being serialised is dead on
        arrival and only wastes the batch slot.
        """
        horizon = self._sim.now + lookahead_s
        while self._queue and horizon >= self._record_deadline(self._queue[0]):
            record = self._queue.popleft()
            self.stats.expired_in_queue += 1
            self.listener.on_expired(record, after_send=False)
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.EXPIRED, self._sim.now, key=record.key, after_send=False
                )
            self._resolve()

    def _arm_sweep(self) -> None:
        if self._sweep_event is not None or self._closed:
            return
        if not self._queue and self._outstanding == 0:
            return
        self._sweep_event = self._sim.schedule(self._sweep_interval, self._sweep_expired)

    def _sweep_expired(self) -> None:
        self._sweep_event = None
        self._expire_from_queue_head()
        if self._queue:
            self._maybe_form_batch()
        self._arm_sweep()

    def _maybe_form_batch(self) -> None:
        if self._serializing or self._closed:
            return
        lookahead = self.hardware.serialization_time_s(
            self.config.batch_size
            * (self._queue[0].payload_bytes if self._queue else 0),
            self.config.batch_size,
        )
        self._expire_from_queue_head(lookahead)
        if not self._queue:
            self._check_done()
            return
        if self._tokens.available == 0:
            return  # back-pressure: wait for an in-flight/socket slot
        if (
            self._in_flight_bytes >= self.hardware.socket_buffer_bytes
            and self._tokens.in_use > 0
        ):
            return  # socket send buffer full; a completion will re-trigger
        batch_size = self.config.batch_size
        now = self._sim.now
        oldest_ingest = self._queue[0].ingest_time
        oldest_wait = now - (oldest_ingest if oldest_ingest is not None else now)
        if len(self._queue) < batch_size:
            ready = self._input_finished or oldest_wait >= self.config.linger_s
            if not ready:
                self._arm_linger(self.config.linger_s - oldest_wait)
                return
        records = [
            self._queue.popleft()
            for _ in range(min(batch_size, len(self._queue)))
        ]
        if self._linger_timer is not None:
            self._sim.cancel(self._linger_timer)
            self._linger_timer = None
        # Availability was checked above; acquire resolves immediately.
        self._tokens.acquire()
        token_held = True
        self._serializing = True
        total_bytes = sum(record.payload_bytes for record in records)
        ser_time = self.hardware.serialization_time_s(total_bytes, len(records))
        self._sim.schedule(ser_time, self._dispatch, records, token_held)

    def _arm_linger(self, delay: float) -> None:
        if self._linger_timer is not None:
            return
        def fire() -> None:
            self._linger_timer = None
            self._maybe_form_batch()
        self._linger_timer = self._sim.schedule(max(1e-6, delay), fire)

    def _dispatch(self, records: List[ProducerRecord], token_held: bool) -> None:
        self._serializing = False
        now = self._sim.now
        live: List[ProducerRecord] = []
        for record in records:
            if now >= self._record_deadline(record):
                self.stats.expired_in_queue += 1
                self.listener.on_expired(record, after_send=False)
                if self._tracer is not None:
                    self._tracer.emit(
                        EventKind.EXPIRED, now, key=record.key, after_send=False
                    )
                self._resolve()
            else:
                live.append(record)
        if not live:
            if token_held:
                self._tokens.release()
            self._sim.schedule(0.0, self._maybe_form_batch)
            return
        batch = _Batch(live)
        self._send_batch(batch, token_held)
        self._sim.schedule(0.0, self._maybe_form_batch)

    def _wire_bytes(self, records: List[ProducerRecord]) -> int:
        payload = sum(record.payload_bytes for record in records)
        return payload + self.hardware.request_overhead_bytes

    def _send_batch(self, batch: _Batch, token_held: bool) -> None:
        semantics = self.config.semantics
        partition = self._topic.partition_for(batch.records[0].key)
        base_sequence = None
        producer_id = None
        if semantics.idempotent:
            producer_id = self.producer_id
            if batch.base_sequence is None:
                base_sequence = next(self._sequence)
                for _ in batch.records[1:]:
                    next(self._sequence)
                batch.base_sequence = base_sequence
            else:
                base_sequence = batch.base_sequence
        request = ProduceRequest(
            records=list(batch.records),
            partition=partition,
            require_acks=semantics.waits_for_ack,
            wire_bytes=self._wire_bytes(batch.records),
            producer_id=producer_id,
            base_sequence=base_sequence,
            attempt=batch.attempt,
        )
        self.stats.requests_sent += 1
        if batch.attempt > 0:
            self.stats.request_retries += 1
        self.stats.bytes_sent += request.wire_bytes
        for record in batch.records:
            self.listener.on_send_attempt(record, batch.attempt)
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.SEND, self._sim.now, key=record.key, attempt=batch.attempt
                )
        if semantics.waits_for_ack:
            if batch.attempt == 0:
                batch.byte_charge = request.wire_bytes
                self._in_flight_bytes += batch.byte_charge
            self._batches[request.request_id] = batch
            batch.waiting = True
            # The response timer starts once the request has demonstrably
            # reached the broker (transport-level delivery); transmission
            # time therefore never eats into the response wait, mirroring
            # how Kafka's request timeout dwarfs any transfer time.  A
            # transport-level failure (connection gave up) triggers the
            # retry path immediately.
            self._channel.send(
                FORWARD,
                request.wire_bytes,
                payload=request,
                deadline=self._sim.now + 2.0 * self.config.request_timeout_s,
                on_delivered=lambda payload, rtt: self._arm_response_timer(
                    batch, token_held
                ),
                on_failed=lambda payload, reason: self._on_transport_failed(
                    batch, token_held
                ),
            )
        else:
            # Fire and forget: the producer's bookkeeping ends here; the
            # testbed learns the true fate from the cluster/transport.  The
            # socket keeps trying for one delivery-timeout span from the
            # moment the batch hits the socket, after which the connection
            # abandons the data (queue waiting time is charged separately
            # by accumulator expiry).
            deadline = self._sim.now + self.config.message_timeout_s
            self._in_flight_bytes += request.wire_bytes
            self._channel.send(
                FORWARD,
                request.wire_bytes,
                payload=request,
                deadline=deadline,
                on_delivered=lambda payload, rtt: self._on_amo_settled(request),
                on_failed=lambda payload, reason: self._on_amo_failed(request),
            )
            for _record in batch.records:
                self.stats.fire_and_forget += 1
                self._resolve()

    # ------------------------------------------------- at-least-once path

    def _arm_response_timer(self, batch: _Batch, token_held: bool) -> None:
        """The request reached the broker; now wait for its response."""
        if batch.completed or not batch.waiting or batch.timer is not None:
            return
        batch.timer = self._sim.schedule(
            self.config.request_timeout_s, self._on_request_timeout, batch, token_held
        )

    def _on_transport_failed(self, batch: _Batch, token_held: bool) -> None:
        # The transport gave up before the request timeout fired; handle it
        # exactly like a timeout so retry policy lives in one place.
        self._handle_request_failure(batch, token_held)

    def _on_request_timeout(self, batch: _Batch, token_held: bool) -> None:
        self._handle_request_failure(batch, token_held)

    def _handle_request_failure(self, batch: _Batch, token_held: bool) -> None:
        if batch.completed or not batch.waiting:
            return
        batch.waiting = False
        if batch.timer is not None:
            self._sim.cancel(batch.timer)
            batch.timer = None
        now = self._sim.now
        for record in batch.records:
            self.listener.on_attempt_failed(record, batch.attempt)
        survivors: List[ProducerRecord] = []
        for record in batch.records:
            if now >= self._record_deadline(record):
                self.stats.expired_after_send += 1
                self.listener.on_expired(record, after_send=True)
                if self._tracer is not None:
                    self._tracer.emit(
                        EventKind.EXPIRED, now, key=record.key, after_send=True
                    )
                self._resolve()
            else:
                survivors.append(record)
        batch.records = survivors
        retries_left = batch.attempt < self.config.effective_retries
        if survivors and retries_left:
            batch.attempt += 1
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.RETRY,
                    now,
                    attempt=batch.attempt,
                    records=len(survivors),
                )
            self._sim.schedule(
                self.config.retry_backoff_s, self._retry_batch, batch, token_held
            )
            return
        for record in survivors:
            self.stats.perceived_lost += 1
            self.listener.on_perceived_lost(record)
            if self._tracer is not None:
                self._tracer.emit(EventKind.PERCEIVED_LOST, now, key=record.key)
            self._resolve()
        batch.completed = True
        self._in_flight_bytes -= batch.byte_charge
        if token_held:
            self._tokens.release()
        self._sim.schedule(0.0, self._maybe_form_batch)

    def _retry_batch(self, batch: _Batch, token_held: bool) -> None:
        if batch.completed:
            return
        now = self._sim.now
        survivors = [
            record
            for record in batch.records
            if now < self._record_deadline(record)
        ]
        expired = [r for r in batch.records if r not in survivors]
        for record in expired:
            self.stats.expired_after_send += 1
            self.listener.on_expired(record, after_send=True)
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.EXPIRED, now, key=record.key, after_send=True
                )
            self._resolve()
        batch.records = survivors
        if not survivors:
            batch.completed = True
            self._in_flight_bytes -= batch.byte_charge
            if token_held:
                self._tokens.release()
            self._sim.schedule(0.0, self._maybe_form_batch)
            return
        self._send_batch(batch, token_held)

    def _producer_receive(self, payload, size_bytes: int) -> None:
        """A message arrived on the REVERSE direction (a broker response)."""
        if not isinstance(payload, ProduceResponse):
            return
        batch = self._batches.pop(payload.request_id, None)
        if batch is None or batch.completed:
            return
        batch.completed = True
        batch.waiting = False
        self._in_flight_bytes -= batch.byte_charge
        if batch.timer is not None:
            self._sim.cancel(batch.timer)
            batch.timer = None
        now = self._sim.now
        for record in batch.records:
            self.stats.acknowledged += 1
            ingest = record.ingest_time if record.ingest_time is not None else now
            self.listener.on_acknowledged(record, now - ingest)
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.ACK, now, key=record.key, rtt_s=now - ingest
                )
            if self._ack_rtt is not None:
                self._ack_rtt.observe(now - ingest)
            self._resolve()
        self._tokens.release()
        self._sim.schedule(0.0, self._maybe_form_batch)

    # ------------------------------------------------- at-most-once path

    def _on_amo_settled(self, request: ProduceRequest) -> None:
        # Every segment was TCP-acknowledged: free the socket slot.
        self._in_flight_bytes -= request.wire_bytes
        self._tokens.release()
        self._sim.schedule(0.0, self._maybe_form_batch)

    def _on_amo_failed(self, request: ProduceRequest) -> None:
        # Ground truth only: the fire-and-forget producer never notices the
        # loss, but the socket slot is freed when the connection abandons
        # the data.
        for record in request.records:
            self.listener.on_attempt_failed(record, request.attempt)
        self._in_flight_bytes -= request.wire_bytes
        self._tokens.release()
        self._sim.schedule(0.0, self._maybe_form_batch)

    # ---------------------------------------------------- cluster wiring

    def _cluster_receive(self, payload, size_bytes: int) -> None:
        """A produce request arrived at the cluster end of the channel."""
        if not isinstance(payload, ProduceRequest):
            return
        if payload.require_acks:
            self._cluster.handle_produce(payload, self._send_response)
        else:
            self._cluster.handle_produce(payload, None)

    def _send_response(self, response: ProduceResponse) -> None:
        deadline = self._sim.now + 2.0 * self.config.request_timeout_s
        self._channel.send(
            REVERSE,
            self.hardware.response_bytes,
            payload=response,
            deadline=deadline,
        )

    # ------------------------------------------------------------- close

    def _resolve(self) -> None:
        self._outstanding -= 1
        if self._outstanding < 0:
            raise RuntimeError("producer resolved more records than ingested")
        self._check_done()

    def _check_done(self) -> None:
        if (
            self._input_finished
            and self._outstanding == 0
            and not self._queue
            and not self._done_signal.triggered
        ):
            if self._sweep_event is not None:
                self._sim.cancel(self._sweep_event)
                self._sweep_event = None
            self._done_signal.trigger(self.stats)

    def close(self) -> None:
        """Stop timers; the producer accepts no further records."""
        self._closed = True
        if self._sweep_event is not None:
            self._sim.cancel(self._sweep_event)
            self._sweep_event = None
        if self._linger_timer is not None:
            self._sim.cancel(self._linger_timer)
            self._linger_timer = None
