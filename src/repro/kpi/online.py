"""Online dynamic configuration (the paper's future-work extension).

Section V assumes "the network status to be known" and generates the
configuration file offline; the conclusion lists an online algorithm as
future work.  This module implements that extension:

* :class:`NetworkStateEstimator` infers the current one-way delay and
  packet loss rate purely from producer-observable signals — response
  round-trip times, transport retransmission counters and request
  failures — using exponentially weighted moving averages.
* :class:`OnlineDynamicController` re-runs the paper's stepwise KPI
  search every interval against the *estimated* state and reconfigures
  the producer, with a hysteresis guard so small estimate wobbles do not
  trigger restarts (the paper: frequent changes cost coordination
  overhead).

The online loop therefore needs no oracle: the bench compares it against
both the offline (oracle-trace) controller and the static default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..kafka.config import DEFAULT_PRODUCER_CONFIG, ProducerConfig
from ..models.predictor import ReliabilityPredictor
from ..network.trace import NetworkTrace
from ..performance.queueing import ProducerPerformanceModel
from ..testbed.experiment import Experiment
from ..testbed.scenario import Scenario
from ..workloads.streams import StreamProfile
from .aggregate import IntervalMeasurement, aggregate_rates
from .dynamic import DynamicRunReport, required_producers
from .selection import (
    ParameterSteps,
    SelectionContext,
    evaluate_config,
    select_configuration,
)
from .weighted import DEFAULT_WEIGHTS, KpiWeights

__all__ = ["NetworkStateEstimate", "NetworkStateEstimator", "OnlineDynamicController", "run_online_experiment"]


@dataclass(frozen=True)
class NetworkStateEstimate:
    """The estimator's belief about the current network condition."""

    delay_s: float
    loss_rate: float
    samples: int

    @property
    def confident(self) -> bool:
        """Whether enough signal arrived to act on the estimate."""
        return self.samples >= 2


class NetworkStateEstimator:
    """EWMA estimator of (D̂, L̂) from producer-side observations.

    Delay: response round-trip times divide roughly into transmission +
    2·(base + D); subtracting the known transmission/broker components
    (the producer knows its own configuration and the hardware profile)
    leaves 2·D̂.  Loss: the fraction of transport sends that needed
    retransmissions estimates per-packet loss via
    ``retx/(segments)`` ≈ L̂ (each lost packet costs one retransmission).
    """

    def __init__(
        self,
        performance_model: Optional[ProducerPerformanceModel] = None,
        smoothing: float = 0.6,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self._model = (
            performance_model
            if performance_model is not None
            else ProducerPerformanceModel()
        )
        self._smoothing = smoothing
        self._delay: Optional[float] = None
        self._loss: Optional[float] = None
        self._samples = 0

    def observe_rtt(
        self, rtt_s: float, message_bytes: int, batch_size: int
    ) -> None:
        """Feed one transport-level SRTT observation (segment → ack)."""
        if rtt_s < 0:
            raise ValueError("rtt must be non-negative")
        hardware = self._model.hardware
        wire = self._model.request_wire_bytes(message_bytes, batch_size)
        base = (
            (wire + 66) / hardware.link_capacity_bps
            + 2.0 * hardware.link_base_delay_s
        )
        inferred = max(0.0, (rtt_s - base) / 2.0)
        self._delay = (
            inferred
            if self._delay is None
            else (1 - self._smoothing) * self._delay + self._smoothing * inferred
        )
        self._samples += 1

    def observe_transport(self, segments_sent: int, retransmissions: int) -> None:
        """Feed cumulative transport counters for the last interval."""
        if segments_sent <= 0:
            return
        inferred = min(0.9, retransmissions / segments_sent)
        self._loss = (
            inferred
            if self._loss is None
            else (1 - self._smoothing) * self._loss + self._smoothing * inferred
        )
        self._samples += 1

    def observe_acks(
        self,
        acknowledged: int,
        perceived_lost: int,
        requests_sent: int = 0,
        request_retries: int = 0,
    ) -> None:
        """Feed producer-level delivery accounting for the last interval.

        Two loss proxies are available without any transport visibility:
        the fraction of produce requests that needed an application-level
        retry (each lost request or response costs one retry), and the
        fraction of records the producer gave up on.  The larger of the
        two is the pessimistic packet-loss estimate — retries capture
        transient loss the producer recovered from, give-ups capture loss
        the retries could not hide.  Intervals with no signal (nothing
        sent) are ignored.
        """
        if acknowledged < 0 or perceived_lost < 0:
            raise ValueError("ack counters must be non-negative")
        signals = []
        if requests_sent > 0:
            signals.append(request_retries / requests_sent)
        delivered = acknowledged + perceived_lost
        if delivered > 0:
            signals.append(perceived_lost / delivered)
        if not signals:
            return
        inferred = min(0.9, max(signals))
        self._loss = (
            inferred
            if self._loss is None
            else (1 - self._smoothing) * self._loss + self._smoothing * inferred
        )
        self._samples += 1

    def estimate(self) -> NetworkStateEstimate:
        """Current belief (zeros before any signal)."""
        return NetworkStateEstimate(
            delay_s=self._delay if self._delay is not None else 0.0,
            loss_rate=self._loss if self._loss is not None else 0.0,
            samples=self._samples,
        )


class OnlineDynamicController:
    """Per-interval reconfiguration from estimated network state."""

    def __init__(
        self,
        predictor: ReliabilityPredictor,
        performance_model: Optional[ProducerPerformanceModel] = None,
        weights: KpiWeights = DEFAULT_WEIGHTS,
        gamma_requirement: float = 0.95,
        steps: Optional[ParameterSteps] = None,
        hysteresis: float = 0.02,
    ) -> None:
        self.predictor = predictor
        self.performance_model = (
            performance_model
            if performance_model is not None
            else ProducerPerformanceModel()
        )
        self.weights = weights
        self.gamma_requirement = gamma_requirement
        self.steps = steps
        self.hysteresis = hysteresis

    def decide(
        self,
        estimate: NetworkStateEstimate,
        stream: StreamProfile,
        current: ProducerConfig,
    ) -> ProducerConfig:
        """Choose the next interval's configuration.

        Keeps the current configuration when the estimator has too little
        signal, or when the newly found optimum improves the predicted γ
        by less than the hysteresis margin (a restart is not free).
        """
        if not estimate.confident:
            return current
        context = SelectionContext(
            message_bytes=stream.mean_payload_bytes,
            timeliness_s=stream.timeliness_s,
            network_delay_s=estimate.delay_s,
            loss_rate=estimate.loss_rate,
        )
        selection = select_configuration(
            context,
            self.predictor,
            self.performance_model,
            weights=self.weights,
            gamma_requirement=self.gamma_requirement,
            start=current,
            steps=self.steps,
        )
        if selection.config == current:
            return current
        # Hysteresis against the *current* configuration evaluated under
        # the same estimate: a restart must buy a real γ improvement.
        try:
            current_gamma = evaluate_config(
                current, context, self.predictor, self.performance_model, self.weights
            )
        except KeyError:
            current_gamma = float("-inf")
        if selection.gamma < current_gamma + self.hysteresis:
            return current
        return selection.config


def run_online_experiment(
    trace: NetworkTrace,
    stream: StreamProfile,
    controller: OnlineDynamicController,
    seed: int = 1,
    start: Optional[ProducerConfig] = None,
    reconfig_interval_s: float = 60.0,
    messages_cap_per_interval: Optional[int] = None,
) -> DynamicRunReport:
    """Replay a trace with closed-loop (estimate → reconfigure) control.

    Unlike :func:`~repro.kpi.dynamic.run_traced_experiment`, the network
    state is **never** read from the trace by the controller: each
    interval's experiment feeds the estimator with the producer-side
    signals it produced, and the next interval's configuration comes from
    the estimate alone.
    """
    estimator = NetworkStateEstimator(controller.performance_model)
    config = start if start is not None else DEFAULT_PRODUCER_CONFIG
    intervals: List[IntervalMeasurement] = []
    stale: List[float] = []
    time_s = 0.0
    index = 0
    while time_s < trace.duration_s:
        point = trace.at(time_s)
        producers = required_producers(config, stream)
        per_producer_rate = stream.arrival_rate / producers
        if config.polling_interval_s > 0:
            effective_rate = min(per_producer_rate, 1.0 / config.polling_interval_s)
        else:
            effective_rate = per_producer_rate
        shortfall = max(0.0, per_producer_rate - effective_rate) / per_producer_rate
        count = int(round(effective_rate * reconfig_interval_s))
        if messages_cap_per_interval is not None:
            count = min(count, messages_cap_per_interval)
        scenario = Scenario(
            message_bytes=stream.mean_payload_bytes,
            timeliness_s=stream.timeliness_s,
            network_delay_s=point.delay_s,
            loss_rate=point.loss_rate,
            config=config,
            message_count=max(10, count),
            seed=seed + 101 * index,
            bursty_loss=True,
            arrival_rate=effective_rate,
        )
        experiment = Experiment(scenario)
        result = experiment.run()
        # Feed the estimator with what the producer could actually see.
        forward = experiment.channel.stats("forward")
        estimator.observe_transport(forward.segments_sent, forward.retransmissions)
        # The per-interval minimum RTT filters out self-induced queueing,
        # leaving propagation — the BBR-style estimate of path delay.
        min_rtt = experiment.channel.minimum_rtt("forward")
        if min_rtt is not None:
            estimator.observe_rtt(
                min_rtt, stream.mean_payload_bytes, config.batch_size
            )
        p_loss = min(1.0, result.p_loss * (1.0 - shortfall) + shortfall)
        intervals.append(
            IntervalMeasurement(
                messages=stream.arrival_rate * reconfig_interval_s,
                p_loss=p_loss,
                p_duplicate=result.p_duplicate,
            )
        )
        stale.append(result.p_stale)
        config = controller.decide(estimator.estimate(), stream, config)
        time_s += reconfig_interval_s
        index += 1
    rates = aggregate_rates(intervals)
    return DynamicRunReport(
        stream_name=stream.name,
        policy="online",
        intervals=intervals,
        rates=rates,
        mean_stale_fraction=sum(stale) / len(stale) if stale else 0.0,
    )
