"""Dynamic configuration of the producer (paper Section V, Table II).

The paper's scheme, reproduced faithfully:

* The network status over time is assumed known (a :class:`NetworkTrace`
  of Pareto delay and Gilbert–Elliott loss, Fig. 9).
* Configurations are generated **offline**: every re-configuration
  interval the controller reads the trace, runs the stepwise KPI search
  against the *prediction model*, and appends the chosen configuration to
  a configuration file.
* The experiment replays the file: the producer is restarted with the
  planned configuration each interval (Kafka cannot re-configure a live
  producer), while the fault injector replays the trace.
* Eq. 3 aggregates the per-interval measurements into the overall rates
  R_l and R_d that populate Table II.

Producer scaling (Section IV-C) is applied when the chosen polling
interval would throttle the stream's aggregate arrival rate: the plan
records how many producer instances are needed to keep ``N_p/δ`` constant
and the experiment divides the workload among them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from ..kafka.config import DEFAULT_PRODUCER_CONFIG, ProducerConfig
from ..kafka.semantics import DeliverySemantics
from ..models.features import FeatureVector
from ..models.predictor import ReliabilityEstimate, ReliabilityPredictor
from ..network.trace import NetworkTrace
from ..observability.telemetry import RunTelemetry
from ..observability.trace import EventKind
from ..performance.queueing import ProducerPerformanceModel
from ..testbed.experiment import run_experiment
from ..testbed.scenario import Scenario
from ..workloads.streams import StreamProfile
from .aggregate import IntervalMeasurement, OverallRates, aggregate_rates
from .selection import (
    ParameterSteps,
    SelectionContext,
    evaluate_configs,
    select_configuration,
)
from .weighted import DEFAULT_WEIGHTS, KpiWeights

__all__ = [
    "ConfigPlanEntry",
    "ConfigurationPlan",
    "DynamicConfigurationController",
    "DynamicRunReport",
    "run_traced_experiment",
    "IntervalObservation",
    "CircuitBreaker",
    "DegradedDecision",
    "DegradedModeController",
    "PARKED_CONFIG",
]


@dataclass(frozen=True)
class ConfigPlanEntry:
    """One line of the offline configuration file."""

    time_s: float
    config: ProducerConfig
    producers: int
    predicted_gamma: float


@dataclass
class ConfigurationPlan:
    """The offline configuration file: config per re-configuration time."""

    interval_s: float
    entries: List[ConfigPlanEntry] = field(default_factory=list)

    def at(self, time_s: float) -> ConfigPlanEntry:
        """Entry in effect at ``time_s``."""
        if not self.entries:
            raise ValueError("empty plan")
        index = int(time_s // self.interval_s)
        index = min(max(index, 0), len(self.entries) - 1)
        return self.entries[index]

    def save(self, path: "str | Path") -> None:
        """Write the plan as JSON (the paper's dynamicConf file)."""
        payload = {
            "interval_s": self.interval_s,
            "entries": [
                {
                    "time_s": entry.time_s,
                    "producers": entry.producers,
                    "predicted_gamma": entry.predicted_gamma,
                    "config": {
                        "semantics": entry.config.semantics.value,
                        "batch_size": entry.config.batch_size,
                        "polling_interval_s": entry.config.polling_interval_s,
                        "message_timeout_s": entry.config.message_timeout_s,
                        "request_timeout_s": entry.config.request_timeout_s,
                        "max_retries": entry.config.max_retries,
                    },
                }
                for entry in self.entries
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: "str | Path") -> "ConfigurationPlan":
        """Read a plan saved with :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        plan = cls(interval_s=payload["interval_s"])
        for entry in payload["entries"]:
            config_data = dict(entry["config"])
            config_data["semantics"] = DeliverySemantics.parse(config_data["semantics"])
            plan.entries.append(
                ConfigPlanEntry(
                    time_s=entry["time_s"],
                    config=ProducerConfig(**config_data),
                    producers=entry["producers"],
                    predicted_gamma=entry["predicted_gamma"],
                )
            )
        return plan


class DynamicConfigurationController:
    """Generates configuration plans from the prediction model."""

    def __init__(
        self,
        predictor: ReliabilityPredictor,
        performance_model: Optional[ProducerPerformanceModel] = None,
        weights: KpiWeights = DEFAULT_WEIGHTS,
        gamma_requirement: float = 0.8,
        reconfig_interval_s: float = 60.0,
        steps: Optional[ParameterSteps] = None,
        telemetry: Optional[RunTelemetry] = None,
    ) -> None:
        if reconfig_interval_s <= 0:
            raise ValueError("reconfig_interval_s must be positive")
        # Offline planning has no simulator clock; controller decisions are
        # traced at their plan time instead.
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._metrics = telemetry.metrics if telemetry is not None else None
        self.predictor = predictor
        self.performance_model = (
            performance_model
            if performance_model is not None
            else ProducerPerformanceModel()
        )
        self.weights = weights
        self.gamma_requirement = gamma_requirement
        self.reconfig_interval_s = reconfig_interval_s
        self.steps = steps

    def generate_plan(
        self,
        trace: NetworkTrace,
        stream: StreamProfile,
        start: Optional[ProducerConfig] = None,
    ) -> ConfigurationPlan:
        """Walk the trace and choose a configuration per interval.

        Each interval's search starts from the previous choice — changing
        configuration has a restart cost, so staying close is preferred
        (the paper checks γ "every other time interval" for the same
        reason).
        """
        plan = ConfigurationPlan(interval_s=self.reconfig_interval_s)
        config = start if start is not None else DEFAULT_PRODUCER_CONFIG
        time_s = 0.0
        while time_s < trace.duration_s:
            point = trace.at(time_s)
            context = SelectionContext(
                message_bytes=stream.mean_payload_bytes,
                timeliness_s=stream.timeliness_s,
                network_delay_s=point.delay_s,
                loss_rate=point.loss_rate,
            )
            selection = select_configuration(
                context,
                self.predictor,
                self.performance_model,
                weights=self.weights,
                gamma_requirement=self.gamma_requirement,
                start=config,
                steps=self.steps,
            )
            config = selection.config
            producers = required_producers(config, stream)
            if self._metrics is not None:
                self._metrics.counter("controller.decisions").inc()
                self._metrics.gauge("controller.predicted_gamma").set(selection.gamma)
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.CONTROLLER,
                    time_s,
                    semantics=config.semantics.value,
                    batch_size=config.batch_size,
                    polling_interval_s=config.polling_interval_s,
                    producers=producers,
                    predicted_gamma=selection.gamma,
                    delay_s=point.delay_s,
                    loss_rate=point.loss_rate,
                )
            plan.entries.append(
                ConfigPlanEntry(
                    time_s=time_s,
                    config=config,
                    producers=producers,
                    predicted_gamma=selection.gamma,
                )
            )
            time_s += self.reconfig_interval_s
        return plan


def required_producers(config: ProducerConfig, stream: StreamProfile) -> int:
    """Producers needed so polling does not throttle the stream (IV-C)."""
    if config.polling_interval_s <= 0:
        return 1
    return max(1, int(math.ceil(stream.arrival_rate * config.polling_interval_s)))


@dataclass
class DynamicRunReport:
    """Outcome of replaying one policy against one stream and trace."""

    stream_name: str
    policy: str
    intervals: List[IntervalMeasurement]
    rates: OverallRates
    mean_stale_fraction: float


# --------------------------------------------------------------------------
# Degraded-mode control: EWMA estimation, fallback prediction, circuit breaker
# --------------------------------------------------------------------------

#: The configuration the circuit breaker parks the producer on while the
#: cluster is unreachable: at-least-once with a delivery timeout long
#: enough to ride out a multi-second outage, slow polling so the
#: accumulator does not flood, and a deep retry budget.  Nothing here is
#: optimal for throughput — it is the configuration that loses the least
#: when the brokers come back.
PARKED_CONFIG = ProducerConfig(
    semantics=DeliverySemantics.AT_LEAST_ONCE,
    batch_size=4,
    polling_interval_s=0.04,
    message_timeout_s=6.0,
    request_timeout_s=1.0,
    retry_backoff_s=0.1,
    max_retries=20,
)


@dataclass(frozen=True)
class IntervalObservation:
    """Producer-observable signals from one control interval.

    Everything here is visible to a real producer without any oracle:
    its own request/ack accounting, the transport's segment counters and
    the minimum response round-trip time it saw.  ``waits_for_ack``
    records whether the interval's configuration requested broker
    acknowledgements at all — under fire-and-forget (``acks=0``) zero
    acknowledgements are the *normal* state, not an outage.
    """

    requests_sent: int
    acknowledged: int
    request_retries: int = 0
    perceived_lost: int = 0
    segments_sent: int = 0
    retransmissions: int = 0
    min_rtt_s: Optional[float] = None
    waits_for_ack: bool = True

    def __post_init__(self) -> None:
        for name in (
            "requests_sent",
            "acknowledged",
            "request_retries",
            "perceived_lost",
            "segments_sent",
            "retransmissions",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def ack_ratio(self) -> Optional[float]:
        """Fraction of requests acknowledged, or None without signal.

        ``None`` when nothing was sent or the configuration never asked
        for acknowledgements (fire-and-forget) — both carry no
        reachability evidence in either direction.
        """
        if not self.waits_for_ack or self.requests_sent <= 0:
            return None
        return self.acknowledged / self.requests_sent

    @property
    def broker_silent(self) -> bool:
        """Requests went out but nothing came back — the outage signature.

        The strict form (zero acknowledgements); interval-granularity
        consumers like :class:`DegradedModeController` use a threshold on
        :attr:`ack_ratio` instead, because an interval that straddles the
        crash still contains a few pre-crash acknowledgements.
        """
        return self.ack_ratio == 0.0


class CircuitBreaker:
    """Interval-granularity circuit breaker over broker reachability.

    ``closed`` is normal operation.  After ``failure_threshold``
    consecutive silent intervals (requests sent, zero acks) the breaker
    *opens*: the controller parks the producer on the safest configuration
    instead of trusting predictions built from a dead link.  After
    ``cooldown_intervals`` further silent intervals the breaker goes
    *half-open*, letting the controller run one normal selection as a
    probe; a healthy interval closes the breaker, another silent one
    re-opens it.  Any healthy interval closes the breaker immediately from
    every state.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 1, cooldown_intervals: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_intervals < 1:
            raise ValueError("cooldown_intervals must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_intervals = cooldown_intervals
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._open_intervals = 0

    @property
    def allows_selection(self) -> bool:
        """Whether the controller may run the normal stepwise search."""
        return self.state != self.OPEN

    def record(self, healthy: bool) -> str:
        """Feed one interval's health observation; returns the new state."""
        if healthy:
            self.consecutive_failures = 0
            self._open_intervals = 0
            self.state = self.CLOSED
            return self.state
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to parked.
            self.state = self.OPEN
            self._open_intervals = 0
            self.trips += 1
        elif self.state == self.OPEN:
            self._open_intervals += 1
            if self._open_intervals >= self.cooldown_intervals:
                self.state = self.HALF_OPEN
        elif self.consecutive_failures >= self.failure_threshold:
            self.state = self.OPEN
            self._open_intervals = 0
            self.trips += 1
        return self.state


@dataclass(frozen=True)
class DegradedDecision:
    """One control decision of the degraded-mode controller."""

    config: ProducerConfig
    predicted_gamma: float
    prediction_source: str
    breaker_state: str
    changed: bool
    reason: str


class _FallbackPredictorView:
    """Adapter exposing the predictor API through the fallback chain.

    The stepwise search knows ``predict_vector`` (and uses the batched
    ``predict_vectors`` when present); this view answers both via
    :meth:`ReliabilityPredictor.predict_with_fallback`, so the search
    never dies on an uncovered submodel, and records the worst fallback
    tier it had to reach.

    Note on ``worst_source``: the batched search may score candidates the
    scalar walk would never probe, so the recorded worst tier can be
    *worse* (never better) than under the scalar walk — any guard keyed
    on it becomes strictly more conservative, never less.
    """

    _TIER_ORDER = {"ann": 0, "neighbour": 1, "conservative": 2}

    def __init__(self, predictor: ReliabilityPredictor) -> None:
        self._predictor = predictor
        self.worst_source = "ann"

    def _record(self, source: str) -> None:
        if self._TIER_ORDER[source] > self._TIER_ORDER[self.worst_source]:
            self.worst_source = source

    def predict_vector(self, vector: FeatureVector) -> ReliabilityEstimate:
        fallback = self._predictor.predict_with_fallback(vector)
        self._record(fallback.source)
        return fallback.estimate

    def predict_vectors(
        self, vectors: Sequence[FeatureVector], missing: str = "raise"
    ) -> List[ReliabilityEstimate]:
        # ``missing`` is accepted for API parity but irrelevant: the
        # fallback chain covers every vector, so no slot is ever None.
        fallbacks = self._predictor.predict_with_fallback_batch(vectors)
        for fallback in fallbacks:
            self._record(fallback.source)
        return [fallback.estimate for fallback in fallbacks]


class DegradedModeController:
    """Closed-loop controller that survives estimator and predictor faults.

    Replaces the paper's oracle assumptions with three defensive layers:

    * network state comes from an EWMA estimator fed with what the
      producer actually observed (acks, timeouts, retries, RTTs) — see
      :class:`~repro.kpi.online.NetworkStateEstimator`;
    * predictions go through the ANN → nearest-neighbour → conservative
      fallback chain, so an uncovered submodel degrades the answer
      instead of crashing the controller;
    * a :class:`CircuitBreaker` watches for broker silence and parks the
      producer on :data:`PARKED_CONFIG` during outages, probing its way
      back once the cluster answers again.

    Hysteresis plus a minimum-hold window damp configuration flapping:
    a reconfiguration must buy at least ``hysteresis`` of predicted γ and
    cannot follow another one within ``min_hold_intervals`` intervals.
    Every decision is a pure function of the observations fed in, so runs
    stay bit-identical under a fixed seed.
    """

    def __init__(
        self,
        predictor: ReliabilityPredictor,
        performance_model: Optional[ProducerPerformanceModel] = None,
        weights: KpiWeights = DEFAULT_WEIGHTS,
        gamma_requirement: float = 0.8,
        steps: Optional[ParameterSteps] = None,
        hysteresis: float = 0.02,
        min_hold_intervals: int = 2,
        parked_config: ProducerConfig = PARKED_CONFIG,
        breaker: Optional[CircuitBreaker] = None,
        silence_threshold: float = 0.1,
    ) -> None:
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if min_hold_intervals < 1:
            raise ValueError("min_hold_intervals must be >= 1")
        if not 0.0 <= silence_threshold < 1.0:
            raise ValueError("silence_threshold must be in [0, 1)")
        # Imported lazily: kpi.online imports this module at load time.
        from .online import NetworkStateEstimator

        self.predictor = predictor
        self.performance_model = (
            performance_model
            if performance_model is not None
            else ProducerPerformanceModel()
        )
        self.weights = weights
        self.gamma_requirement = gamma_requirement
        self.steps = steps
        self.hysteresis = hysteresis
        self.min_hold_intervals = min_hold_intervals
        self.parked_config = parked_config
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.silence_threshold = silence_threshold
        self.estimator = NetworkStateEstimator(self.performance_model)
        self._intervals_since_change = min_hold_intervals

    def observe(
        self,
        observation: IntervalObservation,
        message_bytes: int,
        batch_size: int,
    ) -> None:
        """Feed one interval's producer-side signals into the estimator.

        An interval counts as *silent* when at most ``silence_threshold``
        of its requests were acknowledged — the strict zero-ack test would
        miss an outage whose interval straddles the crash.  Intervals with
        no reachability signal at all (nothing sent, or a fire-and-forget
        configuration that never asks for acks) skip the breaker entirely:
        recording "healthy" there would wrongly close an open breaker.
        """
        ratio = observation.ack_ratio
        if ratio is not None:
            self.breaker.record(healthy=ratio > self.silence_threshold)
        if observation.segments_sent > 0:
            self.estimator.observe_transport(
                observation.segments_sent, observation.retransmissions
            )
        self.estimator.observe_acks(
            observation.acknowledged,
            observation.perceived_lost,
            requests_sent=observation.requests_sent,
            request_retries=observation.request_retries,
        )
        if observation.min_rtt_s is not None:
            self.estimator.observe_rtt(
                observation.min_rtt_s, message_bytes, batch_size
            )

    def _gamma_of(
        self, config: ProducerConfig, context: SelectionContext
    ) -> "tuple[float, str]":
        view = _FallbackPredictorView(self.predictor)
        # Batched entry point (batch of one): repeated control ticks under
        # unchanged conditions serve from the predictor's memo.
        gamma = evaluate_configs(
            [config], context, view, self.performance_model, self.weights
        )[0]
        return gamma, view.worst_source

    def decide(
        self, stream: StreamProfile, current: ProducerConfig
    ) -> DegradedDecision:
        """Choose the next interval's configuration from current beliefs."""
        estimate = self.estimator.estimate()
        context = SelectionContext(
            message_bytes=stream.mean_payload_bytes,
            timeliness_s=stream.timeliness_s,
            network_delay_s=estimate.delay_s,
            loss_rate=estimate.loss_rate,
        )
        self._intervals_since_change += 1
        if not self.breaker.allows_selection:
            gamma, source = self._gamma_of(self.parked_config, context)
            changed = self.parked_config != current
            if changed:
                self._intervals_since_change = 0
            return DegradedDecision(
                config=self.parked_config,
                predicted_gamma=gamma,
                prediction_source=source,
                breaker_state=self.breaker.state,
                changed=changed,
                reason="parked",
            )
        current_gamma, current_source = self._gamma_of(current, context)
        if not estimate.confident:
            return DegradedDecision(
                config=current,
                predicted_gamma=current_gamma,
                prediction_source=current_source,
                breaker_state=self.breaker.state,
                changed=False,
                reason="insufficient_signal",
            )
        if self._intervals_since_change < self.min_hold_intervals:
            return DegradedDecision(
                config=current,
                predicted_gamma=current_gamma,
                prediction_source=current_source,
                breaker_state=self.breaker.state,
                changed=False,
                reason="held",
            )
        view = _FallbackPredictorView(self.predictor)
        selection = select_configuration(
            context,
            view,
            self.performance_model,
            weights=self.weights,
            gamma_requirement=self.gamma_requirement,
            start=current,
            steps=self.steps,
        )
        # Observability guard: when predictions already come from a
        # degraded fallback tier, refuse to switch to a fire-and-forget
        # configuration — it would turn off the ack stream, the breaker's
        # only reachability signal, exactly when the controller is flying
        # blind.  With healthy ANN coverage the trade-off is the model's
        # call and the guard stays out of the way.
        blind_switch = (
            view.worst_source != "ann"
            and not selection.config.semantics.waits_for_ack
            and current.semantics.waits_for_ack
        )
        if (
            selection.config == current
            or selection.gamma < current_gamma + self.hysteresis
            or blind_switch
        ):
            return DegradedDecision(
                config=current,
                predicted_gamma=current_gamma,
                prediction_source=current_source,
                breaker_state=self.breaker.state,
                changed=False,
                reason="held",
            )
        self._intervals_since_change = 0
        chosen_gamma, chosen_source = self._gamma_of(selection.config, context)
        return DegradedDecision(
            config=selection.config,
            predicted_gamma=chosen_gamma,
            prediction_source=chosen_source,
            breaker_state=self.breaker.state,
            changed=True,
            reason="reconfigured",
        )


def run_traced_experiment(
    trace: NetworkTrace,
    stream: StreamProfile,
    plan: Optional[ConfigurationPlan] = None,
    static_config: Optional[ProducerConfig] = None,
    seed: int = 1,
    messages_cap_per_interval: Optional[int] = None,
) -> DynamicRunReport:
    """Replay a trace against a policy and aggregate Eq. 3.

    Exactly one of ``plan`` (dynamic policy) or ``static_config``
    (default policy) must be given.  Each trace interval runs as its own
    testbed experiment — the paper restarts the producer on every
    configuration change anyway — and contributes a workload-weighted
    interval measurement.
    """
    if (plan is None) == (static_config is None):
        raise ValueError("give exactly one of plan or static_config")
    intervals: List[IntervalMeasurement] = []
    stale_fractions: List[float] = []
    policy = "dynamic" if plan is not None else "default"
    for index, point in enumerate(trace):
        if plan is not None:
            entry = plan.at(point.time_s)
            config, producers = entry.config, entry.producers
        else:
            config, producers = static_config, 1
        interval_messages = stream.arrival_rate * trace.interval_s
        per_producer_rate = stream.arrival_rate / producers
        # Producers ingest at most 1/δ each; workload beyond that backs up
        # upstream indefinitely and is charged as loss (never delivered in
        # time under a finite run).
        if config.polling_interval_s > 0:
            effective_rate = min(per_producer_rate, 1.0 / config.polling_interval_s)
        else:
            effective_rate = per_producer_rate
        shortfall = max(0.0, per_producer_rate - effective_rate) / per_producer_rate
        count = int(round(effective_rate * trace.interval_s))
        if messages_cap_per_interval is not None:
            count = min(count, messages_cap_per_interval)
        count = max(10, count)
        scenario = Scenario(
            message_bytes=stream.mean_payload_bytes,
            timeliness_s=stream.timeliness_s,
            network_delay_s=point.delay_s,
            loss_rate=point.loss_rate,
            config=config,
            message_count=count,
            seed=seed + 31 * index,
            bursty_loss=True,
            arrival_rate=effective_rate,
        )
        result = run_experiment(scenario)
        p_loss = min(1.0, result.p_loss * (1.0 - shortfall) + shortfall)
        intervals.append(
            IntervalMeasurement(
                messages=interval_messages,
                p_loss=p_loss,
                p_duplicate=result.p_duplicate,
            )
        )
        stale_fractions.append(result.p_stale)
    rates = aggregate_rates(intervals)
    mean_stale = sum(stale_fractions) / len(stale_fractions) if stale_fractions else 0.0
    return DynamicRunReport(
        stream_name=stream.name,
        policy=policy,
        intervals=intervals,
        rates=rates,
        mean_stale_fraction=mean_stale,
    )
