"""Dynamic configuration of the producer (paper Section V, Table II).

The paper's scheme, reproduced faithfully:

* The network status over time is assumed known (a :class:`NetworkTrace`
  of Pareto delay and Gilbert–Elliott loss, Fig. 9).
* Configurations are generated **offline**: every re-configuration
  interval the controller reads the trace, runs the stepwise KPI search
  against the *prediction model*, and appends the chosen configuration to
  a configuration file.
* The experiment replays the file: the producer is restarted with the
  planned configuration each interval (Kafka cannot re-configure a live
  producer), while the fault injector replays the trace.
* Eq. 3 aggregates the per-interval measurements into the overall rates
  R_l and R_d that populate Table II.

Producer scaling (Section IV-C) is applied when the chosen polling
interval would throttle the stream's aggregate arrival rate: the plan
records how many producer instances are needed to keep ``N_p/δ`` constant
and the experiment divides the workload among them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..kafka.config import DEFAULT_PRODUCER_CONFIG, ProducerConfig
from ..kafka.semantics import DeliverySemantics
from ..models.predictor import ReliabilityPredictor
from ..network.trace import NetworkTrace
from ..observability.trace import EventKind
from ..performance.queueing import ProducerPerformanceModel
from ..testbed.experiment import run_experiment
from ..testbed.scenario import Scenario
from ..workloads.streams import StreamProfile
from .aggregate import IntervalMeasurement, OverallRates, aggregate_rates
from .selection import ParameterSteps, SelectionContext, select_configuration
from .weighted import DEFAULT_WEIGHTS, KpiWeights

__all__ = [
    "ConfigPlanEntry",
    "ConfigurationPlan",
    "DynamicConfigurationController",
    "DynamicRunReport",
    "run_traced_experiment",
]


@dataclass(frozen=True)
class ConfigPlanEntry:
    """One line of the offline configuration file."""

    time_s: float
    config: ProducerConfig
    producers: int
    predicted_gamma: float


@dataclass
class ConfigurationPlan:
    """The offline configuration file: config per re-configuration time."""

    interval_s: float
    entries: List[ConfigPlanEntry] = field(default_factory=list)

    def at(self, time_s: float) -> ConfigPlanEntry:
        """Entry in effect at ``time_s``."""
        if not self.entries:
            raise ValueError("empty plan")
        index = int(time_s // self.interval_s)
        index = min(max(index, 0), len(self.entries) - 1)
        return self.entries[index]

    def save(self, path: "str | Path") -> None:
        """Write the plan as JSON (the paper's dynamicConf file)."""
        payload = {
            "interval_s": self.interval_s,
            "entries": [
                {
                    "time_s": entry.time_s,
                    "producers": entry.producers,
                    "predicted_gamma": entry.predicted_gamma,
                    "config": {
                        "semantics": entry.config.semantics.value,
                        "batch_size": entry.config.batch_size,
                        "polling_interval_s": entry.config.polling_interval_s,
                        "message_timeout_s": entry.config.message_timeout_s,
                        "request_timeout_s": entry.config.request_timeout_s,
                        "max_retries": entry.config.max_retries,
                    },
                }
                for entry in self.entries
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: "str | Path") -> "ConfigurationPlan":
        """Read a plan saved with :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        plan = cls(interval_s=payload["interval_s"])
        for entry in payload["entries"]:
            config_data = dict(entry["config"])
            config_data["semantics"] = DeliverySemantics.parse(config_data["semantics"])
            plan.entries.append(
                ConfigPlanEntry(
                    time_s=entry["time_s"],
                    config=ProducerConfig(**config_data),
                    producers=entry["producers"],
                    predicted_gamma=entry["predicted_gamma"],
                )
            )
        return plan


class DynamicConfigurationController:
    """Generates configuration plans from the prediction model."""

    def __init__(
        self,
        predictor: ReliabilityPredictor,
        performance_model: Optional[ProducerPerformanceModel] = None,
        weights: KpiWeights = DEFAULT_WEIGHTS,
        gamma_requirement: float = 0.8,
        reconfig_interval_s: float = 60.0,
        steps: Optional[ParameterSteps] = None,
        telemetry=None,
    ) -> None:
        if reconfig_interval_s <= 0:
            raise ValueError("reconfig_interval_s must be positive")
        # Offline planning has no simulator clock; controller decisions are
        # traced at their plan time instead.
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._metrics = telemetry.metrics if telemetry is not None else None
        self.predictor = predictor
        self.performance_model = (
            performance_model
            if performance_model is not None
            else ProducerPerformanceModel()
        )
        self.weights = weights
        self.gamma_requirement = gamma_requirement
        self.reconfig_interval_s = reconfig_interval_s
        self.steps = steps

    def generate_plan(
        self,
        trace: NetworkTrace,
        stream: StreamProfile,
        start: Optional[ProducerConfig] = None,
    ) -> ConfigurationPlan:
        """Walk the trace and choose a configuration per interval.

        Each interval's search starts from the previous choice — changing
        configuration has a restart cost, so staying close is preferred
        (the paper checks γ "every other time interval" for the same
        reason).
        """
        plan = ConfigurationPlan(interval_s=self.reconfig_interval_s)
        config = start if start is not None else DEFAULT_PRODUCER_CONFIG
        time_s = 0.0
        while time_s < trace.duration_s:
            point = trace.at(time_s)
            context = SelectionContext(
                message_bytes=stream.mean_payload_bytes,
                timeliness_s=stream.timeliness_s,
                network_delay_s=point.delay_s,
                loss_rate=point.loss_rate,
            )
            selection = select_configuration(
                context,
                self.predictor,
                self.performance_model,
                weights=self.weights,
                gamma_requirement=self.gamma_requirement,
                start=config,
                steps=self.steps,
            )
            config = selection.config
            producers = required_producers(config, stream)
            if self._metrics is not None:
                self._metrics.counter("controller.decisions").inc()
                self._metrics.gauge("controller.predicted_gamma").set(selection.gamma)
            if self._tracer is not None:
                self._tracer.emit(
                    EventKind.CONTROLLER,
                    time_s,
                    semantics=config.semantics.value,
                    batch_size=config.batch_size,
                    polling_interval_s=config.polling_interval_s,
                    producers=producers,
                    predicted_gamma=selection.gamma,
                    delay_s=point.delay_s,
                    loss_rate=point.loss_rate,
                )
            plan.entries.append(
                ConfigPlanEntry(
                    time_s=time_s,
                    config=config,
                    producers=producers,
                    predicted_gamma=selection.gamma,
                )
            )
            time_s += self.reconfig_interval_s
        return plan


def required_producers(config: ProducerConfig, stream: StreamProfile) -> int:
    """Producers needed so polling does not throttle the stream (IV-C)."""
    if config.polling_interval_s <= 0:
        return 1
    return max(1, int(math.ceil(stream.arrival_rate * config.polling_interval_s)))


@dataclass
class DynamicRunReport:
    """Outcome of replaying one policy against one stream and trace."""

    stream_name: str
    policy: str
    intervals: List[IntervalMeasurement]
    rates: OverallRates
    mean_stale_fraction: float


def run_traced_experiment(
    trace: NetworkTrace,
    stream: StreamProfile,
    plan: Optional[ConfigurationPlan] = None,
    static_config: Optional[ProducerConfig] = None,
    seed: int = 1,
    messages_cap_per_interval: Optional[int] = None,
) -> DynamicRunReport:
    """Replay a trace against a policy and aggregate Eq. 3.

    Exactly one of ``plan`` (dynamic policy) or ``static_config``
    (default policy) must be given.  Each trace interval runs as its own
    testbed experiment — the paper restarts the producer on every
    configuration change anyway — and contributes a workload-weighted
    interval measurement.
    """
    if (plan is None) == (static_config is None):
        raise ValueError("give exactly one of plan or static_config")
    intervals: List[IntervalMeasurement] = []
    stale_fractions: List[float] = []
    policy = "dynamic" if plan is not None else "default"
    for index, point in enumerate(trace):
        if plan is not None:
            entry = plan.at(point.time_s)
            config, producers = entry.config, entry.producers
        else:
            config, producers = static_config, 1
        interval_messages = stream.arrival_rate * trace.interval_s
        per_producer_rate = stream.arrival_rate / producers
        # Producers ingest at most 1/δ each; workload beyond that backs up
        # upstream indefinitely and is charged as loss (never delivered in
        # time under a finite run).
        if config.polling_interval_s > 0:
            effective_rate = min(per_producer_rate, 1.0 / config.polling_interval_s)
        else:
            effective_rate = per_producer_rate
        shortfall = max(0.0, per_producer_rate - effective_rate) / per_producer_rate
        count = int(round(effective_rate * trace.interval_s))
        if messages_cap_per_interval is not None:
            count = min(count, messages_cap_per_interval)
        count = max(10, count)
        scenario = Scenario(
            message_bytes=stream.mean_payload_bytes,
            timeliness_s=stream.timeliness_s,
            network_delay_s=point.delay_s,
            loss_rate=point.loss_rate,
            config=config,
            message_count=count,
            seed=seed + 31 * index,
            bursty_loss=True,
            arrival_rate=effective_rate,
        )
        result = run_experiment(scenario)
        p_loss = min(1.0, result.p_loss * (1.0 - shortfall) + shortfall)
        intervals.append(
            IntervalMeasurement(
                messages=interval_messages,
                p_loss=p_loss,
                p_duplicate=result.p_duplicate,
            )
        )
        stale_fractions.append(result.p_stale)
    rates = aggregate_rates(intervals)
    mean_stale = sum(stale_fractions) / len(stale_fractions) if stale_fractions else 0.0
    return DynamicRunReport(
        stream_name=stream.name,
        policy=policy,
        intervals=intervals,
        rates=rates,
        mean_stale_fraction=mean_stale,
    )
