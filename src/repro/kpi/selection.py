"""Configuration selection by stepwise KPI search (paper Section V).

"For each parameter, we move its current value stepwise forward or
backward and substitute the value into our prediction model to obtain the
predicted results.  We repeat this until the predicted γ meets the
requirement."  The purpose is explicitly *not* to find the maximum γ but
the first configuration satisfying the user's requirement — the outputs
are near-monotone in the inputs, so a greedy coordinate walk suffices.

Also implements the Section IV-C producer scaling rule
``N_p / δ = N_p' / (δ + Δδ)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kafka.config import ProducerConfig
from ..kafka.semantics import DeliverySemantics
from ..models.features import FeatureVector
from ..models.predictor import ReliabilityPredictor
from ..performance.queueing import ProducerPerformanceModel
from .weighted import DEFAULT_WEIGHTS, KpiWeights, kpi_from_estimates

__all__ = [
    "SelectionContext",
    "ParameterSteps",
    "SelectionResult",
    "evaluate_config",
    "select_configuration",
    "scale_producers",
]


@dataclass(frozen=True)
class SelectionContext:
    """The environment a configuration is being chosen for."""

    message_bytes: int
    timeliness_s: float
    network_delay_s: float
    loss_rate: float

    def feature_vector(self, config: ProducerConfig) -> FeatureVector:
        """Combine environment and configuration into model inputs."""
        return FeatureVector(
            message_bytes=float(self.message_bytes),
            timeliness_s=float(self.timeliness_s),
            network_delay_s=float(self.network_delay_s),
            loss_rate=float(self.loss_rate),
            semantics=config.semantics,
            batch_size=float(config.batch_size),
            polling_interval_s=float(config.polling_interval_s),
            message_timeout_s=float(config.message_timeout_s),
        )


@dataclass(frozen=True)
class ParameterSteps:
    """Candidate values per tunable parameter, in stepwise order."""

    semantics: Sequence[DeliverySemantics] = (
        DeliverySemantics.AT_LEAST_ONCE,
        DeliverySemantics.AT_MOST_ONCE,
    )
    batch_size: Sequence[int] = (1, 2, 3, 4, 6, 8, 10)
    polling_interval_s: Sequence[float] = (0.0, 0.02, 0.04, 0.06, 0.09)
    message_timeout_s: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0)


@dataclass
class SelectionResult:
    """Outcome of a stepwise search."""

    config: ProducerConfig
    gamma: float
    met_requirement: bool
    steps_taken: int
    trace: List[Tuple[str, float]] = field(default_factory=list)


def evaluate_config(
    config: ProducerConfig,
    context: SelectionContext,
    predictor: ReliabilityPredictor,
    performance_model: ProducerPerformanceModel,
    weights: KpiWeights = DEFAULT_WEIGHTS,
) -> float:
    """Predicted γ of one configuration in one environment."""
    reliability = predictor.predict_vector(context.feature_vector(config))
    performance = performance_model.predict(
        config, context.message_bytes, context.network_delay_s
    )
    return kpi_from_estimates(performance, reliability, weights)


def select_configuration(
    context: SelectionContext,
    predictor: ReliabilityPredictor,
    performance_model: ProducerPerformanceModel,
    weights: KpiWeights = DEFAULT_WEIGHTS,
    gamma_requirement: float = 0.8,
    start: Optional[ProducerConfig] = None,
    steps: Optional[ParameterSteps] = None,
    max_rounds: int = 8,
) -> SelectionResult:
    """Stepwise coordinate search until γ meets the requirement.

    Each round walks the parameters in a fixed order; for each, the
    current value is moved one step at a time in the direction that
    improves the predicted γ, stopping at a local optimum for that
    coordinate.  The search exits as soon as the requirement is met (the
    paper's criterion) or when a full round makes no move.
    """
    steps = steps if steps is not None else ParameterSteps()
    config = start if start is not None else ProducerConfig()
    try:
        gamma = evaluate_config(config, context, predictor, performance_model, weights)
    except KeyError:
        # No submodel covers the starting configuration; force the search
        # to look for one that is covered.
        gamma = float("-inf")
    result = SelectionResult(config, gamma, gamma >= gamma_requirement, 0)
    result.trace.append(("start", gamma))
    if result.met_requirement:
        return result

    def candidates(parameter: str) -> Sequence:
        return getattr(steps, parameter)

    def with_value(base: ProducerConfig, parameter: str, value) -> ProducerConfig:
        return base.with_(**{parameter: value})

    parameters = ["semantics", "batch_size", "polling_interval_s", "message_timeout_s"]
    for _round in range(max_rounds):
        moved = False
        for parameter in parameters:
            values = list(candidates(parameter))
            current_value = getattr(config, parameter)
            if current_value not in values:
                values = sorted(
                    set(values) | {current_value},
                    key=lambda v: (str(v) if parameter == "semantics" else float(v)),
                )
            index = values.index(current_value)
            improved = True
            while improved:
                improved = False
                for direction in (+1, -1):
                    neighbour = index + direction
                    if not 0 <= neighbour < len(values):
                        continue
                    candidate = with_value(config, parameter, values[neighbour])
                    try:
                        candidate_gamma = evaluate_config(
                            candidate, context, predictor, performance_model, weights
                        )
                    except KeyError:
                        continue  # no submodel for that semantics/region
                    result.steps_taken += 1
                    if candidate_gamma > gamma + 1e-9:
                        config, gamma, index = candidate, candidate_gamma, neighbour
                        result.trace.append((f"{parameter}={values[neighbour]}", gamma))
                        moved = True
                        improved = True
                        break
                if gamma >= gamma_requirement:
                    result.config, result.gamma = config, gamma
                    result.met_requirement = True
                    return result
        if not moved:
            break
    result.config, result.gamma = config, max(gamma, 0.0)
    result.met_requirement = gamma >= gamma_requirement
    return result


def scale_producers(
    current_producers: int,
    current_polling_interval_s: float,
    target_polling_interval_s: float,
) -> int:
    """Section IV-C scaling rule: keep the aggregate arrival rate.

    ``N_p / δ = N_p' / (δ + Δδ)`` — increasing each producer's polling
    interval from δ to δ+Δδ requires proportionally more producers.
    """
    if current_producers < 1:
        raise ValueError("current_producers must be >= 1")
    if current_polling_interval_s <= 0 or target_polling_interval_s <= 0:
        raise ValueError("polling intervals must be positive for the scaling rule")
    scaled = current_producers * target_polling_interval_s / current_polling_interval_s
    return max(current_producers, int(math.ceil(scaled)))
