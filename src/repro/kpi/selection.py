"""Configuration selection by stepwise KPI search (paper Section V).

"For each parameter, we move its current value stepwise forward or
backward and substitute the value into our prediction model to obtain the
predicted results.  We repeat this until the predicted γ meets the
requirement."  The purpose is explicitly *not* to find the maximum γ but
the first configuration satisfying the user's requirement — the outputs
are near-monotone in the inputs, so a greedy coordinate walk suffices.

Also implements the Section IV-C producer scaling rule
``N_p / δ = N_p' / (δ + Δδ)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kafka.config import ProducerConfig
from ..kafka.semantics import DeliverySemantics
from ..models.features import FeatureVector
from ..models.predictor import ReliabilityPredictor
from ..performance.queueing import ProducerPerformanceModel
from .weighted import DEFAULT_WEIGHTS, KpiWeights, kpi_from_estimates

__all__ = [
    "SelectionContext",
    "ParameterSteps",
    "SelectionResult",
    "evaluate_config",
    "evaluate_configs",
    "select_configuration",
    "scale_producers",
]


@dataclass(frozen=True)
class SelectionContext:
    """The environment a configuration is being chosen for."""

    message_bytes: int
    timeliness_s: float
    network_delay_s: float
    loss_rate: float

    def feature_vector(self, config: ProducerConfig) -> FeatureVector:
        """Combine environment and configuration into model inputs."""
        return FeatureVector(
            message_bytes=float(self.message_bytes),
            timeliness_s=float(self.timeliness_s),
            network_delay_s=float(self.network_delay_s),
            loss_rate=float(self.loss_rate),
            semantics=config.semantics,
            batch_size=float(config.batch_size),
            polling_interval_s=float(config.polling_interval_s),
            message_timeout_s=float(config.message_timeout_s),
        )


@dataclass(frozen=True)
class ParameterSteps:
    """Candidate values per tunable parameter, in stepwise order."""

    semantics: Sequence[DeliverySemantics] = (
        DeliverySemantics.AT_LEAST_ONCE,
        DeliverySemantics.AT_MOST_ONCE,
    )
    batch_size: Sequence[int] = (1, 2, 3, 4, 6, 8, 10)
    polling_interval_s: Sequence[float] = (0.0, 0.02, 0.04, 0.06, 0.09)
    message_timeout_s: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0)


@dataclass
class SelectionResult:
    """Outcome of a stepwise search."""

    config: ProducerConfig
    gamma: float
    met_requirement: bool
    steps_taken: int
    trace: List[Tuple[str, float]] = field(default_factory=list)


def evaluate_config(
    config: ProducerConfig,
    context: SelectionContext,
    predictor: ReliabilityPredictor,
    performance_model: ProducerPerformanceModel,
    weights: KpiWeights = DEFAULT_WEIGHTS,
) -> float:
    """Predicted γ of one configuration in one environment."""
    reliability = predictor.predict_vector(context.feature_vector(config))
    performance = performance_model.predict(
        config, context.message_bytes, context.network_delay_s
    )
    return kpi_from_estimates(performance, reliability, weights)


def _predict_reliability_many(
    predictor: ReliabilityPredictor, vectors: Sequence[FeatureVector]
) -> List[Optional["object"]]:
    """Reliability estimates for many vectors, ``None`` where uncovered.

    Duck-typed: predictors exposing ``predict_vectors`` (the batched fast
    path) serve the whole list with one forward pass per submodel group;
    anything else — stubs, adapters wrapping only ``predict_vector`` —
    falls back to the scalar loop with the same ``KeyError`` → ``None``
    convention, so both shapes plug into the same callers.
    """
    batched = getattr(predictor, "predict_vectors", None)
    if batched is not None:
        return batched(vectors, missing="none")
    estimates: List[Optional[object]] = []
    for vector in vectors:
        try:
            estimates.append(predictor.predict_vector(vector))
        except KeyError:
            estimates.append(None)
    return estimates


def evaluate_configs(
    configs: Sequence[ProducerConfig],
    context: SelectionContext,
    predictor: ReliabilityPredictor,
    performance_model: ProducerPerformanceModel,
    weights: KpiWeights = DEFAULT_WEIGHTS,
) -> List[Optional[float]]:
    """Predicted γ for many configurations at once.

    Entry ``i`` is bitwise-identical to
    ``evaluate_config(configs[i], ...)``, or ``None`` where that call
    would raise ``KeyError`` (no submodel covers the candidate).  When the
    predictor exposes ``predict_vectors`` the reliability estimates come
    from one vectorised forward pass per submodel group; predictors that
    only implement ``predict_vector`` (stubs, adapters) fall back to the
    scalar loop, so the call never changes behaviour — only cost.

    The performance model side is closed-form per candidate and memoised
    inside :meth:`ProducerPerformanceModel.predict`, so the repeated
    re-scoring a hill-climb does costs one dict hit per revisit.
    """
    configs = list(configs)
    vectors = [context.feature_vector(config) for config in configs]
    estimates = _predict_reliability_many(predictor, vectors)
    gammas: List[Optional[float]] = []
    for config, reliability in zip(configs, estimates):
        if reliability is None:
            gammas.append(None)
            continue
        performance = performance_model.predict(
            config, context.message_bytes, context.network_delay_s
        )
        gammas.append(kpi_from_estimates(performance, reliability, weights))
    return gammas


def select_configuration(
    context: SelectionContext,
    predictor: ReliabilityPredictor,
    performance_model: ProducerPerformanceModel,
    weights: KpiWeights = DEFAULT_WEIGHTS,
    gamma_requirement: float = 0.8,
    start: Optional[ProducerConfig] = None,
    steps: Optional[ParameterSteps] = None,
    max_rounds: int = 8,
    batched: bool = True,
) -> SelectionResult:
    """Stepwise coordinate search until γ meets the requirement.

    Each round walks the parameters in a fixed order; for each, the
    current value is moved one step at a time in the direction that
    improves the predicted γ, stopping at a local optimum for that
    coordinate.  The search exits as soon as the requirement is met (the
    paper's criterion) or when a full round makes no move.

    With ``batched=True`` (the default) every coordinate scores its whole
    candidate axis in one :func:`evaluate_configs` call and the walk then
    *replays* the scalar decision sequence against the precomputed γ
    values.  Because each γ is bitwise-identical to the scalar
    ``evaluate_config`` result and the comparison sequence (direction
    order, strict ``> γ + 1e-9`` improvement threshold, first-improvement
    tie-breaking, early exit on the requirement) is untouched, the
    returned configuration, γ, ``steps_taken`` and trace are all
    bit-identical to ``batched=False`` — only the prediction cost drops
    from one MLP forward pass per probe to one per (coordinate, round).
    """
    steps = steps if steps is not None else ParameterSteps()
    config = start if start is not None else ProducerConfig()
    start_gamma = evaluate_configs(
        [config], context, predictor, performance_model, weights
    )[0]
    # None ⇔ no submodel covers the starting configuration; force the
    # search to look for one that is covered.
    gamma = start_gamma if start_gamma is not None else float("-inf")
    result = SelectionResult(config, gamma, gamma >= gamma_requirement, 0)
    result.trace.append(("start", gamma))
    if result.met_requirement:
        return result

    def candidates(parameter: str) -> Sequence:
        return getattr(steps, parameter)

    def with_value(base: ProducerConfig, parameter: str, value: object) -> ProducerConfig:
        return base.with_(**{parameter: value})

    parameters = ["semantics", "batch_size", "polling_interval_s", "message_timeout_s"]
    for _round in range(max_rounds):
        moved = False
        for parameter in parameters:
            values = list(candidates(parameter))
            current_value = getattr(config, parameter)
            if current_value not in values:
                values = sorted(
                    set(values) | {current_value},
                    key=lambda v: (str(v) if parameter == "semantics" else float(v)),
                )
            index = values.index(current_value)
            # The walk only ever varies `parameter` while on this
            # coordinate, and with_() overwrites that field, so the axis
            # built from the entry config stays valid for the whole walk.
            axis_configs = [with_value(config, parameter, value) for value in values]
            axis_estimates: Dict[int, Optional[object]] = {}

            def reliability_at(position: int) -> Optional[object]:
                # Two-stage batched fetch.  The first request covers just
                # the entry value's immediate neighbours — the only probes
                # a non-moving coordinate ever makes, so a stuck walk pays
                # for two candidates like the scalar path (in one call).
                # The moment the walk wants anything more, the rest of the
                # axis is fetched in a single grouped forward pass: a
                # moving walk re-probes values step by step, and the batch
                # amortises all of them at once.
                if position in axis_estimates:
                    return axis_estimates[position]
                if not axis_estimates:
                    wanted = [
                        p
                        for p in (index - 1, index + 1)
                        if 0 <= p < len(values)
                    ]
                else:
                    wanted = [
                        p for p in range(len(values)) if p not in axis_estimates
                    ]
                if position not in wanted:
                    wanted.append(position)
                fetched = _predict_reliability_many(
                    predictor,
                    [context.feature_vector(axis_configs[p]) for p in wanted],
                )
                axis_estimates.update(zip(wanted, fetched))
                return axis_estimates[position]

            def gamma_at(position: int) -> Optional[float]:
                if batched:
                    reliability = reliability_at(position)
                    if reliability is None:
                        return None  # no submodel for that semantics/region
                    performance = performance_model.predict(
                        axis_configs[position],
                        context.message_bytes,
                        context.network_delay_s,
                    )
                    return kpi_from_estimates(performance, reliability, weights)
                try:
                    return evaluate_config(
                        axis_configs[position],
                        context,
                        predictor,
                        performance_model,
                        weights,
                    )
                except KeyError:
                    return None  # no submodel for that semantics/region

            improved = True
            while improved:
                improved = False
                for direction in (+1, -1):
                    neighbour = index + direction
                    if not 0 <= neighbour < len(values):
                        continue
                    candidate_gamma = gamma_at(neighbour)
                    if candidate_gamma is None:
                        continue
                    result.steps_taken += 1
                    if candidate_gamma > gamma + 1e-9:
                        config, gamma, index = (
                            axis_configs[neighbour],
                            candidate_gamma,
                            neighbour,
                        )
                        result.trace.append((f"{parameter}={values[neighbour]}", gamma))
                        moved = True
                        improved = True
                        break
                if gamma >= gamma_requirement:
                    result.config, result.gamma = config, gamma
                    result.met_requirement = True
                    return result
        if not moved:
            break
    result.config, result.gamma = config, max(gamma, 0.0)
    result.met_requirement = gamma >= gamma_requirement
    return result


def scale_producers(
    current_producers: int,
    current_polling_interval_s: float,
    target_polling_interval_s: float,
) -> int:
    """Section IV-C scaling rule: keep the aggregate arrival rate.

    ``N_p / δ = N_p' / (δ + Δδ)`` — increasing each producer's polling
    interval from δ to δ+Δδ requires proportionally more producers.
    """
    if current_producers < 1:
        raise ValueError("current_producers must be >= 1")
    if current_polling_interval_s <= 0 or target_polling_interval_s <= 0:
        raise ValueError("polling intervals must be positive for the scaling rule")
    scaled = current_producers * target_polling_interval_s / current_polling_interval_s
    return max(current_producers, int(math.ceil(scaled)))
