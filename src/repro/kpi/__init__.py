"""Weighted KPI (Eq. 2), configuration selection and dynamic configuration.

``weighted_kpi`` evaluates Eq. 2; ``select_configuration`` performs the
paper's stepwise search; ``DynamicConfigurationController`` generates the
offline configuration file and ``run_traced_experiment`` replays it over
a network trace, aggregating Eq. 3 into the Table II rates.
"""

from .aggregate import IntervalMeasurement, OverallRates, aggregate_rates
from .online import (
    NetworkStateEstimate,
    NetworkStateEstimator,
    OnlineDynamicController,
    run_online_experiment,
)
from .dynamic import (
    PARKED_CONFIG,
    CircuitBreaker,
    ConfigPlanEntry,
    ConfigurationPlan,
    DegradedDecision,
    DegradedModeController,
    DynamicConfigurationController,
    DynamicRunReport,
    IntervalObservation,
    required_producers,
    run_traced_experiment,
)
from .selection import (
    ParameterSteps,
    SelectionContext,
    SelectionResult,
    evaluate_config,
    scale_producers,
    select_configuration,
)
from .weighted import DEFAULT_WEIGHTS, KpiWeights, kpi_from_estimates, weighted_kpi

__all__ = [
    "IntervalMeasurement",
    "OverallRates",
    "aggregate_rates",
    "ConfigPlanEntry",
    "ConfigurationPlan",
    "DynamicConfigurationController",
    "DynamicRunReport",
    "IntervalObservation",
    "CircuitBreaker",
    "DegradedDecision",
    "DegradedModeController",
    "PARKED_CONFIG",
    "required_producers",
    "run_traced_experiment",
    "ParameterSteps",
    "SelectionContext",
    "SelectionResult",
    "evaluate_config",
    "scale_producers",
    "select_configuration",
    "NetworkStateEstimate",
    "NetworkStateEstimator",
    "OnlineDynamicController",
    "run_online_experiment",
    "KpiWeights",
    "DEFAULT_WEIGHTS",
    "weighted_kpi",
    "kpi_from_estimates",
]
