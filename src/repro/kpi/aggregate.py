"""Eq. 3 aggregation: overall loss and duplicate rates over a run.

``R_l = ∫λ(t)P_l(t)dt / ∫λ(t)dt`` (and likewise R_d): the per-interval
reliability metrics weighted by the workload they applied to.  The
dynamic-configuration experiment evaluates the integral as a sum over its
measurement intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["IntervalMeasurement", "OverallRates", "aggregate_rates"]


@dataclass(frozen=True)
class IntervalMeasurement:
    """One interval's workload and measured (or predicted) reliability."""

    messages: float  # λ(t)·dt for the interval
    p_loss: float
    p_duplicate: float

    def __post_init__(self) -> None:
        if self.messages < 0:
            raise ValueError("messages must be non-negative")
        for name, value in (("p_loss", self.p_loss), ("p_duplicate", self.p_duplicate)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class OverallRates:
    """The Table II row: R_l and R_d for one stream/policy."""

    r_loss: float
    r_duplicate: float
    total_messages: float


def aggregate_rates(intervals: Iterable[IntervalMeasurement]) -> OverallRates:
    """Evaluate Eq. 3 over measured intervals."""
    intervals = list(intervals)
    total = sum(interval.messages for interval in intervals)
    if total <= 0:
        raise ValueError("no workload to aggregate")
    r_loss = sum(i.messages * i.p_loss for i in intervals) / total
    r_duplicate = sum(i.messages * i.p_duplicate for i in intervals) / total
    return OverallRates(r_loss=r_loss, r_duplicate=r_duplicate, total_messages=total)
