"""The weighted KPI γ of paper Eq. 2.

``γ = ω1·φ + ω2·μ + ω3·(1 − P_l) + ω4·(1 − P_d)`` with Σωᵢ = 1, where φ
is bandwidth utilisation, μ the (normalised) service rate and P_l/P_d the
predicted reliability metrics.  The weights express what a particular
streaming application cares about; the paper supplies an empirical
default and per-stream suggestions (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..models.predictor import ReliabilityEstimate
from ..performance.queueing import PerformanceEstimate

__all__ = ["KpiWeights", "DEFAULT_WEIGHTS", "weighted_kpi", "kpi_from_estimates"]


@dataclass(frozen=True)
class KpiWeights:
    """The four KPI weights (ω1: φ, ω2: μ, ω3: 1−P_l, ω4: 1−P_d)."""

    bandwidth: float
    service_rate: float
    loss: float
    duplicate: float

    def __post_init__(self) -> None:
        values = (self.bandwidth, self.service_rate, self.loss, self.duplicate)
        if any(value < 0 for value in values):
            raise ValueError("weights must be non-negative")
        if abs(sum(values) - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {sum(values)}")

    @classmethod
    def of(cls, values: Tuple[float, float, float, float]) -> "KpiWeights":
        """Build from an (ω1, ω2, ω3, ω4) tuple."""
        return cls(*values)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """The (ω1, ω2, ω3, ω4) tuple."""
        return (self.bandwidth, self.service_rate, self.loss, self.duplicate)


#: The paper's empirical default: ω = (0.3, 0.3, 0.3, 0.1) — duplicates
#: are tolerated by most applications thanks to idempotent processing.
DEFAULT_WEIGHTS = KpiWeights(0.3, 0.3, 0.3, 0.1)


def weighted_kpi(
    bandwidth_utilization: float,
    service_rate_norm: float,
    p_loss: float,
    p_duplicate: float,
    weights: KpiWeights = DEFAULT_WEIGHTS,
) -> float:
    """Evaluate Eq. 2. All inputs must already live in [0, 1]."""
    for name, value in (
        ("bandwidth_utilization", bandwidth_utilization),
        ("service_rate_norm", service_rate_norm),
        ("p_loss", p_loss),
        ("p_duplicate", p_duplicate),
    ):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    return (
        weights.bandwidth * bandwidth_utilization
        + weights.service_rate * service_rate_norm
        + weights.loss * (1.0 - p_loss)
        + weights.duplicate * (1.0 - p_duplicate)
    )


def kpi_from_estimates(
    performance: PerformanceEstimate,
    reliability: ReliabilityEstimate,
    weights: KpiWeights = DEFAULT_WEIGHTS,
) -> float:
    """Eq. 2 from model outputs (the composition the controller uses)."""
    return weighted_kpi(
        performance.bandwidth_utilization,
        performance.service_rate_norm,
        reliability.p_loss,
        reliability.p_duplicate,
        weights,
    )
