#!/usr/bin/env python
"""Quickstart: measure Kafka producer reliability on the simulated testbed.

Reproduces the paper's core measurement loop in a few lines: define the
application scenario (message size M, network condition D/L, producer
configuration), run it against a fresh simulated Kafka cluster, and read
the two reliability metrics — the probability of message loss ``P_l`` and
the probability of message duplication ``P_d``.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import Scenario, run_experiment


def main() -> None:
    print("Kafka reliability testbed — quickstart\n")

    # A producer streaming 200-byte messages at full load over a healthy
    # network, with at-least-once delivery and a 1.5 s delivery timeout.
    healthy = Scenario(
        message_bytes=200,
        message_count=3000,
        network_delay_s=0.0,
        loss_rate=0.0,
        seed=7,
        config=ProducerConfig(
            semantics=DeliverySemantics.AT_LEAST_ONCE,
            batch_size=1,
            message_timeout_s=1.5,
        ),
    )

    # The same application after NetEm injects a 100 ms delay and 19 %
    # packet loss — the paper's Fig. 4 environment.
    degraded = healthy.with_(network_delay_s=0.100, loss_rate=0.19)

    # The paper's first remedy: batch messages before sending.
    batched = degraded.with_(config=degraded.config.with_(batch_size=5))

    rows = [["scenario", "P_l", "P_d", "throughput (msg/s)", "cases"]]
    for name, scenario in [
        ("healthy network", healthy),
        ("D=100 ms, L=19 %", degraded),
        ("same + batch B=5", batched),
    ]:
        result = run_experiment(scenario)
        cases = ", ".join(
            f"{case}={fraction:.1%}" for case, fraction in sorted(result.case_fractions.items())
        )
        rows.append(
            [
                name,
                f"{result.p_loss:.3f}",
                f"{result.p_duplicate:.4f}",
                f"{result.throughput_msgs_per_s:.1f}",
                cases,
            ]
        )
    print(render_table(rows, title="Measured reliability (consumer reconciliation)"))
    print(
        "\nEvery message carries an incremental unique key; after the run the"
        "\nconsumer reads the whole topic back and the keys are reconciled"
        "\nagainst the source — exactly the paper's methodology (Sec. III-E)."
    )


if __name__ == "__main__":
    main()
