#!/usr/bin/env python
"""A two-stage streaming pipeline (paper Fig. 1).

Builds the paper's motivating topology inside one simulation:

    upstream source → producer A → topic "raw"
        → stream processor B (consumer group) → producer B → topic "derived"

Processor B consumes ``raw`` via a two-member consumer group, applies a
filter (drops ~30 % of records, e.g. bot traffic), and republishes the
survivors — acting as a producer itself, exactly the role the paper
highlights ("in these cases it also publishes messages as a producer").
A network fault hits producer A's uplink mid-run; the end-to-end loss of
the pipeline is then reconciled stage by stage.

Run with::

    python examples/stream_pipeline.py
"""

from repro.analysis import render_table
from repro.kafka import (
    ConsumerGroup,
    DeliverySemantics,
    KafkaCluster,
    KafkaProducer,
    ProducerConfig,
    ProducerRecord,
)
from repro.network import ConstantLatency, FaultInjector, Link, NetworkFault, ReliableChannel
from repro.simulation import RngRegistry, Simulator

SOURCE_MESSAGES = 3000
SOURCE_RATE = 8.0  # msg/s: inside the scaled link's comfort zone
FILTER_KEEP = 0.7


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(2027)
    cluster = KafkaCluster(sim, broker_count=3)
    raw = cluster.create_topic("raw", partitions=4)
    derived = cluster.create_topic("derived", partitions=4)

    def make_uplink(name):
        link = Link(sim, rng.stream(name), capacity_bps=7500.0,
                    latency=ConstantLatency(0.0005))
        return link, ReliableChannel(sim, link)

    # Stage 1: producer A feeds "raw" and suffers a mid-run fault.
    link_a, channel_a = make_uplink("uplink-a")
    producer_a = KafkaProducer(
        sim, cluster, channel_a, raw,
        config=ProducerConfig(semantics=DeliverySemantics.AT_LEAST_ONCE,
                              batch_size=2, message_timeout_s=1.5),
    )
    injector = FaultInjector(sim, link_a)
    injector.inject_at(100.0, NetworkFault(delay_s=0.08, loss_rate=0.18))
    injector.clear_at(220.0)

    source_keys = set()

    def feed(index=0):
        if index >= SOURCE_MESSAGES:
            producer_a.finish_input()
            return
        record = ProducerRecord(payload_bytes=220, topic="raw")
        source_keys.add(record.key)
        producer_a.offer(record)
        sim.schedule(1.0 / SOURCE_RATE, feed, index + 1)

    sim.schedule(0.0, feed)

    # Stage 2: processor B — a consumer group feeding its own producer.
    link_b, channel_b = make_uplink("uplink-b")
    producer_b = KafkaProducer(
        sim, cluster, channel_b, derived,
        config=ProducerConfig(semantics=DeliverySemantics.EXACTLY_ONCE,
                              batch_size=2, message_timeout_s=3.0),
    )
    group = ConsumerGroup(cluster, raw, group_id="processor-b")
    workers = [group.join(f"worker-{i}") for i in range(2)]
    kept_keys = set()
    processed = set()
    filter_rng = rng.stream("filter")

    def process_tick():
        for worker in workers:
            for entry in worker.poll(max_records=50):
                if entry.key in processed:
                    continue  # at-least-once consumption: dedup by key
                processed.add(entry.key)
                if filter_rng.random() < FILTER_KEEP:
                    derived_record = ProducerRecord(payload_bytes=180, topic="derived")
                    kept_keys.add(derived_record.key)
                    producer_b.offer(derived_record)
            worker.commit()

    stop_processing = sim.every(0.5, process_tick)

    sim.run(until=SOURCE_MESSAGES / SOURCE_RATE + 120.0)
    stop_processing()
    process_tick()  # final drain
    producer_b.finish_input()
    sim.run()

    from repro.kafka import reconcile

    stage1 = reconcile(source_keys, raw)
    stage2 = reconcile(kept_keys, derived)
    rows = [["stage", "produced", "P_l", "P_d"]]
    rows.append(["A → raw (fault-injected uplink)", str(stage1.produced),
                 f"{stage1.p_loss:.2%}", f"{stage1.p_duplicate:.3%}"])
    rows.append(["B → derived (exactly-once)", str(stage2.produced),
                 f"{stage2.p_loss:.2%}", f"{stage2.p_duplicate:.3%}"])
    print(render_table(rows, title="Pipeline reconciliation per stage"))
    survivors = stage1.delivered_unique
    print(
        f"\nsource messages: {len(source_keys)}; survived stage 1: {survivors}"
        f"; kept by filter: {len(kept_keys)} (≈{FILTER_KEEP:.0%} of consumed)"
        f"; in 'derived': {stage2.delivered_unique}"
    )
    print(
        "\nStage 1 loses messages while the fault is active (at-least-once"
        "\nrecovers some); stage 2 is exactly-once and loss-free, so the"
        "\npipeline's end-to-end gap is exactly stage 1's loss plus the"
        "\nintentional filter."
    )


if __name__ == "__main__":
    main()
