#!/usr/bin/env python
"""Train the paper's ANN reliability predictor on testbed data.

Walks the full Eq. 1 pipeline:

1. collect training rows with the Fig. 3 normal/abnormal design,
2. train the per-(region, semantics) ANN submodels,
3. report the hold-out MAE (paper target: below 0.02), and
4. query the trained predictor for a configuration decision.

Run with::

    python examples/train_reliability_model.py [--full]

``--full`` uses the paper's exact hyperparameters (hidden layers
200/200/200/64, 1000 epochs) and a larger collection grid; the default is
a minutes-scale run with a reduced topology.
"""

import argparse
import sys

from repro.analysis import render_table
from repro.models import (
    FeatureVector,
    ModelRegistry,
    TrainingSettings,
    train_reliability_model,
)
from repro.kafka import DeliverySemantics, ProducerConfig
from repro.testbed import Scenario, abnormal_case_plan, normal_case_plan


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale training")
    parser.add_argument("--save", metavar="DIR", help="persist the model registry here")
    args = parser.parse_args()

    if args.full:
        base = Scenario(message_count=20_000)
        plans = [normal_case_plan(base=base), abnormal_case_plan(base=base)]
        settings = TrainingSettings()  # the paper's 200/200/200/64, SGD 0.5
    else:
        base = Scenario(message_count=1500)
        plans = [
            normal_case_plan(base=base, max_rows=60),
            abnormal_case_plan(base=base, max_rows=90),
        ]
        settings = TrainingSettings(
            hidden=(64, 32), epochs=250, learning_rate=0.3, patience=60
        )

    def progress(index, total, scenario):
        if index % 10 == 0:
            sys.stdout.write(f"\rcollecting {index + 1}/{total} experiments...")
            sys.stdout.flush()

    report = train_reliability_model(plans=plans, settings=settings, progress=progress)
    print(f"\rcollected {report.train_rows + report.test_rows} rows"
          f" ({report.train_rows} train / {report.test_rows} hold-out)")

    rows = [["submodel (region, semantics)", "training rows"]]
    for key, count in sorted(report.submodel_rows.items()):
        rows.append([f"{key[0]}, {key[1]}", str(count)])
    print(render_table(rows))
    print(f"\nhold-out MAE: {report.mae_report}")
    print(f"paper target: overall MAE < 0.02 → measured {report.overall_mae:.4f}")

    # Use the model the way the paper's Section IV does: compare the
    # predicted loss probability of candidate configurations.
    print("\nPredicted P_l for candidate configurations at D=100 ms, L=19 %:")
    candidate_rows = [["configuration", "predicted P_l", "predicted P_d"]]
    for label, batch, semantics in [
        ("stream mode (B=1), at-least-once", 1, DeliverySemantics.AT_LEAST_ONCE),
        ("batched (B=5),   at-least-once", 5, DeliverySemantics.AT_LEAST_ONCE),
        ("stream mode (B=1), at-most-once", 1, DeliverySemantics.AT_MOST_ONCE),
    ]:
        scenario = Scenario(
            message_bytes=200,
            network_delay_s=0.1,
            loss_rate=0.19,
            config=ProducerConfig(semantics=semantics, batch_size=batch,
                                  message_timeout_s=1.5),
        )
        vector = FeatureVector.from_scenario(scenario)
        if vector.submodel_key not in report.predictor.submodels:
            continue
        estimate = report.predictor.predict_scenario(scenario)
        candidate_rows.append(
            [label, f"{estimate.p_loss:.3f}", f"{estimate.p_duplicate:.4f}"]
        )
    print(render_table(candidate_rows))

    if args.save:
        registry = ModelRegistry(args.save)
        registry.save("reliability", report.predictor)
        print(f"\nmodel saved under {args.save}/reliability")


if __name__ == "__main__":
    main()
