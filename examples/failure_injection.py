#!/usr/bin/env python
"""Fault-injection tour: NetEm-style faults and broker failures.

Demonstrates the testbed's fault surface beyond the paper's evaluation:

* mid-run network degradation and recovery (NetEm reconfiguration),
* bursty Gilbert–Elliott loss vs independent loss at the same rate,
* broker crash with leader failover (the paper's future-work scenario).

Run with::

    python examples/failure_injection.py
"""

from repro.analysis import render_table
from repro.kafka import DeliverySemantics, ProducerConfig
from repro.network import NetworkFault
from repro.testbed import Experiment, Scenario


BASE = Scenario(
    message_bytes=200,
    message_count=3000,
    seed=33,
    arrival_rate=25.0,
    config=ProducerConfig(
        semantics=DeliverySemantics.AT_LEAST_ONCE,
        message_timeout_s=1.5,
    ),
)


def run_with_midrun_fault() -> tuple:
    """Clean start, 19 % loss injected for the middle third of the run."""
    experiment = Experiment(BASE)
    experiment.injector.inject_at(40.0, NetworkFault(delay_s=0.1, loss_rate=0.19))
    experiment.injector.clear_at(80.0)
    result = experiment.run()
    return result.p_loss, result.p_duplicate


def run_with_loss(bursty: bool) -> tuple:
    scenario = BASE.with_(loss_rate=0.15, bursty_loss=bursty)
    experiment = Experiment(scenario)
    result = experiment.run()
    return result.p_loss, result.p_duplicate


def run_with_broker_crash(failover: bool) -> tuple:
    experiment = Experiment(BASE)
    experiment.injector.crash_broker_at(30.0, "broker-0")
    if not failover:
        # Crash every broker: nothing can lead the partitions.
        experiment.injector.crash_broker_at(30.0, "broker-1")
        experiment.injector.crash_broker_at(30.0, "broker-2")
    result = experiment.run()
    return result.p_loss, result.p_duplicate


def main() -> None:
    rows = [["fault scenario", "P_l", "P_d"]]
    for label, (p_loss, p_duplicate) in [
        ("19 % loss injected mid-run, then cleared", run_with_midrun_fault()),
        ("15 % independent (Bernoulli) loss", run_with_loss(bursty=False)),
        ("15 % bursty (Gilbert–Elliott) loss", run_with_loss(bursty=True)),
        ("broker-0 crash with leader failover", run_with_broker_crash(True)),
        ("all brokers crash at t=30 s", run_with_broker_crash(False)),
    ]:
        rows.append([label, f"{p_loss:.2%}", f"{p_duplicate:.3%}"])
    print(render_table(rows, title="Fault injection tour (at-least-once, T_o=1.5 s)"))
    print(
        "\nNotes: bursty loss at the same average rate concentrates failures"
        "\ninto episodes the retry budget cannot ride out, so it usually hurts"
        "\nmore than independent loss; a single broker crash is absorbed by"
        "\nleader failover, while losing the whole cluster loses everything"
        "\nfrom the crash onward."
    )


if __name__ == "__main__":
    main()
