#!/usr/bin/env python
"""Capacity planning with the polling-interval scaling rule (Sec. IV-C).

An overloaded producer loses messages even on a clean network (paper
Figs. 5/6).  This example shows the remedy the paper prescribes:

1. sweep the polling interval δ to find the loss/throughput trade-off,
2. pick the δ that meets a loss target,
3. apply the scaling rule ``N_p/δ = N_p'/(δ+Δδ)`` to keep the aggregate
   arrival rate, and
4. verify the scaled deployment on the testbed.

Run with::

    python examples/capacity_planning.py
"""

from repro.analysis import FigureSeries, ascii_plot, render_table
from repro.kafka import DeliverySemantics, ProducerConfig
from repro.kpi import scale_producers
from repro.testbed import Scenario, run_experiment
from repro.workloads import GAME_TRAFFIC


def measure_loss(delta_s: float, arrival_rate=None, seed=21) -> float:
    scenario = Scenario(
        message_bytes=GAME_TRAFFIC.mean_payload_bytes,
        message_count=2500,
        seed=seed,
        arrival_rate=arrival_rate,
        config=ProducerConfig(
            semantics=DeliverySemantics.AT_MOST_ONCE,
            message_timeout_s=0.5,
            polling_interval_s=delta_s,
        ),
    )
    return run_experiment(scenario).p_loss


def main() -> None:
    loss_target = 0.05
    print(f"Goal: keep P_l below {loss_target:.0%} for game-traffic messages"
          f" ({GAME_TRAFFIC.mean_payload_bytes} B, timeliness "
          f"{GAME_TRAFFIC.timeliness_s}s) with T_o = 500 ms.\n")

    deltas = [0.0, 0.01, 0.03, 0.05, 0.07, 0.09]
    losses = [measure_loss(delta) for delta in deltas]
    series = FigureSeries(
        "P_l vs polling interval δ (single producer, full load)",
        "δ (ms)", "P_l",
        x=[delta * 1000 for delta in deltas],
    )
    series.add_curve("P_l", losses)
    print(ascii_plot(series, width=60, height=12, y_min=0.0))

    chosen = next(
        (delta for delta, loss in zip(deltas, losses) if delta > 0 and loss <= loss_target),
        deltas[-1],
    )
    print(f"\nsmallest δ meeting the target: {chosen * 1000:.0f} ms")

    # One full-load producer previously ingested the whole stream; slowing
    # it to δ means the fleet must grow to keep the aggregate rate.
    baseline_delta = 1.0 / GAME_TRAFFIC.arrival_rate
    fleet = scale_producers(1, baseline_delta, chosen)
    print(
        f"scaling rule N_p/δ = N_p'/(δ+Δδ): 1 producer at δ={baseline_delta * 1000:.1f} ms"
        f" → {fleet} producers at δ={chosen * 1000:.0f} ms"
    )

    # Verify: each scaled producer handles rate/fleet messages per second.
    per_producer_rate = GAME_TRAFFIC.arrival_rate / fleet
    rows = [["deployment", "per-producer rate", "P_l"]]
    overloaded = measure_loss(0.0)
    rows.append(["1 producer, full load", "unthrottled", f"{overloaded:.2%}"])
    scaled = measure_loss(chosen, arrival_rate=per_producer_rate)
    rows.append([
        f"{fleet} producers, δ={chosen * 1000:.0f} ms",
        f"{per_producer_rate:.1f} msg/s",
        f"{scaled:.2%}",
    ])
    print()
    print(render_table(rows, title="Before/after scaling"))
    if scaled <= loss_target:
        print("\ntarget met: the scaled fleet delivers within the loss budget.")
    else:
        print("\ntarget missed — increase the fleet or relax the timeout.")


if __name__ == "__main__":
    main()
