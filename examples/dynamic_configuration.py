#!/usr/bin/env python
"""Dynamic configuration over an unstable network (paper Section V).

End-to-end reproduction of the Table II experiment at example scale:

1. generate the Fig. 9 network trace (Pareto delay, Gilbert–Elliott loss),
2. train a quick reliability predictor on testbed data,
3. let the controller generate an offline configuration file per stream,
4. replay the trace under the default and the dynamic policy, and
5. report the Eq. 3 overall rates R_l and R_d side by side.

Run with::

    python examples/dynamic_configuration.py
"""

import sys

from repro.analysis import ascii_plot, FigureSeries, render_table
from repro.kafka import DEFAULT_PRODUCER_CONFIG
from repro.kpi import (
    DynamicConfigurationController,
    KpiWeights,
    run_traced_experiment,
)
from repro.models import TrainingSettings, train_reliability_model
from repro.network import generate_paper_trace
from repro.performance import ProducerPerformanceModel
from repro.simulation import RngRegistry
from repro.testbed import Scenario, abnormal_case_plan, normal_case_plan
from repro.workloads import PAPER_STREAMS


def main() -> None:
    rng = RngRegistry(2026)
    trace = generate_paper_trace(rng.stream("trace"), duration_s=240, interval_s=10)
    print("Network trace (Fig. 9 style):")
    series = FigureSeries("one-way delay / loss rate over time", "t (s)", "value",
                          x=[p.time_s for p in trace])
    series.add_curve("delay (s)", [p.delay_s for p in trace])
    series.add_curve("loss rate", [p.loss_rate for p in trace])
    print(ascii_plot(series, width=64, height=12))

    print("\nTraining a quick reliability predictor...")
    base = Scenario(message_count=1200)
    report = train_reliability_model(
        plans=[
            normal_case_plan(base=base, max_rows=40),
            abnormal_case_plan(base=base, max_rows=80),
        ],
        settings=TrainingSettings(hidden=(64, 32), epochs=200,
                                  learning_rate=0.3, patience=50),
        progress=lambda i, n, s: (
            sys.stdout.write(f"\r  experiment {i + 1}/{n}"), sys.stdout.flush()
        ),
    )
    print(f"\r  done — hold-out MAE {report.overall_mae:.4f}")

    performance_model = ProducerPerformanceModel()
    rows = [["stream", "policy", "R_l", "R_d", "stale"]]
    for stream in PAPER_STREAMS:
        controller = DynamicConfigurationController(
            report.predictor,
            performance_model,
            weights=KpiWeights.of(stream.kpi_weights),
            gamma_requirement=0.95,
            reconfig_interval_s=60.0,
        )
        plan = controller.generate_plan(trace, stream)
        for policy, kwargs in [
            ("default", dict(static_config=DEFAULT_PRODUCER_CONFIG)),
            ("dynamic", dict(plan=plan)),
        ]:
            outcome = run_traced_experiment(
                trace, stream, messages_cap_per_interval=250, **kwargs
            )
            rows.append([
                stream.name,
                policy,
                f"{outcome.rates.r_loss:.2%}",
                f"{outcome.rates.r_duplicate:.2%}",
                f"{outcome.mean_stale_fraction:.2%}",
            ])
    print()
    print(render_table(rows, title="Table II (example scale): default vs dynamic"))
    print(
        "\nThe dynamic policy reads the (assumed known) network state every"
        "\n60 s, searches configurations stepwise until the predicted weighted"
        "\nKPI meets the requirement, and restarts the producer with the new"
        "\nparameters — the paper's offline configuration-file scheme."
    )


if __name__ == "__main__":
    main()
