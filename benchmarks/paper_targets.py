"""Shared reproduction helpers: run sweeps, compare against paper claims.

Every figure bench builds a :class:`~repro.analysis.FigureSeries`, prints
an ASCII rendering plus a paper-vs-measured table, saves both under
``benchmarks/out`` and asserts the *shape* criteria from DESIGN.md §4.
Absolute values are not asserted — the substrate is a scaled simulator,
not the authors' testbed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis import FigureSeries, ascii_plot, comparison_table
from repro.testbed import Scenario, sweep

__all__ = [
    "measure_curve",
    "report",
    "Criterion",
    "BENCH_MESSAGES",
]

#: Messages per experiment in the figure benches.
BENCH_MESSAGES = 4000


class Criterion:
    """One paper claim with its measured value and verdict."""

    def __init__(self, label: str, paper: str, measured: str, holds: bool) -> None:
        self.label = label
        self.paper = paper
        self.measured = measured
        self.holds = holds

    def as_tuple(self) -> Tuple[str, str, str, bool]:
        return (self.label, self.paper, self.measured, self.holds)


def measure_curve(
    base: Scenario,
    axis: str,
    values: Sequence,
    metric: str = "p_loss",
    replications: int = 1,
) -> List[float]:
    """Sweep one axis and return the metric per point (averaged)."""
    results = sweep(base, {axis: list(values)}, replications=replications)
    per_point = len(results) // len(values)
    curve: List[float] = []
    for index in range(len(values)):
        chunk = results[index * per_point : (index + 1) * per_point]
        curve.append(sum(getattr(r, metric) for r in chunk) / len(chunk))
    return curve


def report(
    name: str,
    series: FigureSeries,
    criteria: Sequence[Criterion],
    write_report,
) -> None:
    """Render, save and assert one figure reproduction."""
    table = comparison_table(f"{series.title} — paper vs measured", [
        criterion.as_tuple() for criterion in criteria
    ])
    text = ascii_plot(series) + "\n\n" + table
    write_report(name, text)
    failed = [criterion.label for criterion in criteria if not criterion.holds]
    assert not failed, f"shape criteria diverged: {failed}"
