"""Reproduction of the prediction-accuracy results (Section III-G).

Trains the ANN reliability predictor on Fig. 3-design collection data
(cached by the session fixture) and verifies:

* hold-out MAE below the paper's 0.02 bound (their accuracy claim);
* the predicted curves track the measured ones on fresh sweeps — the
  paper's Figs. 4–6 overlay test-data samples with predictions.
"""

import numpy as np

from repro.analysis import FigureSeries, ascii_plot, comparison_table
from repro.kafka import DeliverySemantics, ProducerConfig
from repro.models import FeatureVector, split_results
from repro.testbed import Scenario, run_experiment

from paper_targets import Criterion
from conftest import write_report


def holdout_mae(paper_model, training_rows):
    # Same split seed as the training fixture: these rows were withheld.
    from conftest import SPLIT_SEED

    _, test = split_results(training_rows, test_fraction=0.25, seed=SPLIT_SEED)
    evaluable = [
        row
        for row in test
        if FeatureVector.from_result(row).submodel_key in paper_model.submodels
    ]
    return paper_model.evaluate(evaluable)


def predicted_vs_measured_curve(paper_model):
    """Fresh Fig. 4-style sweep, unseen seeds: prediction vs measurement."""
    sizes = [100, 200, 400, 800]
    measured, predicted = [], []
    for size in sizes:
        scenario = Scenario(
            message_bytes=size,
            network_delay_s=0.1,
            loss_rate=0.15,
            message_count=3000,
            seed=7001 + size,
            config=ProducerConfig(
                semantics=DeliverySemantics.AT_LEAST_ONCE, message_timeout_s=1.5
            ),
        )
        measured.append(run_experiment(scenario).p_loss)
        predicted.append(paper_model.predict_scenario(scenario).p_loss)
    return sizes, measured, predicted


def test_model_accuracy(benchmark, paper_model, training_rows):
    mae_report = benchmark.pedantic(
        holdout_mae, args=(paper_model, training_rows), rounds=1, iterations=1
    )
    sizes, measured, predicted = predicted_vs_measured_curve(paper_model)

    series = FigureSeries(
        "Predicted vs measured P_l (fresh Fig. 4-style sweep, L=15 %)",
        "M (bytes)", "P_l", x=list(sizes),
    )
    series.add_curve("measured", measured)
    series.add_curve("predicted", predicted)

    curve_mae = float(np.mean(np.abs(np.array(measured) - np.array(predicted))))
    same_direction = (measured[0] - measured[-1]) * (predicted[0] - predicted[-1]) > 0
    criteria = [
        Criterion(
            "hold-out MAE",
            "paper: MAE < 0.02 (see EXPERIMENTS.md on the gap)",
            f"overall MAE = {mae_report['overall']:.4f} "
            f"(p_loss {mae_report.get('p_loss', float('nan')):.4f})",
            mae_report["overall"] < 0.08,
        ),
        Criterion(
            "per-output accuracy sufficient for configuration choice",
            "predictions separate good from bad configurations",
            f"fresh-sweep MAE = {curve_mae:.4f}",
            curve_mae < 0.15,
        ),
        Criterion(
            "prediction tracks the measured trend",
            "both curves fall with message size",
            f"measured {measured[0]:.2f}→{measured[-1]:.2f}, "
            f"predicted {predicted[0]:.2f}→{predicted[-1]:.2f}",
            same_direction,
        ),
    ]
    text = ascii_plot(series) + "\n\n" + comparison_table(
        "Prediction accuracy — paper vs measured",
        [criterion.as_tuple() for criterion in criteria],
    )
    write_report("model_mae", text)
    failed = [criterion.label for criterion in criteria if not criterion.holds]
    assert not failed, f"diverged: {failed}"
