"""Telemetry overhead: disabled must be free, enabled must be cheap.

The observability layer's design contract is that a run with
``telemetry=None`` pays exactly one pointer comparison per emission site.
This bench measures that claim and records it in ``BENCH_telemetry.json``
at the repository root, next to ``BENCH_parallel.json``:

* **disabled overhead** — the same 8-point grid timed on the current code
  with ``telemetry=None``; since no pre-observability binary exists to
  diff against, the recorded number is the grid wall-clock to be compared
  against ``BENCH_parallel.json``'s serial baseline workload rate, and the
  acceptance gate lives in the kernel microbenchmarks (< 5% regression).
* **enabled overhead** — the identical grid with the ring-buffer tracer
  and with a JSONL file tracer, reported as a ratio over disabled.

Enabled tracing must also leave the measured outputs bit-identical: the
tracer only observes, never perturbs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.testbed import Scenario, TelemetryConfig, run_many
from repro.testbed.sweep import grid_scenarios

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_telemetry.json"

GRID_AXES = {
    "message_bytes": [100, 400],
    "loss_rate": [0.0, 0.05, 0.10, 0.15],
}
GRID_MESSAGES = 600

#: Enabled-tracing overhead ceiling (ratio over disabled).  Tracing a run
#: emits a few records per message; 2x leaves slack for slow CI hosts
#: while still catching accidental hot-path work (observed ~1.1-1.3x).
MAX_ENABLED_OVERHEAD = 2.0


def _grid():
    base = Scenario(message_count=GRID_MESSAGES, seed=33)
    return grid_scenarios(base, GRID_AXES)


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_telemetry_overhead(tmp_path):
    scenarios = _grid()

    disabled_s, plain = _best_of(lambda: run_many(scenarios, workers=1))
    ring_s, ring = _best_of(
        lambda: run_many(scenarios, workers=1, telemetry=TelemetryConfig())
    )
    file_s, filed = _best_of(
        lambda: run_many(
            scenarios,
            workers=1,
            telemetry=TelemetryConfig(
                trace_path=str(tmp_path / "t-{index}.jsonl")
            ),
        )
    )

    # Observation must not perturb the measured outputs.
    assert plain == ring == filed

    trace_events = sum(r.manifest["trace_events"] for r in ring)
    ring_overhead = ring_s / disabled_s
    file_overhead = file_s / disabled_s
    assert ring_overhead < MAX_ENABLED_OVERHEAD, (
        f"ring tracing costs {ring_overhead:.2f}x over disabled "
        f"(ceiling {MAX_ENABLED_OVERHEAD}x)"
    )

    payload = {
        "grid_points": len(scenarios),
        "messages_per_point": GRID_MESSAGES,
        "disabled_s": round(disabled_s, 4),
        "ring_enabled_s": round(ring_s, 4),
        "file_enabled_s": round(file_s, 4),
        "ring_overhead": round(ring_overhead, 3),
        "file_overhead": round(file_overhead, 3),
        "trace_events": trace_events,
        "results_bit_identical": True,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    lines = [
        "telemetry overhead (8-point grid, serial)",
        f"  disabled:      {disabled_s:.3f}s",
        f"  ring tracer:   {ring_s:.3f}s ({ring_overhead:.2f}x)",
        f"  file tracer:   {file_s:.3f}s ({file_overhead:.2f}x)",
        f"  trace events:  {trace_events}",
        f"[recorded to {BENCH_JSON.name}]",
    ]
    write_report("telemetry_overhead", "\n".join(lines))
